#include "lms/profiling/collector.hpp"

#include <cctype>
#include <utility>

#include "lms/util/logging.hpp"

namespace lms::profiling {

util::Result<std::unique_ptr<HpmRegionCollector>> HpmRegionCollector::create(
    const hpm::GroupRegistry& registry, const hpm::CounterSimulator& sim,
    const std::string& group_name) {
  const hpm::PerfGroup* group = registry.find(group_name);
  if (group == nullptr) {
    return util::Result<std::unique_ptr<HpmRegionCollector>>::error(
        "HpmRegionCollector: unknown group '" + group_name + "'");
  }
  for (const auto& assignment : group->events()) {
    if (sim.architecture().find_event(assignment.event) == nullptr) {
      return util::Result<std::unique_ptr<HpmRegionCollector>>::error(
          "HpmRegionCollector: event '" + assignment.event + "' not in architecture '" +
          sim.architecture().name + "'");
    }
  }
  return std::unique_ptr<HpmRegionCollector>(new HpmRegionCollector(sim, group));
}

HpmRegionCollector::HpmRegionCollector(const hpm::CounterSimulator& sim,
                                       const hpm::PerfGroup* group)
    : sim_(sim), group_(group) {
  events_.reserve(group_->events().size());
  for (const auto& assignment : group_->events()) {
    const hpm::EventDef* event = sim_.architecture().find_event(assignment.event);
    EventRef ref;
    ref.kind = event->kind;
    ref.units = sim_.units_for(event->kind);
    ref.mask = event->kind == hpm::EventKind::kPkgEnergyUncore
                   ? hpm::CounterSimulator::kEnergyCounterMask
                   : hpm::CounterSimulator::kCoreCounterMask;
    if (event->kind == hpm::EventKind::kPkgEnergyUncore) {
      ref.scale = sim_.architecture().energy_unit_joules;
    }
    ref.field_key = slot_field_key(assignment.slot);
    events_.push_back(std::move(ref));
  }
}

std::string HpmRegionCollector::slot_field_key(std::string_view slot) {
  std::string key = "cnt_";
  for (const char c : slot) {
    key += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return key;
}

std::vector<std::uint64_t> HpmRegionCollector::snapshot_group() const {
  std::size_t total = 0;
  for (const EventRef& e : events_) total += static_cast<std::size_t>(e.units);
  std::vector<std::uint64_t> counts;
  counts.reserve(total);
  for (const EventRef& e : events_) {
    for (int u = 0; u < e.units; ++u) counts.push_back(sim_.read(e.kind, u));
  }
  return counts;
}

std::uint64_t HpmRegionCollector::start(util::TimeNs now) {
  Bracket bracket;
  bracket.counts = snapshot_group();
  bracket.t0 = now;
  const core::sync::LockGuard lock(mu_);
  const std::uint64_t handle = next_handle_++;
  open_.emplace(handle, std::move(bracket));
  return handle;
}

std::vector<lineproto::Field> HpmRegionCollector::stop(std::uint64_t handle, util::TimeNs now) {
  (void)now;
  Bracket bracket;
  {
    const core::sync::LockGuard lock(mu_);
    const auto it = open_.find(handle);
    if (it == open_.end()) return {};
    bracket = std::move(it->second);
    open_.erase(it);
  }
  std::vector<lineproto::Field> fields;
  fields.reserve(events_.size());
  std::size_t offset = 0;
  for (const EventRef& e : events_) {
    double total = 0.0;
    for (int u = 0; u < e.units; ++u, ++offset) {
      const std::uint64_t before = offset < bracket.counts.size() ? bracket.counts[offset] : 0;
      total += static_cast<double>(
          hpm::CounterSimulator::wrap_delta(sim_.read(e.kind, u), before, e.mask));
    }
    fields.emplace_back(e.field_key, lineproto::FieldValue(total * e.scale));
  }
  return fields;
}

void HpmRegionCollector::discard(std::uint64_t handle) {
  const core::sync::LockGuard lock(mu_);
  open_.erase(handle);
}

std::vector<lineproto::Field> HpmRegionCollector::derive(const FieldSums& sums,
                                                         util::TimeNs inclusive_ns) const {
  const hpm::CounterArchitecture& arch = sim_.architecture();
  hpm::VarMap vars;
  for (const auto& assignment : group_->events()) {
    const auto it = sums.find(slot_field_key(assignment.slot));
    vars[assignment.slot] = it != sums.end() ? it->second : 0.0;
  }
  vars["time"] = util::ns_to_seconds(inclusive_ns);
  vars["inverseClock"] = 1.0 / (arch.nominal_clock_ghz * 1e9);
  vars["num_hwthreads"] = static_cast<double>(arch.total_hwthreads());
  vars["num_sockets"] = static_cast<double>(arch.sockets);

  std::vector<lineproto::Field> fields;
  fields.reserve(group_->metrics().size());
  for (const auto& metric : group_->metrics()) {
    const auto value = metric.formula.evaluate(vars);
    if (!value.ok()) {
      LMS_WARN("profiling") << "region metric '" << metric.name
                            << "' failed: " << value.message();
      continue;
    }
    fields.emplace_back(metric.field_key, lineproto::FieldValue(*value));
  }
  return fields;
}

}  // namespace lms::profiling
