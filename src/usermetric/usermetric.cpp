#include "lms/usermetric/usermetric.hpp"

#include "lms/lineproto/codec.hpp"
#include "lms/util/logging.hpp"
#include "lms/util/strings.hpp"

namespace lms::usermetric {

UserMetricClient::UserMetricClient(net::HttpClient& client, const util::Clock& clock,
                                   Options options)
    : client_(client), clock_(clock), options_(std::move(options)) {
  buffer_.reserve(options_.buffer_capacity);
  last_flush_ = clock_.now();
}

UserMetricClient::~UserMetricClient() {
  // Best effort: do not lose buffered points on shutdown.
  flush();
}

void UserMetricClient::value(std::string_view name, double v,
                             std::vector<lineproto::Tag> tags, util::TimeNs timestamp) {
  lineproto::Point p;
  p.measurement = options_.measurement;
  p.tags = std::move(tags);
  p.add_field(name, v);
  p.timestamp = timestamp != 0 ? timestamp : clock_.now();
  {
    const core::sync::LockGuard lock(mu_);
    ++stats_.values_reported;
  }
  enqueue(std::move(p));
}

void UserMetricClient::event(std::string_view name, std::string_view text,
                             std::vector<lineproto::Tag> tags, util::TimeNs timestamp) {
  lineproto::Point p;
  p.measurement = options_.event_measurement;
  p.tags = std::move(tags);
  p.set_tag("event", std::string(name));
  p.add_field("text", std::string(text));
  p.timestamp = timestamp != 0 ? timestamp : clock_.now();
  {
    const core::sync::LockGuard lock(mu_);
    ++stats_.events_reported;
  }
  enqueue(std::move(p));
}

void UserMetricClient::enqueue(lineproto::Point point) {
  for (const auto& [k, v] : options_.default_tags) {
    if (!point.has_tag(k)) point.set_tag(k, v);
  }
  point.normalize();
  const core::sync::LockGuard lock(mu_);
  if (buffer_.size() >= options_.buffer_capacity) {
    if (options_.drop_when_full) {
      ++stats_.points_dropped;
      return;
    }
    // Synchronous flush to make room (the "lightweight" default: the send
    // happens at most every buffer_capacity calls).
    if (!flush_locked()) {
      // Could not send: overwrite the oldest point to bound memory.
      buffer_.erase(buffer_.begin());
      ++stats_.points_dropped;
    }
  }
  buffer_.push_back(std::move(point));
}

bool UserMetricClient::flush() {
  const core::sync::LockGuard lock(mu_);
  return flush_locked();
}

bool UserMetricClient::flush_locked() {
  if (buffer_.empty()) return true;
  const std::string body = lineproto::serialize_batch(buffer_);
  auto resp = client_.post(options_.router_url + "/write?db=" + options_.database, body,
                           "text/plain");
  if (!resp.ok() || !resp->ok()) {
    ++stats_.send_failures;
    LMS_WARN("usermetric") << "flush failed"
                           << (resp.ok() ? " HTTP " + std::to_string(resp->status)
                                         : ": " + resp.message());
    return false;
  }
  stats_.points_sent += buffer_.size();
  ++stats_.batches_sent;
  buffer_.clear();
  last_flush_ = clock_.now();
  return true;
}

void UserMetricClient::tick(util::TimeNs now) {
  const core::sync::LockGuard lock(mu_);
  if (!buffer_.empty() && now - last_flush_ >= options_.flush_interval) {
    flush_locked();
    last_flush_ = now;
  }
}

UserMetricClient::Stats UserMetricClient::stats() const {
  const core::sync::LockGuard lock(mu_);
  return stats_;
}

std::size_t UserMetricClient::buffered() const {
  const core::sync::LockGuard lock(mu_);
  return buffer_.size();
}

util::Result<lineproto::Point> parse_cli_metric(const std::vector<std::string>& args,
                                                util::TimeNs now) {
  using util::Result;
  if (args.empty()) return Result<lineproto::Point>::error("usage: <name> <value> [tag=v ...]");
  lineproto::Point p;
  std::size_t i = 0;
  if (args[0] == "--event") {
    if (args.size() < 3) {
      return Result<lineproto::Point>::error("usage: --event <name> <text> [tag=v ...]");
    }
    p.measurement = "userevents";
    p.set_tag("event", args[1]);
    p.add_field("text", args[2]);
    i = 3;
  } else {
    if (args.size() < 2) {
      return Result<lineproto::Point>::error("usage: <name> <value> [tag=v ...]");
    }
    const auto v = util::parse_double(args[1]);
    if (!v) return Result<lineproto::Point>::error("bad value '" + args[1] + "'");
    p.measurement = "usermetric";
    p.add_field(args[0], *v);
    i = 2;
  }
  for (; i < args.size(); ++i) {
    const auto [k, v] = util::split_once(args[i], '=');
    if (k.empty() || v.empty()) {
      return Result<lineproto::Point>::error("bad tag '" + args[i] + "' (want key=value)");
    }
    p.set_tag(k, v);
  }
  p.timestamp = now;
  p.normalize();
  return p;
}

}  // namespace lms::usermetric
