#include "lms/usermetric/mpi_profiler.hpp"

namespace lms::usermetric {

std::string_view mpi_call_name(MpiCall call) {
  switch (call) {
    case MpiCall::kSend:
      return "MPI_Send";
    case MpiCall::kRecv:
      return "MPI_Recv";
    case MpiCall::kIsend:
      return "MPI_Isend";
    case MpiCall::kIrecv:
      return "MPI_Irecv";
    case MpiCall::kWait:
      return "MPI_Wait";
    case MpiCall::kBarrier:
      return "MPI_Barrier";
    case MpiCall::kBcast:
      return "MPI_Bcast";
    case MpiCall::kAllreduce:
      return "MPI_Allreduce";
    case MpiCall::kAlltoall:
      return "MPI_Alltoall";
  }
  return "?";
}

bool mpi_call_is_synchronizing(MpiCall call) {
  switch (call) {
    case MpiCall::kWait:
    case MpiCall::kBarrier:
    case MpiCall::kAllreduce:
    case MpiCall::kRecv:
      return true;
    default:
      return false;
  }
}

MpiProfiler::MpiProfiler(UserMetricClient& client, int rank, util::TimeNs report_interval)
    : client_(client), rank_(std::to_string(rank)), interval_(report_interval) {}

void MpiProfiler::on_enter(MpiCall call, util::TimeNs now, std::size_t bytes) {
  const core::sync::LockGuard lock(mu_);
  if (interval_start_ == 0) interval_start_ = now;
  in_call_ = true;
  current_call_ = call;
  current_enter_ = now;
  current_bytes_ = bytes;
}

void MpiProfiler::on_exit(util::TimeNs now) {
  const core::sync::LockGuard lock(mu_);
  if (!in_call_) return;
  in_call_ = false;
  const util::TimeNs duration = now - current_enter_;
  mpi_time_ += duration;
  if (mpi_call_is_synchronizing(current_call_)) sync_time_ += duration;
  ++calls_;
  bytes_ += current_bytes_;
  ++total_calls_;
  total_mpi_time_ += duration;
  if (now - interval_start_ >= interval_) report_locked(now);
}

void MpiProfiler::record(MpiCall call, util::TimeNs start, util::TimeNs duration,
                         std::size_t bytes) {
  {
    const core::sync::LockGuard lock(mu_);
    if (interval_start_ == 0) interval_start_ = start;
  }
  on_enter(call, start, bytes);
  on_exit(start + duration);
}

void MpiProfiler::report(util::TimeNs now) {
  const core::sync::LockGuard lock(mu_);
  report_locked(now);
}

void MpiProfiler::report_locked(util::TimeNs now) {
  const double window = util::ns_to_seconds(now - interval_start_);
  if (window <= 0) return;
  const std::vector<lineproto::Tag> tags{{"rank", rank_}};
  client_.value("mpi_time_fraction", util::ns_to_seconds(mpi_time_) / window, tags, now);
  client_.value("mpi_sync_fraction",
                mpi_time_ > 0
                    ? static_cast<double>(sync_time_) / static_cast<double>(mpi_time_)
                    : 0.0,
                tags, now);
  client_.value("mpi_calls_per_sec", static_cast<double>(calls_) / window, tags, now);
  client_.value("mpi_bytes_per_sec", static_cast<double>(bytes_) / window, tags, now);
  interval_start_ = now;
  mpi_time_ = 0;
  sync_time_ = 0;
  calls_ = 0;
  bytes_ = 0;
}

std::uint64_t MpiProfiler::total_calls() const {
  const core::sync::LockGuard lock(mu_);
  return total_calls_;
}

util::TimeNs MpiProfiler::total_mpi_time() const {
  const core::sync::LockGuard lock(mu_);
  return total_mpi_time_;
}

}  // namespace lms::usermetric
