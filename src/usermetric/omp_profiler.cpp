#include "lms/usermetric/omp_profiler.hpp"

#include <algorithm>

namespace lms::usermetric {

OmpProfiler::OmpProfiler(UserMetricClient& client, util::TimeNs report_interval)
    : client_(client), interval_(report_interval) {}

void OmpProfiler::record_region(util::TimeNs start, util::TimeNs duration,
                                const std::vector<util::TimeNs>& thread_busy) {
  util::TimeNs report_at = 0;
  {
    const core::sync::LockGuard lock(mu_);
    if (interval_start_ == 0) interval_start_ = start;
    parallel_time_ += duration;
    ++regions_;
    ++total_regions_;
    thread_sum_ += thread_busy.size();
    if (!thread_busy.empty()) {
      util::TimeNs max_busy = 0;
      util::TimeNs sum_busy = 0;
      for (const util::TimeNs t : thread_busy) {
        max_busy = std::max(max_busy, t);
        sum_busy += t;
      }
      const double efficiency =
          max_busy > 0 ? static_cast<double>(sum_busy) /
                             (static_cast<double>(max_busy) *
                              static_cast<double>(thread_busy.size()))
                       : 1.0;
      efficiency_weighted_ += efficiency * static_cast<double>(duration);
    }
    const util::TimeNs end = start + duration;
    if (end - interval_start_ >= interval_) report_at = end;
  }
  if (report_at != 0) report(report_at);
}

void OmpProfiler::report(util::TimeNs now) {
  const core::sync::LockGuard lock(mu_);
  report_locked(now);
}

void OmpProfiler::report_locked(util::TimeNs now) {
  const double window = util::ns_to_seconds(now - interval_start_);
  if (window <= 0) return;
  client_.value("omp_parallel_fraction", util::ns_to_seconds(parallel_time_) / window, {},
                now);
  client_.value("omp_regions_per_sec", static_cast<double>(regions_) / window, {}, now);
  client_.value("omp_load_efficiency",
                parallel_time_ > 0
                    ? efficiency_weighted_ / static_cast<double>(parallel_time_)
                    : 1.0,
                {}, now);
  client_.value("omp_avg_threads",
                regions_ > 0
                    ? static_cast<double>(thread_sum_) / static_cast<double>(regions_)
                    : 0.0,
                {}, now);
  interval_start_ = now;
  parallel_time_ = 0;
  efficiency_weighted_ = 0;
  regions_ = 0;
  thread_sum_ = 0;
}

std::uint64_t OmpProfiler::total_regions() const {
  const core::sync::LockGuard lock(mu_);
  return total_regions_;
}

}  // namespace lms::usermetric
