#include "lms/usermetric/hooks.hpp"

namespace lms::usermetric {

AllocTracker::AllocTracker(UserMetricClient& client, util::TimeNs report_interval)
    : client_(client), interval_(report_interval) {}

void AllocTracker::on_allocate(std::size_t bytes, util::TimeNs now) {
  {
    const core::sync::LockGuard lock(mu_);
    current_ += static_cast<std::int64_t>(bytes);
    total_ += bytes;
    ++alloc_calls_;
  }
  maybe_report(now);
}

void AllocTracker::on_free(std::size_t bytes, util::TimeNs now) {
  {
    const core::sync::LockGuard lock(mu_);
    current_ -= static_cast<std::int64_t>(bytes);
    if (current_ < 0) current_ = 0;
  }
  maybe_report(now);
}

void AllocTracker::maybe_report(util::TimeNs now) {
  std::int64_t current = 0;
  std::uint64_t total = 0;
  std::uint64_t calls = 0;
  {
    const core::sync::LockGuard lock(mu_);
    if (now - last_report_ < interval_) return;
    last_report_ = now;
    current = current_;
    total = total_;
    calls = alloc_calls_;
  }
  client_.value("allocated_bytes", static_cast<double>(current), {}, now);
  client_.value("allocated_total_bytes", static_cast<double>(total), {}, now);
  client_.value("allocation_calls", static_cast<double>(calls), {}, now);
}

std::int64_t AllocTracker::current_bytes() const {
  const core::sync::LockGuard lock(mu_);
  return current_;
}

std::uint64_t AllocTracker::total_allocated() const {
  const core::sync::LockGuard lock(mu_);
  return total_;
}

AffinityReporter::AffinityReporter(UserMetricClient& client) : client_(client) {}

void AffinityReporter::on_set_affinity(int thread_id, int cpu, util::TimeNs now) {
  client_.event("set_affinity",
                "thread " + std::to_string(thread_id) + " -> cpu " + std::to_string(cpu),
                {{"tid", std::to_string(thread_id)}}, now);
}

}  // namespace lms::usermetric
