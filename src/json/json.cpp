#include "lms/json/json.hpp"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "lms/util/strings.hpp"

namespace lms::json {

namespace {
const Value& shared_null() {
  static const Value null;
  return null;
}
}  // namespace

Object::Object(std::initializer_list<Member> members) : members_(members) {}

const Value* Object::find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value* Object::find(std::string_view key) {
  for (auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value& Object::operator[](std::string_view key) {
  if (Value* v = find(key)) return *v;
  members_.emplace_back(std::string(key), Value());
  return members_.back().second;
}

bool Object::erase(std::string_view key) {
  for (auto it = members_.begin(); it != members_.end(); ++it) {
    if (it->first == key) {
      members_.erase(it);
      return true;
    }
  }
  return false;
}

bool Value::get_bool() const {
  assert(is_bool());
  return bool_;
}

std::int64_t Value::get_int() const {
  assert(is_int());
  return int_;
}

double Value::get_double() const {
  assert(is_number());
  return is_int() ? static_cast<double>(int_) : double_;
}

const std::string& Value::get_string() const {
  assert(is_string());
  return string_;
}

const Array& Value::get_array() const {
  assert(is_array());
  return array_;
}

Array& Value::get_array() {
  assert(is_array());
  return array_;
}

const Object& Value::get_object() const {
  assert(is_object());
  return object_;
}

Object& Value::get_object() {
  assert(is_object());
  return object_;
}

bool Value::as_bool(bool fallback) const { return is_bool() ? bool_ : fallback; }

std::int64_t Value::as_int(std::int64_t fallback) const {
  if (is_int()) return int_;
  if (is_double()) return static_cast<std::int64_t>(double_);
  return fallback;
}

double Value::as_double(double fallback) const { return is_number() ? get_double() : fallback; }

std::string Value::as_string(std::string_view fallback) const {
  return is_string() ? string_ : std::string(fallback);
}

const Value& Value::operator[](std::string_view key) const {
  if (!is_object()) return shared_null();
  const Value* v = object_.find(key);
  return v != nullptr ? *v : shared_null();
}

const Value& Value::operator[](std::size_t index) const {
  if (!is_array() || index >= array_.size()) return shared_null();
  return array_[index];
}

const Value& Value::at_path(std::string_view dotted_path) const {
  const Value* cur = this;
  std::size_t start = 0;
  while (start <= dotted_path.size()) {
    const std::size_t dot = dotted_path.find('.', start);
    const std::string_view key =
        dotted_path.substr(start, dot == std::string_view::npos ? dotted_path.size() - start
                                                                : dot - start);
    cur = &(*cur)[key];
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return *cur;
}

bool Value::operator==(const Value& other) const {
  if (is_number() && other.is_number()) {
    if (is_int() && other.is_int()) return int_ == other.int_;
    return get_double() == other.get_double();
  }
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray: {
      if (array_.size() != other.array_.size()) return false;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (array_[i] != other.array_[i]) return false;
      }
      return true;
    }
    case Type::kObject: {
      if (object_.size() != other.object_.size()) return false;
      for (const auto& [k, v] : object_) {
        const Value* ov = other.object_.find(k);
        if (ov == nullptr || *ov != v) return false;
      }
      return true;
    }
    default:
      return false;  // numbers handled above
  }
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string dump_impl(const Value& v, int indent, int depth) {
  const std::string pad = indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                                       (static_cast<std::size_t>(depth) + 1),
                                                   ' ')
                                     : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
                               ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  const char* colon = indent > 0 ? ": " : ":";
  switch (v.type()) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return v.get_bool() ? "true" : "false";
    case Type::kInt:
      return std::to_string(v.get_int());
    case Type::kDouble: {
      const double d = v.get_double();
      if (std::isnan(d) || std::isinf(d)) return "null";  // JSON has no non-finite numbers
      return util::format_double(d);
    }
    case Type::kString:
      return "\"" + escape(v.get_string()) + "\"";
    case Type::kArray: {
      const auto& arr = v.get_array();
      if (arr.empty()) return "[]";
      std::string out = "[";
      for (std::size_t i = 0; i < arr.size(); ++i) {
        out += nl + pad + dump_impl(arr[i], indent, depth + 1);
        if (i + 1 < arr.size()) out += ",";
      }
      out += nl + close_pad + "]";
      return out;
    }
    case Type::kObject: {
      const auto& obj = v.get_object();
      if (obj.empty()) return "{}";
      std::string out = "{";
      std::size_t i = 0;
      for (const auto& [k, val] : obj) {
        out += nl + pad + "\"" + escape(k) + "\"" + colon + dump_impl(val, indent, depth + 1);
        if (++i < obj.size()) out += ",";
      }
      out += nl + close_pad + "}";
      return out;
    }
  }
  return "null";
}

std::string Value::dump() const { return dump_impl(*this, 0, 0); }
std::string Value::dump_pretty() const { return dump_impl(*this, 2, 0); }

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  util::Result<Value> parse() {
    auto v = parse_value();
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) return err("trailing content");
    return v;
  }

 private:
  util::Result<Value> err(std::string_view what) const {
    return util::Result<Value>::error("json: " + std::string(what) + " at offset " +
                                      std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  util::Result<Value> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return err("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s.ok()) return util::Result<Value>::error(s.message());
        return Value(s.take());
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return Value(true);
        }
        return err("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return Value(false);
        }
        return err("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return Value(nullptr);
        }
        return err("bad literal");
      default:
        return parse_number();
    }
  }

  util::Result<std::string> parse_string() {
    if (!consume('"')) {
      return util::Result<std::string>::error("json: expected '\"' at offset " +
                                              std::to_string(pos_));
    }
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        return util::Result<std::string>::error("json: unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return util::Result<std::string>::error("json: dangling escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return util::Result<std::string>::error("json: bad \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return util::Result<std::string>::error("json: bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs folded naively).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return util::Result<std::string>::error("json: unknown escape");
      }
    }
  }

  util::Result<Value> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") return err("bad number");
    if (!is_double) {
      if (const auto i = util::parse_int64(tok)) return Value(*i);
    }
    if (const auto d = util::parse_double(tok)) return Value(*d);
    return err("bad number");
  }

  util::Result<Value> parse_array() {
    consume('[');
    Array arr;
    skip_ws();
    if (consume(']')) return Value(std::move(arr));
    while (true) {
      auto v = parse_value();
      if (!v.ok()) return v;
      arr.push_back(v.take());
      skip_ws();
      if (consume(']')) return Value(std::move(arr));
      if (!consume(',')) return err("expected ',' or ']'");
    }
  }

  util::Result<Value> parse_object() {
    consume('{');
    Object obj;
    skip_ws();
    if (consume('}')) return Value(std::move(obj));
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key.ok()) return util::Result<Value>::error(key.message());
      skip_ws();
      if (!consume(':')) return err("expected ':'");
      auto v = parse_value();
      if (!v.ok()) return v;
      obj[key.value()] = v.take();
      skip_ws();
      if (consume('}')) return Value(std::move(obj));
      if (!consume(',')) return err("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

util::Result<Value> parse(std::string_view text) { return Parser(text).parse(); }

}  // namespace lms::json
