#include "lms/lineproto/codec.hpp"

#include <cctype>

#include "lms/util/strings.hpp"

namespace lms::lineproto {

namespace {

void append_escaped(std::string& out, std::string_view s, std::string_view special) {
  for (const char c : s) {
    if (special.find(c) != std::string_view::npos || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

void append_field_value(std::string& out, const FieldValue& v) {
  if (v.is_double()) {
    out += util::format_double(v.as_double());
  } else if (v.is_int()) {
    out += std::to_string(v.as_int());
    out.push_back('i');
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else {
    out.push_back('"');
    for (const char c : v.as_string()) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    out.push_back('"');
  }
}

}  // namespace

std::string serialize(const Point& point) {
  std::string out;
  out.reserve(64 + point.measurement.size());
  append_escaped(out, point.measurement, ", ");
  for (const auto& [k, v] : point.tags) {
    out.push_back(',');
    append_escaped(out, k, ",= ");
    out.push_back('=');
    append_escaped(out, v, ",= ");
  }
  out.push_back(' ');
  bool first = true;
  for (const auto& [k, v] : point.fields) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, k, ",= ");
    out.push_back('=');
    append_field_value(out, v);
  }
  if (point.timestamp != 0) {
    out.push_back(' ');
    out += std::to_string(point.timestamp);
  }
  return out;
}

std::string serialize_batch(const std::vector<Point>& points) {
  std::string out;
  for (const auto& p : points) {
    out += serialize(p);
    out.push_back('\n');
  }
  return out;
}

namespace {

/// Incremental tokenizer over one line honoring backslash escapes.
class LineScanner {
 public:
  explicit LineScanner(std::string_view line) : line_(line) {}

  bool eof() const { return pos_ >= line_.size(); }
  char peek() const { return line_[pos_]; }
  void advance() { ++pos_; }
  std::size_t pos() const { return pos_; }

  /// Read characters until an unescaped stop character; the stop char is not
  /// consumed. Unescapes as it goes.
  std::string read_until(std::string_view stops) {
    std::string out;
    while (!eof()) {
      const char c = line_[pos_];
      if (c == '\\' && pos_ + 1 < line_.size()) {
        const char next = line_[pos_ + 1];
        // Line protocol escapes only the special characters; a backslash
        // before anything else is literal.
        if (stops.find(next) != std::string_view::npos || next == '\\' || next == ',' ||
            next == '=' || next == ' ' || next == '"') {
          out.push_back(next);
          pos_ += 2;
          continue;
        }
      }
      if (stops.find(c) != std::string_view::npos) return out;
      out.push_back(c);
      ++pos_;
    }
    return out;
  }

 private:
  std::string_view line_;
  std::size_t pos_ = 0;
};

util::Result<FieldValue> parse_field_value(LineScanner& sc) {
  if (sc.eof()) return util::Result<FieldValue>::error("missing field value");
  if (sc.peek() == '"') {
    sc.advance();
    std::string out;
    bool closed = false;
    while (!sc.eof()) {
      const char c = sc.peek();
      sc.advance();
      if (c == '\\' && !sc.eof() && (sc.peek() == '"' || sc.peek() == '\\')) {
        out.push_back(sc.peek());
        sc.advance();
        continue;
      }
      if (c == '"') {
        closed = true;
        break;
      }
      out.push_back(c);
    }
    if (!closed) return util::Result<FieldValue>::error("unterminated string field");
    return FieldValue(std::move(out));
  }
  const std::string token = sc.read_until(", ");
  if (token.empty()) return util::Result<FieldValue>::error("empty field value");
  if (token == "t" || token == "T" || token == "true" || token == "True" || token == "TRUE") {
    return FieldValue(true);
  }
  if (token == "f" || token == "F" || token == "false" || token == "False" ||
      token == "FALSE") {
    return FieldValue(false);
  }
  if (token.back() == 'i') {
    const auto i = util::parse_int64(std::string_view(token).substr(0, token.size() - 1));
    if (!i) return util::Result<FieldValue>::error("bad integer field '" + token + "'");
    return FieldValue(*i);
  }
  const auto d = util::parse_double(token);
  if (!d) return util::Result<FieldValue>::error("bad field value '" + token + "'");
  return FieldValue(*d);
}

}  // namespace

util::Result<Point> parse_line(std::string_view line) {
  LineScanner sc(line);
  Point p;
  p.measurement = sc.read_until(", ");
  if (p.measurement.empty()) return util::Result<Point>::error("empty measurement");

  // Tag set.
  while (!sc.eof() && sc.peek() == ',') {
    sc.advance();
    std::string key = sc.read_until("=, ");
    if (sc.eof() || sc.peek() != '=') {
      return util::Result<Point>::error("tag '" + key + "' missing '='");
    }
    sc.advance();
    std::string value = sc.read_until(", ");
    if (key.empty() || value.empty()) {
      return util::Result<Point>::error("empty tag key or value");
    }
    p.tags.emplace_back(std::move(key), std::move(value));
  }
  if (sc.eof() || sc.peek() != ' ') {
    return util::Result<Point>::error("missing field set");
  }
  while (!sc.eof() && sc.peek() == ' ') sc.advance();

  // Field set.
  while (true) {
    std::string key = sc.read_until("=, ");
    if (key.empty()) return util::Result<Point>::error("empty field key");
    if (sc.eof() || sc.peek() != '=') {
      return util::Result<Point>::error("field '" + key + "' missing '='");
    }
    sc.advance();
    auto value = parse_field_value(sc);
    if (!value.ok()) return util::Result<Point>::error(value.message());
    p.fields.emplace_back(std::move(key), value.take());
    if (!sc.eof() && sc.peek() == ',') {
      sc.advance();
      continue;
    }
    break;
  }

  // Optional timestamp.
  if (!sc.eof() && sc.peek() == ' ') {
    while (!sc.eof() && sc.peek() == ' ') sc.advance();
    if (!sc.eof()) {
      const std::string ts = sc.read_until(" ");
      const auto t = util::parse_int64(ts);
      if (!t) return util::Result<Point>::error("bad timestamp '" + ts + "'");
      p.timestamp = *t;
      while (!sc.eof() && sc.peek() == ' ') sc.advance();
      if (!sc.eof()) return util::Result<Point>::error("trailing content after timestamp");
    }
  }
  p.normalize();
  return p;
}

util::Result<std::vector<Point>> parse(std::string_view text) {
  std::vector<Point> points;
  std::size_t line_no = 0;
  for (const auto& raw : util::split(text, '\n')) {
    ++line_no;
    const std::string_view line = util::trim(raw);
    if (line.empty() || line[0] == '#') continue;
    auto p = parse_line(line);
    if (!p.ok()) {
      return util::Result<std::vector<Point>>::error("line " + std::to_string(line_no) + ": " +
                                                     p.message());
    }
    points.push_back(p.take());
  }
  return points;
}

std::vector<Point> parse_lenient(std::string_view text, std::vector<std::string>* errors) {
  std::vector<Point> points;
  std::size_t line_no = 0;
  for (const auto& raw : util::split(text, '\n')) {
    ++line_no;
    const std::string_view line = util::trim(raw);
    if (line.empty() || line[0] == '#') continue;
    auto p = parse_line(line);
    if (!p.ok()) {
      if (errors != nullptr) {
        errors->push_back("line " + std::to_string(line_no) + ": " + p.message());
      }
      continue;
    }
    points.push_back(p.take());
  }
  return points;
}

}  // namespace lms::lineproto
