#include "lms/lineproto/point.hpp"

#include <algorithm>
#include <cmath>

#include "lms/util/strings.hpp"

namespace lms::lineproto {

double FieldValue::as_double() const {
  if (const auto* d = std::get_if<double>(&v_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return static_cast<double>(*i);
  if (const auto* b = std::get_if<bool>(&v_)) return *b ? 1.0 : 0.0;
  return 0.0;
}

std::int64_t FieldValue::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return *i;
  if (const auto* d = std::get_if<double>(&v_)) return static_cast<std::int64_t>(*d);
  if (const auto* b = std::get_if<bool>(&v_)) return *b ? 1 : 0;
  return 0;
}

bool FieldValue::as_bool() const {
  if (const auto* b = std::get_if<bool>(&v_)) return *b;
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return *i != 0;
  if (const auto* d = std::get_if<double>(&v_)) return *d != 0.0;
  return false;
}

std::string FieldValue::as_string() const {
  if (const auto* s = std::get_if<std::string>(&v_)) return *s;
  if (const auto* d = std::get_if<double>(&v_)) return util::format_double(*d);
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return std::to_string(*i);
  if (const auto* b = std::get_if<bool>(&v_)) return *b ? "true" : "false";
  return {};
}

std::string_view Point::tag(std::string_view key) const {
  for (const auto& [k, v] : tags) {
    if (k == key) return v;
  }
  return {};
}

bool Point::has_tag(std::string_view key) const {
  for (const auto& [k, v] : tags) {
    if (k == key) return true;
  }
  return false;
}

void Point::set_tag(std::string_view key, std::string_view value) {
  for (auto& [k, v] : tags) {
    if (k == key) {
      v = std::string(value);
      return;
    }
  }
  tags.emplace_back(std::string(key), std::string(value));
}

const FieldValue* Point::field(std::string_view key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Point::add_field(std::string_view key, FieldValue value) {
  fields.emplace_back(std::string(key), std::move(value));
}

void Point::normalize() {
  std::sort(tags.begin(), tags.end(),
            [](const Tag& a, const Tag& b) { return a.first < b.first; });
}

bool Point::operator==(const Point& other) const {
  return measurement == other.measurement && tags == other.tags && fields == other.fields &&
         timestamp == other.timestamp;
}

Point make_point(std::string_view measurement, std::string_view field_key, FieldValue value,
                 util::TimeNs timestamp, std::vector<Tag> tags) {
  Point p;
  p.measurement = std::string(measurement);
  p.tags = std::move(tags);
  p.add_field(field_key, std::move(value));
  p.timestamp = timestamp;
  p.normalize();
  return p;
}

}  // namespace lms::lineproto
