// Perf-1 (paper §I, §III-A): the line protocol was chosen because batched,
// human-readable transmission is cheap. Measures serialize/parse throughput
// and the batch-size sweep that justifies "multiple lines can be
// concatenated for batched transmission".

#include <benchmark/benchmark.h>

#include "lms/lineproto/codec.hpp"
#include "lms/util/rng.hpp"

namespace {

using namespace lms;

lineproto::Point typical_point(util::Rng& rng, int tags) {
  lineproto::Point p;
  p.measurement = "likwid_mem_dp";
  p.set_tag("hostname", "node" + std::to_string(rng.uniform_int(1, 64)));
  for (int i = 1; i < tags; ++i) {
    p.set_tag("tag" + std::to_string(i), "value" + std::to_string(i));
  }
  p.add_field("dp_mflop_per_s", rng.uniform(0, 2e5));
  p.add_field("memory_bandwidth_mbytes_per_s", rng.uniform(0, 1e5));
  p.add_field("cpi", rng.uniform(0.2, 5.0));
  p.timestamp = 1'500'000'000'000'000'000LL + rng.uniform_int(0, 1'000'000'000);
  p.normalize();
  return p;
}

void BM_Serialize(benchmark::State& state) {
  util::Rng rng(1);
  const auto p = typical_point(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(lineproto::serialize(p));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(state.range(0)) + " tags");
}
BENCHMARK(BM_Serialize)->Arg(1)->Arg(4)->Arg(8);

void BM_ParseLine(benchmark::State& state) {
  util::Rng rng(1);
  const std::string line = lineproto::serialize(typical_point(rng, 4));
  for (auto _ : state) {
    auto p = lineproto::parse_line(line);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(line.size()));
}
BENCHMARK(BM_ParseLine);

/// The batching claim: cost per point of serializing+parsing a batch of N.
void BM_BatchRoundTrip(benchmark::State& state) {
  util::Rng rng(1);
  const int batch_size = static_cast<int>(state.range(0));
  std::vector<lineproto::Point> batch;
  for (int i = 0; i < batch_size; ++i) batch.push_back(typical_point(rng, 4));
  for (auto _ : state) {
    const std::string wire = lineproto::serialize_batch(batch);
    auto points = lineproto::parse(wire);
    benchmark::DoNotOptimize(points);
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_BatchRoundTrip)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_ParseLenientWithErrors(benchmark::State& state) {
  util::Rng rng(1);
  std::string wire;
  for (int i = 0; i < 100; ++i) {
    wire += lineproto::serialize(typical_point(rng, 4)) + "\n";
    if (i % 10 == 0) wire += "malformed line without fields\n";
  }
  for (auto _ : state) {
    std::vector<std::string> errors;
    auto points = lineproto::parse_lenient(wire, &errors);
    benchmark::DoNotOptimize(points);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ParseLenientWithErrors);

void BM_EscapedContent(benchmark::State& state) {
  lineproto::Point p;
  p.measurement = "my measurement,with specials";
  p.set_tag("tag key", "va=l,ue with spaces");
  p.add_field("field", std::string("a \"quoted\" string \\ with backslashes"));
  p.timestamp = 42;
  const std::string line = lineproto::serialize(p);
  for (auto _ : state) {
    auto parsed = lineproto::parse_line(line);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EscapedContent);

}  // namespace
