// Perf-4 (paper §IV): libusermetric must be lightweight — the application
// pays only a buffered append per call; the wire cost is amortized over the
// batch. Measures per-call cost vs. buffer capacity, the flush path, and
// the CLI parsing used from batch scripts.

#include <benchmark/benchmark.h>

#include "lms/lineproto/codec.hpp"
#include "lms/net/transport.hpp"
#include "lms/usermetric/hooks.hpp"
#include "lms/usermetric/usermetric.hpp"

namespace {

using namespace lms;

constexpr util::TimeNs kSec = util::kNanosPerSecond;

/// Sink that swallows batches (counts only) — the cost under study is the
/// client side.
struct NullSink {
  net::InprocNetwork network;
  std::uint64_t batches = 0;
  std::uint64_t bytes = 0;
  NullSink() {
    network.bind("router", [this](const net::HttpRequest& req) {
      ++batches;
      bytes += req.body.size();
      return net::HttpResponse::no_content();
    });
  }
};

usermetric::UserMetricClient::Options options(std::size_t buffer) {
  usermetric::UserMetricClient::Options o;
  o.router_url = "inproc://router";
  o.buffer_capacity = buffer;
  o.default_tags = {{"jobid", "1"}, {"user", "alice"}, {"hostname", "node1"}};
  return o;
}

/// The headline number: amortized cost of one value() call, including the
/// synchronous flush every `buffer` calls. Larger buffers amortize the wire
/// cost — the batching claim of §III-A applied to the app level.
void BM_ValueCallAmortized(benchmark::State& state) {
  NullSink sink;
  util::SimClock clock(0);
  net::InprocHttpClient client(sink.network);
  usermetric::UserMetricClient um(client, clock,
                                  options(static_cast<std::size_t>(state.range(0))));
  double v = 0;
  for (auto _ : state) {
    um.value("pressure", v += 0.25);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("buffer=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ValueCallAmortized)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_ValueWithTags(benchmark::State& state) {
  NullSink sink;
  util::SimClock clock(0);
  net::InprocHttpClient client(sink.network);
  usermetric::UserMetricClient um(client, clock, options(1000));
  for (auto _ : state) {
    um.value("x", 1.0, {{"tid", "3"}, {"phase", "force"}});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ValueWithTags);

void BM_EventCall(benchmark::State& state) {
  NullSink sink;
  util::SimClock clock(0);
  net::InprocHttpClient client(sink.network);
  usermetric::UserMetricClient um(client, clock, options(1000));
  for (auto _ : state) {
    um.event("phase", "entering force computation");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventCall);

void BM_FlushBatch(benchmark::State& state) {
  NullSink sink;
  util::SimClock clock(0);
  net::InprocHttpClient client(sink.network);
  const int n = static_cast<int>(state.range(0));
  usermetric::UserMetricClient um(client, clock,
                                  options(static_cast<std::size_t>(n) + 1));
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < n; ++i) um.value("v", i);
    state.ResumeTiming();
    um.flush();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlushBatch)->Arg(10)->Arg(100)->Arg(1000);

void BM_CliParse(benchmark::State& state) {
  const std::vector<std::string> args{"pressure", "1.25", "tid=0", "phase=warmup"};
  for (auto _ : state) {
    auto p = usermetric::parse_cli_metric(args, 123);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CliParse);

void BM_AllocTrackerHook(benchmark::State& state) {
  NullSink sink;
  util::SimClock clock(0);
  net::InprocHttpClient client(sink.network);
  usermetric::UserMetricClient um(client, clock, options(10000));
  usermetric::AllocTracker tracker(um, 10 * kSec);
  util::TimeNs t = 0;
  for (auto _ : state) {
    tracker.on_allocate(4096, t);
    tracker.on_free(4096, t);
    t += 1000;  // 1 us apart: reporting interval rarely hit
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_AllocTrackerHook);

}  // namespace
