#pragma once

// Shared knobs for the plain (non-google-benchmark) bench binaries.
//
// Smoke mode: LMS_BENCH_SMOKE=1 shrinks every iteration budget to
// "does-it-still-run" size and suppresses the BENCH_*.json baseline write,
// so ci/bench_smoke.sh can execute all bench binaries in seconds without
// dirtying the committed baselines. Numbers from a smoke run are
// meaningless; only the exit status is.

#include <cstdio>
#include <cstdlib>
#include <string>

namespace lms::bench {

inline bool smoke() { return std::getenv("LMS_BENCH_SMOKE") != nullptr; }

/// Iteration budget: the real one, or the tiny one in smoke mode.
inline int scaled(int full, int tiny) { return smoke() ? tiny : full; }

/// Write a baseline file unless in smoke mode. Returns false on I/O error.
inline bool write_baseline(const std::string& path, const std::string& content) {
  if (smoke()) {
    std::printf("smoke mode: skipping %s\n", path.c_str());
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs(content.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace lms::bench
