// Prices the alert evaluator: one threshold rule fanned out over 1k host
// series (one state machine per host), and a deadman sweep watching 1k
// hosts. Prints ns/series resp. ns/host and writes the numbers as a
// machine-readable baseline to BENCH_alert.json so regressions show up in
// review diffs.

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "lms/alert/evaluator.hpp"
#include "lms/json/json.hpp"
#include "lms/tsdb/storage.hpp"
#include "lms/util/clock.hpp"

namespace {

using namespace lms;

constexpr util::TimeNs kSec = util::kNanosPerSecond;
constexpr util::TimeNs kT0 = 1'500'000'000LL * kSec;
const int kHosts = bench::scaled(1000, 50);
constexpr int kSamplesPerHost = 6;  // one 10s-cadence minute of data

void fill_storage(tsdb::Storage& storage) {
  std::vector<lineproto::Point> points;
  points.reserve(kHosts);
  for (int s = 0; s < kSamplesPerHost; ++s) {
    points.clear();
    for (int h = 0; h < kHosts; ++h) {
      lineproto::Point p;
      p.measurement = "cpu";
      p.set_tag("hostname", "h" + std::to_string(h));
      p.add_field("user_percent", 40.0 + (h % 50));
      p.timestamp = kT0 + s * 10 * kSec;
      p.normalize();
      points.push_back(std::move(p));
    }
    storage.write("lms", points, kT0);
  }
}

/// Wall time of `rounds` evaluator runs, in ns per run.
template <typename Fn>
double time_runs(int rounds, Fn&& run) {
  const util::TimeNs start = util::monotonic_now_ns();
  for (int i = 0; i < rounds; ++i) run(i);
  return static_cast<double>(util::monotonic_now_ns() - start) / rounds;
}

}  // namespace

int main() {
  std::printf("=== bench_alert: rule evaluation + deadman sweep over %d hosts ===\n\n", kHosts);

  // --- threshold rule, grouped by hostname: 1k state machines per run ---
  tsdb::Storage storage;
  fill_storage(storage);
  alert::Evaluator eval(storage, alert::Evaluator::Options{});
  alert::AlertRule rule;
  rule.name = "cpu_hot";
  rule.measurement = "cpu";
  rule.field = "user_percent";
  rule.cmp = alert::Comparison::kAbove;
  rule.threshold = 200;  // never fires: prices evaluation, not notification
  rule.window = 2 * util::kNanosPerMinute;
  rule.group_by_tags = {"hostname"};
  eval.add(rule);

  const int kRounds = bench::scaled(50, 3);
  const double rule_ns_per_run =
      time_runs(kRounds, [&](int i) { eval.run(kT0 + 60 * kSec + i * kSec); });
  const double rule_ns_per_series = rule_ns_per_run / kHosts;
  std::printf("threshold rule:  %10.0f ns/run   %8.1f ns/series  (%d series)\n",
              rule_ns_per_run, rule_ns_per_series, kHosts);

  // --- deadman sweep: newest-sample scan per watched host ---
  tsdb::Storage dm_storage;
  fill_storage(dm_storage);
  alert::Evaluator::Options dm_opts;
  dm_opts.deadman_window = 10 * util::kNanosPerMinute;  // nobody fires
  alert::Evaluator deadman(dm_storage, dm_opts);
  for (int h = 0; h < kHosts; ++h) deadman.register_host("h" + std::to_string(h));

  const double deadman_ns_per_run =
      time_runs(kRounds, [&](int i) { deadman.run(kT0 + 60 * kSec + i * kSec); });
  const double deadman_ns_per_host = deadman_ns_per_run / kHosts;
  std::printf("deadman sweep:   %10.0f ns/run   %8.1f ns/host    (%d hosts)\n",
              deadman_ns_per_run, deadman_ns_per_host, kHosts);

  json::Object o;
  o["bench"] = "bench_alert";
  o["hosts"] = kHosts;
  o["rounds"] = kRounds;
  o["threshold_rule_ns_per_run"] = rule_ns_per_run;
  o["threshold_rule_ns_per_series"] = rule_ns_per_series;
  o["deadman_ns_per_run"] = deadman_ns_per_run;
  o["deadman_ns_per_host"] = deadman_ns_per_host;
  return bench::write_baseline("BENCH_alert.json", json::Value(std::move(o)).dump_pretty())
             ? 0
             : 1;
}
