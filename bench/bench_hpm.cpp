// Perf-5 (paper §V, §II): the HPM layer — derived-metric formula
// compilation/evaluation, counter simulation, full group sampling and the
// cost of multiplexing more groups.

#include <benchmark/benchmark.h>

#include "lms/hpm/monitor.hpp"
#include "lms/hpm/perfgroup.hpp"
#include "lms/hpm/simulator.hpp"

namespace {

using namespace lms;
using namespace lms::hpm;

constexpr util::TimeNs kSec = util::kNanosPerSecond;

void BM_FormulaCompile(benchmark::State& state) {
  const std::string text = "1.0E-06*(PMC0*2.0+PMC1+PMC2*4.0)/time";
  for (auto _ : state) {
    auto f = Formula::compile(text);
    benchmark::DoNotOptimize(f);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FormulaCompile);

void BM_FormulaEvaluate(benchmark::State& state) {
  auto f = Formula::compile("1.0E-06*(PMC0*2.0+PMC1+PMC2*4.0)/time").take();
  const VarMap vars{{"PMC0", 1e8}, {"PMC1", 5e7}, {"PMC2", 2e8}, {"time", 10.0}};
  for (auto _ : state) {
    auto v = f.evaluate(vars);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FormulaEvaluate);

void BM_GroupParse(benchmark::State& state) {
  const auto text = builtin_group_text("MEM_DP");
  for (auto _ : state) {
    auto g = PerfGroup::parse("MEM_DP", text, simx86());
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GroupParse);

void BM_SimulatorAdvance(benchmark::State& state) {
  CounterSimulator sim(simx86(), 1, 0.01);
  NodeLoad load = idle_load(simx86());
  for (auto& core : load.cores) {
    core.active_fraction = 0.9;
    core.clock_ghz = 2.3;
    core.ipc = 2.0;
    core.flops_dp_per_sec = 1e10;
    core.dp_simd_fraction = 0.8;
  }
  for (auto _ : state) {
    sim.advance(load, kSec);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("16 cores, 2 sockets, all events");
}
BENCHMARK(BM_SimulatorAdvance);

/// One full monitor sample: snapshot all counters, compute deltas with
/// wrap handling, evaluate every metric of the active group.
void BM_MonitorSample(benchmark::State& state) {
  GroupRegistry registry(simx86());
  CounterSimulator sim(simx86(), 1, 0.01);
  HpmMonitor::Options opts;
  opts.groups = {"MEM_DP"};
  opts.hostname = "node1";
  auto monitor = HpmMonitor::create(registry, sim, opts).take();
  NodeLoad load = idle_load(simx86());
  util::TimeNs now = 0;
  monitor.sample(now);
  for (auto _ : state) {
    sim.advance(load, kSec);
    now += kSec;
    auto points = monitor.sample(now);
    benchmark::DoNotOptimize(points);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MonitorSample);

/// Multiplexing sweep: per-sample cost is flat in the number of configured
/// groups (only the active group is evaluated) — the reason likwid-style
/// agents can multiplex many groups cheaply.
void BM_MonitorMultiplexSweep(benchmark::State& state) {
  GroupRegistry registry(simx86());
  CounterSimulator sim(simx86(), 1, 0.01);
  const std::vector<std::string> all = {"MEM_DP", "FLOPS_DP", "FLOPS_SP", "BRANCH",
                                        "L2",     "L3",       "DATA",     "ENERGY"};
  HpmMonitor::Options opts;
  opts.groups.assign(all.begin(), all.begin() + state.range(0));
  opts.hostname = "node1";
  auto monitor = HpmMonitor::create(registry, sim, opts).take();
  NodeLoad load = idle_load(simx86());
  util::TimeNs now = 0;
  monitor.sample(now);
  for (auto _ : state) {
    sim.advance(load, kSec);
    now += kSec;
    auto points = monitor.sample(now);
    benchmark::DoNotOptimize(points);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(state.range(0)) + " multiplexed groups");
}
BENCHMARK(BM_MonitorMultiplexSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_AllBuiltinGroupsEvaluate(benchmark::State& state) {
  GroupRegistry registry(simx86());
  CounterSimulator sim(simx86(), 1, 0.0);
  HpmMonitor::Options opts;
  opts.groups = builtin_group_names();
  auto monitor = HpmMonitor::create(registry, sim, opts).take();
  NodeLoad load = idle_load(simx86());
  sim.advance(load, kSec);
  const auto before = monitor.snapshot();
  sim.advance(load, kSec);
  const auto after = monitor.snapshot();
  const auto names = builtin_group_names();
  for (auto _ : state) {
    for (const auto& name : names) {
      auto point = monitor.evaluate_group(*registry.find(name), before, after, 0, kSec);
      benchmark::DoNotOptimize(point);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(names.size()));
}
BENCHMARK(BM_AllBuiltinGroupsEvaluate);

}  // namespace
