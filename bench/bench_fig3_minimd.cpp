// Fig. 3 regeneration: "Runtime of 100 iterations and the pressure of the
// molecules in Mantevo's miniMD proxy application. Right: Energy and
// temperature. The events at the beginning and end of the application run
// are sent with the libusermetric command line tool."
//
// Runs the miniMD proxy under full monitoring and prints the four
// application-level series versus job runtime (downsampled), plus the
// start/end events — the data behind both panels of the figure.

#include <cstdio>

#include "lms/cluster/harness.hpp"
#include "lms/tsdb/storage.hpp"
#include "lms/util/ascii_chart.hpp"

namespace {

using namespace lms;

constexpr util::TimeNs kMin = util::kNanosPerMinute;

void print_series(const cluster::ClusterHarness& harness, const std::string& field,
                  const std::string& job, util::TimeNs t0, util::TimeNs t1) {
  const auto series = harness.fetcher().fetch({"usermetric", field}, {{"jobid", job}}, t0, t1,
                                              /*window=*/30 * util::kNanosPerSecond);
  if (!series.ok() || series->empty()) {
    std::printf("\n# %s: no data\n", field.c_str());
    return;
  }
  util::AsciiChartOptions chart;
  chart.title = "\n" + field + " vs runtime (30 s means, " + std::to_string(series->size()) +
                " windows)";
  chart.height = 10;
  std::printf("%s", util::ascii_chart(series->values, chart).c_str());
}

}  // namespace

int main() {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 4;
  cluster::ClusterHarness harness(opts);

  const int job_id = harness.submit("minimd", "alice", 4, 10 * kMin);
  if (!harness.run_until_done(job_id, 30 * kMin)) {
    std::printf("job did not finish\n");
    return 1;
  }
  const auto* record = harness.job_record(job_id);
  const std::string job = std::to_string(job_id);

  std::printf("=== Fig. 3: miniMD application-level monitoring ===\n");
  std::printf("job %s on", job.c_str());
  for (const auto& n : record->nodes) std::printf(" %s", n.c_str());
  std::printf(", %s long\n", util::format_duration(record->end_time - record->start_time).c_str());

  // Left panel: runtime per 100 iterations + pressure.
  print_series(harness, "runtime_100iters", job, record->start_time, record->end_time + kMin);
  print_series(harness, "pressure", job, record->start_time, record->end_time + kMin);
  // Right panel: energy + temperature.
  print_series(harness, "energy", job, record->start_time, record->end_time + kMin);
  print_series(harness, "temperature", job, record->start_time, record->end_time + kMin);

  // The begin/end events (dark dashed lines in the figure).
  std::printf("\n# events\n");
  tsdb::Database* db = harness.storage().find_database("lms");
  int events = 0;
  for (const auto* s : db->series_matching("userevents", {{"jobid", job}})) {
    const auto it = s->columns.find("text");
    if (it == s->columns.end()) continue;
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      std::printf("%7.0f  event: %s\n",
                  util::ns_to_seconds(it->second.times()[i] - record->start_time),
                  it->second.values()[i].as_string().c_str());
      ++events;
    }
  }

  // Reproduction check: all four series present with an equilibration
  // transient (temperature drops from its initial value), plus both events.
  const auto temp = harness.fetcher().fetch({"usermetric", "temperature"}, {{"jobid", job}},
                                            record->start_time, record->end_time + kMin);
  bool ok = events >= 2 && temp.ok() && temp->size() > 100;
  if (ok) {
    const double early = temp->values.front();
    const double late = temp->values.back();
    std::printf("\nReproduction check: temperature %f (start) -> %f (end), %d events\n", early,
                late, events);
    ok = late < early;  // equilibration: kinetic energy flows into potential
  }
  std::printf("  -> %s\n", ok ? "OK: physical transient + events reproduced"
                              : "MISMATCH: series shape unexpected");
  return ok ? 0 : 1;
}
