// Prices the distributed-tracing instrumentation on the hot ingest path:
// line-protocol batches POSTed through router -> TSDB over the in-process
// transport, with tracing fully disabled, head-sampling at 0%, the
// production-style 1%, and the keep-everything 100%. Each request crosses
// two traced hops (router server + forward to the TSDB), so the measured
// delta prices span construction, context propagation and recorder pushes —
// the acceptance bar is <5% regression at 1% sampling versus disabled.
// Writes the numbers as a machine-readable baseline to BENCH_trace.json.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "lms/core/router.hpp"
#include "lms/json/json.hpp"
#include "lms/net/transport.hpp"
#include "lms/obs/trace.hpp"
#include "lms/tsdb/http_api.hpp"
#include "lms/tsdb/storage.hpp"
#include "lms/util/clock.hpp"

namespace {

using namespace lms;

constexpr util::TimeNs kSec = util::kNanosPerSecond;
constexpr util::TimeNs kT0 = 1'500'000'000LL * kSec;
const int kBatches = bench::scaled(400, 20);  // requests per run
constexpr int kBatchPoints = 100;   // points per request, like a collector flush
const int kReps = bench::scaled(3, 1);  // best-of to shrug off scheduler noise

struct Config {
  const char* name;
  bool enabled;
  double sample_rate;
};

struct RunResult {
  double points_per_sec = 0;
  double wall_ms = 0;
  std::uint64_t spans_recorded = 0;
};

std::string make_batch(int batch) {
  std::string body;
  body.reserve(static_cast<std::size_t>(kBatchPoints) * 48);
  for (int i = 0; i < kBatchPoints; ++i) {
    body += "cpu,hostname=h" + std::to_string(i % 16) + " user_percent=" +
            std::to_string(batch % 100) + " " +
            std::to_string(kT0 + (static_cast<util::TimeNs>(batch) * kBatchPoints + i) * kSec) +
            "\n";
  }
  return body;
}

RunResult run_ingest(const Config& cfg) {
  obs::set_tracing_enabled(cfg.enabled);
  obs::set_trace_sample_rate(cfg.sample_rate);
  obs::SpanRecorder::global().clear();
  const std::uint64_t recorded_before = obs::SpanRecorder::global().recorded();

  util::SimClock clock(kT0);
  net::InprocNetwork network;
  net::InprocHttpClient client(network);
  tsdb::Storage storage;
  tsdb::HttpApi db_api(storage, clock);
  network.bind("tsdb", db_api.handler());
  core::MetricsRouter::Options router_opts;
  router_opts.db_url = "inproc://tsdb";
  router_opts.publish = false;
  core::MetricsRouter router(client, clock, router_opts, nullptr);
  network.bind("router", router.handler());

  std::vector<std::string> bodies;
  bodies.reserve(kBatches);
  for (int b = 0; b < kBatches; ++b) bodies.push_back(make_batch(b));

  const util::TimeNs start = util::monotonic_now_ns();
  for (const std::string& body : bodies) {
    auto resp = client.post("inproc://router/write?db=lms", body, "text/plain");
    if (!resp.ok() || resp->status != 204) {
      std::fprintf(stderr, "write failed\n");
      std::exit(1);
    }
  }
  const double wall_ns = static_cast<double>(util::monotonic_now_ns() - start);

  RunResult res;
  res.wall_ms = wall_ns / 1e6;
  res.points_per_sec = double(kBatches) * kBatchPoints / (wall_ns / 1e9);
  res.spans_recorded = obs::SpanRecorder::global().recorded() - recorded_before;
  return res;
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  const Config configs[] = {
      {"disabled", false, 1.0},
      {"sampled-0pct", true, 0.0},
      {"sampled-1pct", true, 0.01},
      {"sampled-100pct", true, 1.0},
  };
  std::printf("=== bench_trace: %d batches x %d points through router -> TSDB, "
              "best of %d, %u hardware threads ===\n\n",
              kBatches, kBatchPoints, kReps, hw);
  std::printf("%-16s %12s %10s %14s %12s\n", "config", "Mpts/s", "wall ms", "spans", "overhead");

  json::Array runs;
  double baseline = 0;
  double overhead_1pct = 0;
  double overhead_100pct = 0;
  for (const Config& cfg : configs) {
    RunResult best;
    for (int r = 0; r < kReps; ++r) {
      const RunResult res = run_ingest(cfg);
      if (res.points_per_sec > best.points_per_sec) best = res;
    }
    if (cfg.name == std::string("disabled")) baseline = best.points_per_sec;
    const double overhead =
        baseline > 0 ? (baseline - best.points_per_sec) / baseline * 100.0 : 0.0;
    if (cfg.name == std::string("sampled-1pct")) overhead_1pct = overhead;
    if (cfg.name == std::string("sampled-100pct")) overhead_100pct = overhead;
    std::printf("%-16s %12.2f %10.1f %14llu %10.1f%%\n", cfg.name,
                best.points_per_sec / 1e6, best.wall_ms,
                static_cast<unsigned long long>(best.spans_recorded), overhead);
    json::Object o;
    o["config"] = cfg.name;
    o["tracing_enabled"] = cfg.enabled;
    o["sample_rate"] = cfg.sample_rate;
    o["points_per_sec"] = best.points_per_sec;
    o["wall_ms"] = best.wall_ms;
    o["spans_recorded"] = static_cast<std::int64_t>(best.spans_recorded);
    o["overhead_pct"] = overhead;
    runs.emplace_back(std::move(o));
  }
  obs::set_tracing_enabled(true);
  obs::set_trace_sample_rate(1.0);

  json::Object top;
  top["bench"] = "bench_trace";
  top["hardware_threads"] = static_cast<std::int64_t>(hw);
  top["batches"] = kBatches;
  top["batch_points"] = kBatchPoints;
  top["runs"] = std::move(runs);
  top["overhead_pct_1pct_sampling"] = overhead_1pct;
  top["overhead_pct_100pct_sampling"] = overhead_100pct;
  std::printf("\noverhead at 1%% sampling: %.1f%% (bar: <5%%)\n", overhead_1pct);
  return bench::write_baseline("BENCH_trace.json", json::Value(std::move(top)).dump_pretty())
             ? 0
             : 1;
}
