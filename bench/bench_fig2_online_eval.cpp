// Fig. 2 regeneration: "Output of the online job evaluation with data from
// the start of the job until the loading of the Grafana dashboard. The four
// rightmost columns represent the nodes on which the job is running."
//
// Runs a 4-node job whose behaviour is *not* uniform (one node idles — a
// pathological case the header exists to surface), evaluates online while
// the job is still running, and prints the per-check, per-node table with
// verdicts, exactly the view the dashboard header shows.

#include <cstdio>

#include "lms/cluster/harness.hpp"
#include "lms/cluster/workload.hpp"

namespace {

using namespace lms;

constexpr util::TimeNs kMin = util::kNanosPerMinute;

/// An imbalanced variant where node 3 is completely idle (dead rank).
class OneDeadNode final : public cluster::Workload {
 public:
  explicit OneDeadNode(std::uint64_t seed) : inner_(cluster::make_workload("dgemm", seed)) {}
  std::string name() const override { return "one_dead_node"; }
  cluster::NodeActivity activity(int node_index, int node_count, util::TimeNs elapsed,
                                 const hpm::CounterArchitecture& arch,
                                 util::Rng& rng) override {
    if (node_index == 2) {
      return idle_->activity(node_index, node_count, elapsed, arch, rng);
    }
    return inner_->activity(node_index, node_count, elapsed, arch, rng);
  }

 private:
  std::unique_ptr<cluster::Workload> inner_;
  std::unique_ptr<cluster::Workload> idle_ = cluster::make_workload("idle", 0);
};

}  // namespace

int main() {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 4;
  cluster::ClusterHarness harness(opts);

  const int job = harness.submit_workload(std::make_unique<OneDeadNode>(1), "alice", 4,
                                          60 * kMin);
  // "data from the start of the job until the loading of the dashboard":
  // evaluate 20 minutes into a still-running job.
  harness.run_for(20 * kMin);

  const auto running = harness.router().running_jobs();
  if (running.empty()) {
    std::printf("job did not start\n");
    return 1;
  }
  const auto eval = harness.reporter().evaluate(std::to_string(job), running[0].nodes,
                                                running[0].start_time, harness.now());
  std::printf("=== Fig. 2: online job evaluation header ===\n\n");
  std::printf("%s\n", analysis::render_text(eval).c_str());

  std::printf("Reproduction check (paper: per-node columns surface the bad node):\n");
  bool idle_node_flagged = false;
  for (const auto& row : eval.rows) {
    if (row.check.label != "CPU load") continue;
    for (std::size_t i = 0; i < row.cells.size(); ++i) {
      if (row.cells[i].verdict == analysis::Verdict::kCritical) {
        std::printf("  CPU load critical on %s (%.1f%%)\n", eval.hosts[i].c_str(),
                    row.cells[i].value);
        idle_node_flagged = true;
      }
    }
  }
  std::printf("  -> %s\n", idle_node_flagged ? "OK: dead node visible in the header"
                                             : "MISMATCH: dead node not flagged");
  return idle_node_flagged ? 0 : 1;
}
