// Perf-2 (paper §III-B): router cost — tag-store enrichment as a function of
// attached tag count, forwarding, per-user duplication (~2x write cost), and
// the PUB/SUB publication path. The design claim under test: tagging is an
// O(1) hash lookup per point keyed by hostname.

#include <benchmark/benchmark.h>

#include <limits>
#include <mutex>

#include "lms/core/router.hpp"
#include "lms/core/tagstore.hpp"
#include "lms/lineproto/codec.hpp"
#include "lms/tsdb/http_api.hpp"
#include "lms/util/rng.hpp"

namespace {

using namespace lms;

std::string metric_batch(int points, int hosts) {
  util::Rng rng(7);
  std::vector<lineproto::Point> batch;
  for (int i = 0; i < points; ++i) {
    // Unstamped (timestamp 0): the router assigns its current time, so
    // repeated writes of this batch stay append-ordered in the storage —
    // re-sending literal old timestamps would instead measure the
    // out-of-order insert path.
    batch.push_back(lineproto::make_point(
        "cpu", "user_percent", rng.uniform(0, 100), 0,
        {{"hostname", "node" + std::to_string(i % hosts)}}));
  }
  return lineproto::serialize_batch(batch);
}

/// Full router stack against an in-proc TSDB. The storage is truncated
/// whenever it grows past a bound so accumulated state cannot skew
/// comparisons between benchmark arms.
struct RouterRig {
  tsdb::Storage storage;
  util::SimClock clock{1'000'000'000};
  tsdb::HttpApi db_api{storage, clock};
  net::InprocNetwork network;
  net::InprocHttpClient client{network};
  net::PubSubBroker broker;
  std::unique_ptr<core::MetricsRouter> router;

  explicit RouterRig(bool duplicate, bool publish = true) {
    network.bind("tsdb", db_api.handler());
    core::MetricsRouter::Options opts;
    opts.db_url = "inproc://tsdb";
    opts.duplicate_per_user = duplicate;
    opts.publish = publish;
    router = std::make_unique<core::MetricsRouter>(client, clock, opts, &broker);
  }

  void bound_state(benchmark::State& state) {
    bool too_big = false;
    if (const tsdb::ReadSnapshot snap = storage.snapshot("lms")) {
      too_big = snap->sample_count() > 200'000;
    }
    if (too_big) {
      state.PauseTiming();
      storage.drop_before(std::numeric_limits<tsdb::TimeNs>::max());
      state.ResumeTiming();
    }
  }
};

void BM_TagStoreEnrich(benchmark::State& state) {
  core::TagStore store;
  const int tags = static_cast<int>(state.range(0));
  std::vector<lineproto::Tag> job_tags;
  for (int i = 0; i < tags; ++i) {
    job_tags.emplace_back("k" + std::to_string(i), "v" + std::to_string(i));
  }
  // 64 tagged hosts in the store, like a busy cluster partition.
  for (int h = 0; h < 64; ++h) store.set_tags("node" + std::to_string(h), job_tags);
  lineproto::Point base = lineproto::make_point("cpu", "v", 1.0, 1, {{"hostname", "node17"}});
  for (auto _ : state) {
    lineproto::Point p = base;
    benchmark::DoNotOptimize(store.enrich(p));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(tags) + " job tags");
}
BENCHMARK(BM_TagStoreEnrich)->Arg(0)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_RouterWriteBatch(benchmark::State& state) {
  RouterRig rig(/*duplicate=*/false, /*publish=*/false);
  core::JobSignal signal;
  signal.job_id = "1";
  signal.user = "alice";
  for (int h = 0; h < 16; ++h) signal.nodes.push_back("node" + std::to_string(h));
  (void)rig.router->job_start(signal);
  const std::string body = metric_batch(static_cast<int>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.router->write_lines(body));
    rig.bound_state(state);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RouterWriteBatch)->Arg(10)->Arg(100)->Arg(1000);

void BM_RouterWithDuplication(benchmark::State& state) {
  const bool duplicate = state.range(0) != 0;
  RouterRig rig(duplicate, /*publish=*/false);
  core::JobSignal signal;
  signal.job_id = "1";
  signal.user = "alice";
  for (int h = 0; h < 16; ++h) signal.nodes.push_back("node" + std::to_string(h));
  (void)rig.router->job_start(signal);
  const std::string body = metric_batch(500, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.router->write_lines(body));
    rig.bound_state(state);
  }
  state.SetItemsProcessed(state.iterations() * 500);
  state.SetLabel(duplicate ? "with per-user duplication" : "primary DB only");
}
BENCHMARK(BM_RouterWithDuplication)->Arg(0)->Arg(1);

void BM_RouterWithPubSub(benchmark::State& state) {
  const int subscribers = static_cast<int>(state.range(0));
  RouterRig rig(/*duplicate=*/false, /*publish=*/true);
  std::vector<std::shared_ptr<net::Subscription>> subs;
  for (int i = 0; i < subscribers; ++i) {
    subs.push_back(rig.broker.subscribe("metrics", /*hwm=*/1 << 20));
  }
  const std::string body = metric_batch(500, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.router->write_lines(body));
    rig.bound_state(state);
    // Drain so the queues do not fill up.
    for (auto& s : subs) {
      while (s->try_receive()) {
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * 500);
  state.SetLabel(std::to_string(subscribers) + " stream analyzers");
}
BENCHMARK(BM_RouterWithPubSub)->Arg(0)->Arg(1)->Arg(4);

void BM_JobSignalRoundTrip(benchmark::State& state) {
  RouterRig rig(false, false);
  std::int64_t id = 0;
  for (auto _ : state) {
    core::JobSignal signal;
    signal.job_id = std::to_string(++id);
    signal.user = "alice";
    signal.nodes = {"n1", "n2", "n3", "n4"};
    signal.extra_tags = {{"queue", "batch"}};
    (void)rig.router->job_start(signal);
    (void)rig.router->job_end(signal.job_id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JobSignalRoundTrip);

}  // namespace
