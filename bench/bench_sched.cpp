// Prices the core::TaskScheduler runtime that carries every background
// loop of the stack (ISSUE: router flusher, CQ runner, retention, alerts,
// trace export, self-scrape, collector ticks) plus the TSDB staged-write
// offload:
//
//   1. fan-out   — a burst of no-op tasks submitted from one producer
//                  thread, drained by the worker pool (the steal path);
//   2. pinned    — the same burst spread over affinity keys, exercising the
//                  per-key FIFO lanes the storage drain tasks ride;
//   3. delayed   — a batch of sub-millisecond timers through the shared
//                  min-heap;
//   4. periodic  — manual-mode cadence: a fixed-delay task stepped across a
//                  simulated hour must fire exactly once per interval;
//   5. ingest    — the bench_tsdb_ingest 8-writer mix with the scheduler
//                  attached to the storage (Database::set_scheduler), i.e.
//                  the scheduler path of ROADMAP item 2. In a build with
//                  -DLMS_LOCK_STATS=ON the run also records the tsdb.shard
//                  wait ranking (see BENCH_lock_stats.json for the
//                  direct-vs-offload comparison).
//
// Results land in BENCH_sched.json. LMS_BENCH_SMOKE=1 shrinks the budgets
// and suppresses the baseline write.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "lms/core/sync.hpp"
#include "lms/core/taskscheduler.hpp"
#include "lms/json/json.hpp"
#include "lms/tsdb/storage.hpp"
#include "lms/util/clock.hpp"

namespace {

using namespace lms;
namespace lockstats = core::sync::lockstats;

constexpr util::TimeNs kSec = util::kNanosPerSecond;
constexpr util::TimeNs kT0 = 1'500'000'000LL * kSec;

const int kFanoutTasks = bench::scaled(200'000, 2'000);
const int kPinnedKeys = 16;  // one per storage stripe, the affinity use case
const int kPinnedTasks = bench::scaled(200'000, 2'000);
const int kDelayedTasks = bench::scaled(20'000, 200);
const int kManualSteps = bench::scaled(3'600, 60);  // one simulated hour
const int kIngestPointsPerWriter = bench::scaled(20'000, 500);
constexpr int kIngestWriters = 8;
constexpr int kIngestBatch = 100;
constexpr int kIngestHosts = 64;

/// Spin until the counter reaches `want` (worker completion barrier).
void await(const std::atomic<int>& counter, int want) {
  while (counter.load(std::memory_order_acquire) < want) {
    std::this_thread::yield();
  }
}

double fanout_rate(core::TaskScheduler& sched) {
  std::atomic<int> done{0};
  const util::TimeNs start = util::monotonic_now_ns();
  for (int i = 0; i < kFanoutTasks; ++i) {
    sched.submit([&done] { done.fetch_add(1, std::memory_order_acq_rel); });
  }
  await(done, kFanoutTasks);
  const double wall_ns = static_cast<double>(util::monotonic_now_ns() - start);
  return kFanoutTasks / (wall_ns / 1e9);
}

double pinned_rate(core::TaskScheduler& sched) {
  std::atomic<int> done{0};
  const util::TimeNs start = util::monotonic_now_ns();
  for (int i = 0; i < kPinnedTasks; ++i) {
    sched.submit([&done] { done.fetch_add(1, std::memory_order_acq_rel); },
                 static_cast<std::uint64_t>(i % kPinnedKeys));
  }
  await(done, kPinnedTasks);
  const double wall_ns = static_cast<double>(util::monotonic_now_ns() - start);
  return kPinnedTasks / (wall_ns / 1e9);
}

double delayed_drain_ms(core::TaskScheduler& sched) {
  std::atomic<int> done{0};
  const util::TimeNs start = util::monotonic_now_ns();
  for (int i = 0; i < kDelayedTasks; ++i) {
    // Staggered sub-ms due times: the heap stays populated while draining.
    sched.submit_after(static_cast<util::TimeNs>(i % 97) * 10'000,
                       [&done] { done.fetch_add(1, std::memory_order_acq_rel); });
  }
  await(done, kDelayedTasks);
  return static_cast<double>(util::monotonic_now_ns() - start) / 1e6;
}

/// Manual-mode cadence: stepping one simulated hour in 1 s steps must run a
/// 1 s fixed-delay periodic exactly once per step. Returns the run count.
std::uint64_t manual_periodic_runs() {
  core::TaskScheduler::Options opts;
  opts.manual = true;
  opts.workers = 1;
  opts.name = "bench.sched.manual";
  core::TaskScheduler sched(opts);
  std::atomic<std::uint64_t> runs{0};
  auto task = sched.submit_periodic("bench.periodic", kSec, [&runs] { ++runs; });
  for (int i = 1; i <= kManualSteps; ++i) {
    (void)sched.advance_to(static_cast<util::TimeNs>(i) * kSec);
  }
  task.cancel();
  sched.stop();
  return runs.load();
}

/// The bench_tsdb_ingest multi-writer mix on the scheduler path: contended
/// stripe writes stage and pinned per-stripe tasks drain them.
double ingest_offload_rate(core::TaskScheduler& sched) {
  tsdb::Storage storage(tsdb::Database::kDefaultShards);
  storage.database("lms");
  storage.set_scheduler(&sched);

  const util::TimeNs start = util::monotonic_now_ns();
  std::vector<std::thread> writers;
  writers.reserve(kIngestWriters);
  for (int w = 0; w < kIngestWriters; ++w) {
    writers.emplace_back([&storage, w] {
      std::vector<lineproto::Point> batch;
      batch.reserve(kIngestBatch);
      int written = 0;
      while (written < kIngestPointsPerWriter) {
        batch.clear();
        for (int i = 0; i < kIngestBatch && written < kIngestPointsPerWriter;
             ++i, ++written) {
          lineproto::Point p;
          p.measurement = "cpu";
          p.set_tag("hostname",
                    "w" + std::to_string(w) + "h" + std::to_string(written % kIngestHosts));
          p.add_field("v", static_cast<double>(written));
          p.timestamp = kT0 + static_cast<util::TimeNs>(written) * kSec;
          p.normalize();
          batch.push_back(std::move(p));
        }
        storage.write("lms", batch, kT0);
      }
    });
  }
  for (auto& t : writers) t.join();
  const double wall_ns = static_cast<double>(util::monotonic_now_ns() - start);
  // Quiesce queued drain tasks before the storage goes out of scope.
  storage.set_scheduler(nullptr);
  return double(kIngestWriters) * kIngestPointsPerWriter / (wall_ns / 1e9);
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  core::TaskScheduler sched;  // worker count from LMS_SCHED_WORKERS / hw
  std::printf("=== bench_sched: %zu workers, %u hardware threads ===\n\n",
              sched.worker_count(), hw);

  const double fanout = fanout_rate(sched);
  const double pinned = pinned_rate(sched);
  const double delayed_ms = delayed_drain_ms(sched);
  const core::runtime::SchedStats& stats = sched.stats();
  const std::uint64_t stolen = stats.stolen.load();
  const std::uint64_t steal_attempts = stats.steal_attempts.load();
  std::printf("fan-out:  %10.2f Ktasks/s  (stolen %llu / attempts %llu)\n", fanout / 1e3,
              static_cast<unsigned long long>(stolen),
              static_cast<unsigned long long>(steal_attempts));
  std::printf("pinned:   %10.2f Ktasks/s  (%d keys)\n", pinned / 1e3, kPinnedKeys);
  std::printf("delayed:  %d timers drained in %.2f ms\n", kDelayedTasks, delayed_ms);

  const std::uint64_t periodic_runs = manual_periodic_runs();
  std::printf("periodic: %llu runs over %d manual 1 s steps (want %d)\n",
              static_cast<unsigned long long>(periodic_runs), kManualSteps, kManualSteps);

  if (core::sync::kLockStatsEnabled) {
    lockstats::set_enabled(true);
    lockstats::reset();
  }
  const double ingest = ingest_offload_rate(sched);
  std::printf("ingest:   %10.2f Mpts/s on the scheduler offload path (%d writers)\n",
              ingest / 1e6, kIngestWriters);

  json::Object top;
  top["bench"] = "bench_sched";
  top["hardware_threads"] = static_cast<std::int64_t>(hw);
  top["workers"] = static_cast<std::int64_t>(sched.worker_count());
  top["fanout_tasks"] = kFanoutTasks;
  top["fanout_tasks_per_sec"] = fanout;
  top["stolen"] = static_cast<std::int64_t>(stolen);
  top["steal_attempts"] = static_cast<std::int64_t>(steal_attempts);
  top["pinned_keys"] = kPinnedKeys;
  top["pinned_tasks"] = kPinnedTasks;
  top["pinned_tasks_per_sec"] = pinned;
  top["delayed_tasks"] = kDelayedTasks;
  top["delayed_drain_ms"] = delayed_ms;
  top["manual_steps"] = kManualSteps;
  top["periodic_runs"] = static_cast<std::int64_t>(periodic_runs);
  top["ingest_writers"] = kIngestWriters;
  top["ingest_points_per_writer"] = kIngestPointsPerWriter;
  top["ingest_points_per_sec_offload"] = ingest;
  top["lock_stats_compiled"] = core::sync::kLockStatsEnabled;
  if (core::sync::kLockStatsEnabled) {
    // The tsdb.shard wait picture of the offload run — what /debug/runtime
    // would rank for this workload on the scheduler path.
    json::Array sites;
    for (const auto& s : lockstats::snapshot()) {
      if (s.acquisitions == 0 || sites.size() >= 8) continue;
      json::Object o;
      o["lock"] = std::string(s.name);
      o["rank"] = s.rank;
      o["acquisitions"] = static_cast<std::int64_t>(s.acquisitions);
      o["contended"] = static_cast<std::int64_t>(s.contended);
      o["wait_ns_total"] = static_cast<std::int64_t>(s.wait_ns_total);
      sites.emplace_back(std::move(o));
    }
    top["ingest_ranking"] = std::move(sites);
  }

  sched.stop();
  const bool fired_right = periodic_runs == static_cast<std::uint64_t>(kManualSteps);
  if (!fired_right) {
    std::printf("FAIL: periodic ran %llu times, want %d\n",
                static_cast<unsigned long long>(periodic_runs), kManualSteps);
  }
  const bool wrote =
      bench::write_baseline("BENCH_sched.json", json::Value(std::move(top)).dump_pretty());
  return wrote && fired_right ? 0 : 1;
}
