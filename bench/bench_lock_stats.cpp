// Prices the contention-observability layer, then uses it: the
// bench_tsdb_ingest 8-writer/16-stripe mix runs twice in one instrumented
// binary — first with the lockstats hooks toggled off
// (lockstats::set_enabled(false), the pure-overhead baseline: one relaxed
// load + branch per acquisition), then with them on — so the throughput
// cost of wait/hold timing is measured rather than estimated. The enabled
// run's per-lock wait ranking (what GET /debug/runtime serves) is printed
// and written to BENCH_lock_stats.json as evidence for or against ROADMAP
// item 2's claim that multi-writer ingest is lock-handoff-bound.
//
// A third configuration reruns the same stats-on mix with a TaskScheduler
// attached to the storage (Database::set_scheduler): contended stripe
// writes stage their batches and a pinned per-stripe drain task applies
// them, so the measured tsdb.shard wait should collapse versus the direct
// path. Both rankings land in BENCH_lock_stats.json as the before/after
// evidence for ROADMAP item 2.
//
// In a build without -DLMS_LOCK_STATS=ON the wrappers carry no hooks and
// there is nothing to measure; the binary says so and exits 0 (the smoke
// gate runs it in every configuration).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "lms/core/sync.hpp"
#include "lms/core/taskscheduler.hpp"
#include "lms/json/json.hpp"
#include "lms/tsdb/query.hpp"
#include "lms/tsdb/storage.hpp"
#include "lms/util/clock.hpp"

namespace {

using namespace lms;
namespace lockstats = core::sync::lockstats;

constexpr util::TimeNs kSec = util::kNanosPerSecond;
constexpr util::TimeNs kT0 = 1'500'000'000LL * kSec;
const int kPointsPerWriter = bench::scaled(40'000, 1'000);
constexpr int kBatchSize = 100;      // points per storage.write(), like a collector batch
constexpr int kQueryThreads = 2;     // dashboard-style pollers
constexpr int kHostsPerWriter = 64;  // distinct series per writer thread
constexpr int kWriterThreads = 8;    // the config ROADMAP item 2 talks about
const int kReps = bench::scaled(3, 1);  // alternating off/on pairs; best-of

struct RunResult {
  double points_per_sec = 0;
  double wall_ms = 0;
};

/// One ingest run: 8 writers batch-appending into the 16-stripe storage
/// while query threads poll (same mix as bench_tsdb_ingest). With `offload`
/// the storage routes contended stripe writes through a TaskScheduler's
/// pinned per-stripe drain tasks instead of blocking on the stripe lock.
RunResult run_ingest(bool offload = false) {
  tsdb::Storage storage(tsdb::Database::kDefaultShards);
  storage.database("lms");
  tsdb::Engine engine(storage);
  std::unique_ptr<core::TaskScheduler> sched;
  if (offload) {
    sched = std::make_unique<core::TaskScheduler>();
    storage.set_scheduler(sched.get());
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> queriers;
  queriers.reserve(kQueryThreads);
  for (int q = 0; q < kQueryThreads; ++q) {
    queriers.emplace_back([&engine, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)engine.query("lms", "SELECT count(v) FROM cpu WHERE hostname = 'w0h0'", kT0);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  const util::TimeNs start = util::monotonic_now_ns();
  std::vector<std::thread> writers;
  writers.reserve(kWriterThreads);
  for (int w = 0; w < kWriterThreads; ++w) {
    writers.emplace_back([&storage, w] {
      std::vector<lineproto::Point> batch;
      batch.reserve(kBatchSize);
      int written = 0;
      while (written < kPointsPerWriter) {
        batch.clear();
        for (int i = 0; i < kBatchSize && written < kPointsPerWriter; ++i, ++written) {
          lineproto::Point p;
          p.measurement = "cpu";
          p.set_tag("hostname",
                    "w" + std::to_string(w) + "h" + std::to_string(written % kHostsPerWriter));
          p.add_field("v", static_cast<double>(written));
          p.timestamp = kT0 + static_cast<util::TimeNs>(written) * kSec;
          p.normalize();
          batch.push_back(std::move(p));
        }
        storage.write("lms", batch, kT0);
      }
    });
  }
  for (auto& t : writers) t.join();
  const double wall_ns = static_cast<double>(util::monotonic_now_ns() - start);
  stop.store(true);
  for (auto& t : queriers) t.join();
  if (sched != nullptr) {
    // Quiesce before the storage goes out of scope: queued drain tasks
    // capture shard references.
    storage.set_scheduler(nullptr);
    sched->stop();
  }

  RunResult res;
  res.wall_ms = wall_ns / 1e6;
  res.points_per_sec = double(kWriterThreads) * kPointsPerWriter / (wall_ns / 1e9);
  return res;
}

std::uint64_t site_wait_ns(const std::vector<lockstats::SiteSnapshot>& sites,
                           std::string_view name) {
  for (const auto& s : sites) {
    if (s.name != nullptr && name == s.name) return s.wait_ns_total;
  }
  return 0;
}

/// Print the top sites of a ranking and return them as a JSON array.
json::Array report_ranking(const std::vector<lockstats::SiteSnapshot>& ranking) {
  std::printf("%-28s %5s %12s %12s %14s %12s\n", "lock site", "rank", "acquis.",
              "contended", "wait total ms", "p99 us");
  json::Array sites;
  std::size_t printed = 0;
  for (const auto& s : ranking) {
    if (s.acquisitions == 0 || printed >= 8) continue;
    ++printed;
    std::printf("%-28s %5d %12llu %12llu %14.2f %12.1f\n", s.name, s.rank,
                static_cast<unsigned long long>(s.acquisitions),
                static_cast<unsigned long long>(s.contended),
                static_cast<double>(s.wait_ns_total) / 1e6,
                static_cast<double>(lockstats::wait_quantile_ns(s, 0.99)) / 1e3);
    json::Object o;
    o["lock"] = std::string(s.name);
    o["rank"] = s.rank;
    o["acquisitions"] = static_cast<std::int64_t>(s.acquisitions);
    o["contended"] = static_cast<std::int64_t>(s.contended);
    o["wait_ns_total"] = static_cast<std::int64_t>(s.wait_ns_total);
    o["wait_ns_max"] = static_cast<std::int64_t>(s.wait_ns_max);
    o["wait_p99_ns"] = static_cast<std::int64_t>(lockstats::wait_quantile_ns(s, 0.99));
    o["hold_ns_total"] = static_cast<std::int64_t>(s.hold_ns_total);
    sites.emplace_back(std::move(o));
  }
  return sites;
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (!core::sync::kLockStatsEnabled) {
    std::printf("bench_lock_stats: built without -DLMS_LOCK_STATS=ON, nothing to "
                "measure (wrappers carry no hooks); exiting.\n");
    return 0;
  }

  std::printf("=== bench_lock_stats: %d-writer ingest, %d pts/writer, %d reps, "
              "%u hardware threads ===\n\n",
              kWriterThreads, kPointsPerWriter, kReps, hw);

  // Alternate off/on so drift (thermal, page cache) hits both sides alike;
  // keep the best of each, the usual way to compare two fast paths.
  RunResult best_off, best_on;
  for (int rep = 0; rep < kReps; ++rep) {
    lockstats::set_enabled(false);
    const RunResult off = run_ingest();
    if (off.points_per_sec > best_off.points_per_sec) best_off = off;

    lockstats::set_enabled(true);
    lockstats::reset();  // rank only this run's contention
    const RunResult on = run_ingest();
    if (on.points_per_sec > best_on.points_per_sec) best_on = on;

    std::printf("rep %d: stats off %8.2f Mpts/s   stats on %8.2f Mpts/s\n", rep,
                off.points_per_sec / 1e6, on.points_per_sec / 1e6);
  }
  lockstats::set_enabled(true);

  const double overhead_pct =
      100.0 * (best_off.points_per_sec - best_on.points_per_sec) / best_off.points_per_sec;
  std::printf("\nbest stats-off: %.2f Mpts/s   best stats-on: %.2f Mpts/s   "
              "overhead: %.2f%%\n\n",
              best_off.points_per_sec / 1e6, best_on.points_per_sec / 1e6, overhead_pct);

  // The contention ranking of the final enabled run — the /debug/runtime
  // view of this workload on the direct (blocking) write path.
  const auto ranking = lockstats::snapshot();
  std::printf("--- direct write path ---\n");
  json::Array sites = report_ranking(ranking);
  const std::uint64_t shard_wait_direct = site_wait_ns(ranking, "tsdb.shard");

  // Same mix with the scheduler offload: contended stripe writes stage and
  // a pinned per-stripe task drains them, so writers stop convoying on the
  // tsdb.shard stripe locks.
  RunResult best_offload;
  for (int rep = 0; rep < kReps; ++rep) {
    lockstats::reset();  // rank only this run's contention
    const RunResult off = run_ingest(/*offload=*/true);
    if (off.points_per_sec > best_offload.points_per_sec) best_offload = off;
    std::printf("offload rep %d: %8.2f Mpts/s\n", rep, off.points_per_sec / 1e6);
  }
  const auto ranking_offload = lockstats::snapshot();
  std::printf("\n--- scheduler offload path ---\n");
  json::Array sites_offload = report_ranking(ranking_offload);
  const std::uint64_t shard_wait_offload = site_wait_ns(ranking_offload, "tsdb.shard");
  const double shard_wait_reduction_pct =
      shard_wait_direct > 0
          ? 100.0 * (static_cast<double>(shard_wait_direct) -
                     static_cast<double>(shard_wait_offload)) /
                static_cast<double>(shard_wait_direct)
          : 0.0;
  std::printf("\ntsdb.shard wait: direct %.2f ms -> offload %.2f ms (%.1f%% reduction), "
              "offload best %.2f Mpts/s\n\n",
              static_cast<double>(shard_wait_direct) / 1e6,
              static_cast<double>(shard_wait_offload) / 1e6, shard_wait_reduction_pct,
              best_offload.points_per_sec / 1e6);

  json::Object top;
  top["bench"] = "bench_lock_stats";
  top["hardware_threads"] = static_cast<std::int64_t>(hw);
  top["writer_threads"] = kWriterThreads;
  top["points_per_writer"] = kPointsPerWriter;
  top["batch_size"] = kBatchSize;
  top["query_threads"] = kQueryThreads;
  top["reps"] = kReps;
  top["points_per_sec_stats_off"] = best_off.points_per_sec;
  top["points_per_sec_stats_on"] = best_on.points_per_sec;
  top["overhead_pct"] = overhead_pct;
  top["ranking"] = std::move(sites);
  if (!ranking.empty() && ranking.front().acquisitions > 0) {
    top["top_wait_site"] = std::string(ranking.front().name);
  }
  top["points_per_sec_offload"] = best_offload.points_per_sec;
  top["ranking_offload"] = std::move(sites_offload);
  top["tsdb_shard_wait_ns_direct"] = static_cast<std::int64_t>(shard_wait_direct);
  top["tsdb_shard_wait_ns_offload"] = static_cast<std::int64_t>(shard_wait_offload);
  top["tsdb_shard_wait_reduction_pct"] = shard_wait_reduction_pct;
  return bench::write_baseline("BENCH_lock_stats.json",
                               json::Value(std::move(top)).dump_pretty())
             ? 0
             : 1;
}
