// Prices continuous CPU profiling on the hot ingest path, two ways:
//
// 1. **Direct per-sample cost** (the headline): deliver real SIGPROF
//    signals synchronously (pthread_kill to self -> kernel delivery ->
//    the production handler: backtrace + ring write -> sigreturn) from a
//    representative stack depth, timed with thread CPU time over many
//    thousands of deliveries. Overhead at a given rate is then simply
//    hz * per_sample_cost — at 99 Hz against a saturated core this is the
//    profiler's share of process CPU. The acceptance bar is <2% at the
//    production 99 Hz.
// 2. **End-to-end differential** (corroboration): line-protocol batches
//    POSTed by concurrent writer threads through router -> TSDB over the
//    in-process transport, profiler off vs 99 Hz vs 500 Hz, judged on
//    process CPU time. On a shared/virtualized box this differential
//    carries ±3-5% multiplicative noise (measured with a *trivial* SIGPROF
//    handler, which must price at ~0%), so it can only show the true cost
//    is below the noise floor — the direct measurement is what resolves it.
//
// Writes both as a machine-readable baseline to BENCH_cpuprofile.json.

#include <csignal>
#include <ctime>
#include <pthread.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "lms/core/router.hpp"
#include "lms/json/json.hpp"
#include "lms/net/transport.hpp"
#include "lms/obs/cpuprofiler.hpp"
#include "lms/tsdb/http_api.hpp"
#include "lms/tsdb/storage.hpp"
#include "lms/util/clock.hpp"

namespace {

using namespace lms;

constexpr util::TimeNs kSec = util::kNanosPerSecond;
constexpr util::TimeNs kT0 = 1'500'000'000LL * kSec;
constexpr int kWriters = 8;
const int kBatchesPerWriter = bench::scaled(120, 8);
constexpr int kBatchPoints = 100;
// Each timed run repeats the ingest over kPasses fresh Storage instances:
// runs must be ~1 s long for the best-of-N process-CPU minima to converge
// (on a virtualized single-core box, IRQ/steal accounting puts ~±10% noise
// on a ~200 ms run but only ~±1% on a ~1 s run, measured with a trivial
// SIGPROF handler), and fresh storage per pass keeps the insert cost linear
// — all writers share 16 series, so growing one storage 5x instead would
// tilt the workload toward superlinear sorted inserts.
const int kPasses = bench::scaled(5, 1);
const int kReps = bench::scaled(5, 1);  // best-of to shrug off scheduler noise

struct Config {
  const char* name;
  bool enabled;
  int hz;
};

struct RunResult {
  double points_per_sec = 0;
  double wall_ms = 0;
  double cpu_ms = 0;  ///< process CPU time across all writers
  std::uint64_t samples = 0;
};

double process_cpu_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 + static_cast<double>(ts.tv_nsec) / 1e6;
}

double thread_cpu_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 + static_cast<double>(ts.tv_nsec) / 1e6;
}

/// Recurse to a representative stack depth (the ingest path under a writer
/// is ~30-50 frames of transport/router/storage calls), then deliver n
/// SIGPROF signals to this thread synchronously — each one runs the
/// production handler (backtrace from this depth + ring write) before
/// pthread_kill returns. Returns the depth so the recursion cannot be
/// collapsed.
__attribute__((noinline)) long deliver_signals(int depth, int n) {
  if (depth > 0) return deliver_signals(depth - 1, n) + 1;
  for (int i = 0; i < n; ++i) ::pthread_kill(::pthread_self(), SIGPROF);
  return 0;
}

struct Calibration {
  double per_sample_us = 0;
  long signals = 0;
  std::uint64_t captured = 0;
};

Calibration calibrate_sample_cost() {
  obs::CpuProfiler& prof = obs::CpuProfiler::instance();
  obs::CpuProfiler::Options opts;
  opts.hz = 1;  // timer armed (handler installed) but ~no async samples
  opts.ring_capacity = 8192;
  if (!prof.start(opts).ok()) {
    std::fprintf(stderr, "profiler start failed\n");
    std::exit(1);
  }
  const int chunk = bench::scaled(4000, 200);  // < ring_capacity: no drops
  const int chunks = bench::scaled(10, 2);
  (void)deliver_signals(30, chunk / 4);  // warm the unwinder and the ring
  prof.process_once();
  const std::uint64_t before = prof.stats().samples_captured;
  double cpu = 0;
  long n = 0;
  for (int c = 0; c < chunks; ++c) {
    const double t0 = thread_cpu_ms();
    (void)deliver_signals(30, chunk);
    cpu += thread_cpu_ms() - t0;
    n += chunk;
    prof.process_once();  // drain outside the timed window
  }
  Calibration cal;
  cal.per_sample_us = cpu * 1e3 / static_cast<double>(n);
  cal.signals = n;
  cal.captured = prof.stats().samples_captured - before;
  prof.stop();
  prof.clear();
  return cal;
}

std::string make_batch(int writer, int batch) {
  std::string body;
  body.reserve(static_cast<std::size_t>(kBatchPoints) * 48);
  for (int i = 0; i < kBatchPoints; ++i) {
    body += "cpu,hostname=h" + std::to_string((writer * 7 + i) % 16) +
            " user_percent=" + std::to_string(batch % 100) + " " +
            std::to_string(kT0 +
                           (static_cast<util::TimeNs>(batch) * kBatchPoints + i) * kSec) +
            "\n";
  }
  return body;
}

RunResult run_ingest(const Config& cfg) {
  obs::CpuProfiler& prof = obs::CpuProfiler::instance();
  const std::uint64_t samples_before = prof.stats().samples_captured;
  if (cfg.enabled) {
    obs::CpuProfiler::Options opts;
    opts.hz = cfg.hz;
    opts.max_threads = kWriters + 4;
    opts.ring_capacity = 4096;  // hold a whole run between folds
    if (!prof.start(opts).ok()) {
      std::fprintf(stderr, "profiler start failed\n");
      std::exit(1);
    }
  }

  std::vector<std::vector<std::string>> bodies(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    bodies[w].reserve(kBatchesPerWriter);
    for (int b = 0; b < kBatchesPerWriter; ++b) {
      bodies[w].push_back(make_batch(w, b));
    }
  }

  const double cpu_start = process_cpu_ms();
  const util::TimeNs start = util::monotonic_now_ns();
  for (int pass = 0; pass < kPasses; ++pass) {
    util::SimClock clock(kT0);
    net::InprocNetwork network;
    net::InprocHttpClient client(network);
    tsdb::Storage storage;
    tsdb::HttpApi db_api(storage, clock);
    network.bind("tsdb", db_api.handler());
    core::MetricsRouter::Options router_opts;
    router_opts.db_url = "inproc://tsdb";
    router_opts.publish = false;
    core::MetricsRouter router(client, clock, router_opts, nullptr);
    network.bind("router", router.handler());

    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        for (const std::string& body : bodies[w]) {
          auto resp = client.post("inproc://router/write?db=lms", body, "text/plain");
          if (!resp.ok() || resp->status != 204) {
            std::fprintf(stderr, "write failed\n");
            std::exit(1);
          }
        }
      });
    }
    for (auto& t : writers) t.join();
  }
  const double wall_ns = static_cast<double>(util::monotonic_now_ns() - start);
  const double cpu_ms = process_cpu_ms() - cpu_start;  // before the fold below

  if (cfg.enabled) {
    prof.stop();  // folds pending samples
    prof.clear();
  }

  RunResult res;
  res.wall_ms = wall_ns / 1e6;
  res.cpu_ms = cpu_ms;
  res.points_per_sec = double(kPasses) * kWriters * kBatchesPerWriter * kBatchPoints /
                       (wall_ns / 1e9);
  res.samples = prof.stats().samples_captured - samples_before;
  return res;
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  const Config configs[] = {
      {"off", false, 0},
      {"99hz", true, 99},
      {"500hz", true, 500},
  };
  std::printf("=== bench_cpuprofile: %d passes x %d writers x %d batches x %d points "
              "through router -> TSDB, best of %d, %u hardware threads ===\n\n",
              kPasses, kWriters, kBatchesPerWriter, kBatchPoints, kReps, hw);
  std::printf("%-10s %12s %10s %10s %10s %12s\n", "config", "Mpts/s", "wall ms", "cpu ms",
              "samples", "cpu ovhd");

  // Interleave the configs round-robin (off, 99hz, 500hz, off, ...) so
  // slow drift — allocator warmup, frequency scaling, a noisy neighbour on
  // a shared box — hits every config equally instead of biasing whichever
  // ran first; best-of-N then absorbs the upward spikes.
  constexpr int kConfigs = static_cast<int>(sizeof(configs) / sizeof(configs[0]));
  RunResult bests[kConfigs];
  (void)run_ingest(configs[0]);  // warmup, discarded
  for (int r = 0; r < kReps; ++r) {
    for (int c = 0; c < kConfigs; ++c) {
      const RunResult res = run_ingest(configs[c]);
      if (bests[c].cpu_ms == 0 || res.cpu_ms < bests[c].cpu_ms) {
        bests[c].cpu_ms = res.cpu_ms;
        bests[c].points_per_sec = res.points_per_sec;
        bests[c].wall_ms = res.wall_ms;
      }
      bests[c].samples += res.samples;
    }
  }

  json::Array runs;
  double baseline_cpu = 0;
  double e2e_99hz = 0;
  for (int c = 0; c < kConfigs; ++c) {
    const Config& cfg = configs[c];
    const RunResult& best = bests[c];
    if (cfg.name == std::string("off")) baseline_cpu = best.cpu_ms;
    const double overhead =
        baseline_cpu > 0 ? (best.cpu_ms - baseline_cpu) / baseline_cpu * 100.0 : 0.0;
    if (cfg.name == std::string("99hz")) e2e_99hz = overhead;
    std::printf("%-10s %12.2f %10.1f %10.1f %10llu %10.1f%%\n", cfg.name,
                best.points_per_sec / 1e6, best.wall_ms, best.cpu_ms,
                static_cast<unsigned long long>(best.samples), overhead);
    json::Object o;
    o["config"] = cfg.name;
    o["profiler_enabled"] = cfg.enabled;
    o["hz"] = cfg.hz;
    o["points_per_sec"] = best.points_per_sec;
    o["wall_ms"] = best.wall_ms;
    o["cpu_ms"] = best.cpu_ms;
    o["samples_captured"] = static_cast<std::int64_t>(best.samples);
    o["cpu_overhead_pct"] = overhead;
    runs.emplace_back(std::move(o));
  }

  const Calibration cal = calibrate_sample_cost();
  // A sample costs per_sample_us whenever it fires; at hz samples/sec
  // against one saturated core the profiler's share of process CPU time is
  // hz * per_sample_us / 1e6.
  const double derived_99hz = 99.0 * cal.per_sample_us / 1e6 * 100.0;
  std::printf("\nper-sample cost: %.2f us (%ld synchronous SIGPROF deliveries, "
              "%llu captured, depth-30 stack)\n",
              cal.per_sample_us, cal.signals,
              static_cast<unsigned long long>(cal.captured));
  std::printf("derived overhead at 99 Hz: %.3f%% of one core (bar: <2%%)\n", derived_99hz);
  std::printf("end-to-end CPU differential at 99 Hz: %+.1f%% (noise floor of this box "
              "is +/-3-5%%; corroborates the cost is below it)\n", e2e_99hz);

  json::Object top;
  top["bench"] = "bench_cpuprofile";
  top["hardware_threads"] = static_cast<std::int64_t>(hw);
  top["passes"] = kPasses;
  top["writers"] = kWriters;
  top["batches_per_writer"] = kBatchesPerWriter;
  top["batch_points"] = kBatchPoints;
  top["runs"] = std::move(runs);
  top["per_sample_us"] = cal.per_sample_us;
  top["calibration_signals"] = static_cast<std::int64_t>(cal.signals);
  top["calibration_captured"] = static_cast<std::int64_t>(cal.captured);
  top["overhead_pct_99hz"] = derived_99hz;
  top["e2e_cpu_overhead_pct_99hz"] = e2e_99hz;
  return bench::write_baseline("BENCH_cpuprofile.json",
                               json::Value(std::move(top)).dump_pretty())
             ? 0
             : 1;
}
