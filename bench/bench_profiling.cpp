// Prices the profiling SDK, in two tiers:
//
//   1. Per-marker cost: a start/stop pair on an open profiler, with no
//      collector (pure marker bookkeeping) and with the MEM_DP
//      HpmRegionCollector attached (two counter snapshots + delta
//      attribution per region instance).
//   2. Whole-run overhead on the MiniMD proxy: the cluster harness runs the
//      same simulation with profiling off and with profiling on at MiniMD's
//      default region granularity (4 regions per node per step), and the
//      wall-clock delta is the price of the whole marker pipeline —
//      region brackets, counter attribution, flushes through the router.
//      The acceptance bar is <5% runtime overhead.
//
// Writes the numbers as a machine-readable baseline to BENCH_profiling.json.

#include <cstdio>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "lms/cluster/harness.hpp"
#include "lms/hpm/monitor.hpp"
#include "lms/json/json.hpp"
#include "lms/profiling/profiler.hpp"
#include "lms/util/clock.hpp"

namespace {

using namespace lms;

constexpr util::TimeNs kSec = util::kNanosPerSecond;
constexpr util::TimeNs kMin = util::kNanosPerMinute;

/// ns per start/stop pair on a profiler, best of `reps`.
double marker_pair_ns(profiling::Profiler& profiler, int pairs, int reps) {
  double best = 1e18;
  for (int r = 0; r < reps; ++r) {
    util::TimeNs t = kSec;
    const util::TimeNs start = util::monotonic_now_ns();
    for (int i = 0; i < pairs; ++i) {
      (void)profiler.start("bench", t);
      t += 1000;
      (void)profiler.stop("bench", t);
      t += 1000;
    }
    const double ns = static_cast<double>(util::monotonic_now_ns() - start) / pairs;
    if (ns < best) best = ns;
    profiler.reset();
  }
  return best;
}

/// Wall ms for a MiniMD run on the harness, profiling on or off.
double minimd_wall_ms(bool profiling, util::TimeNs sim_duration) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 4;
  opts.enable_profiling = profiling;
  const util::TimeNs start = util::monotonic_now_ns();
  cluster::ClusterHarness harness(opts);
  const int job = harness.submit("minimd", "bench", 4, sim_duration);
  if (!harness.run_until_done(job, sim_duration * 3)) {
    std::fprintf(stderr, "minimd job did not finish\n");
    std::exit(1);
  }
  return static_cast<double>(util::monotonic_now_ns() - start) / 1e6;
}

}  // namespace

int main() {
  const int pairs = bench::scaled(200'000, 2'000);
  const int reps = bench::scaled(5, 1);
  const int harness_reps = bench::scaled(3, 1);
  const util::TimeNs sim_duration = bench::smoke() ? 2 * kMin : 20 * kMin;

  std::printf("=== bench_profiling: %d marker pairs (best of %d), MiniMD %lld sim-min "
              "(best of %d), %u hardware threads ===\n\n",
              pairs, reps, static_cast<long long>(sim_duration / kMin), harness_reps,
              std::thread::hardware_concurrency());

  // ---- tier 1: per-marker cost ----
  profiling::Profiler bare;
  const double bare_ns = marker_pair_ns(bare, pairs, reps);

  const hpm::CounterArchitecture& arch = hpm::simx86();
  hpm::GroupRegistry groups(arch);
  hpm::CounterSimulator sim(arch, 42, 0.0);
  profiling::Profiler with_hpm;
  auto collector = profiling::HpmRegionCollector::create(groups, sim, "MEM_DP");
  if (!collector.ok()) {
    std::fprintf(stderr, "%s\n", collector.message().c_str());
    return 1;
  }
  with_hpm.add_collector(collector.take());
  const double hpm_ns = marker_pair_ns(with_hpm, pairs, reps);

  std::printf("%-34s %12.0f ns/pair\n", "marker only", bare_ns);
  std::printf("%-34s %12.0f ns/pair  (counter snapshot x2 + attribution)\n",
              "marker + MEM_DP collector", hpm_ns);

  // ---- tier 2: MiniMD proxy, profiling off vs on ----
  double off_ms = 1e18, on_ms = 1e18;
  for (int r = 0; r < harness_reps; ++r) {
    const double off = minimd_wall_ms(false, sim_duration);
    const double on = minimd_wall_ms(true, sim_duration);
    if (off < off_ms) off_ms = off;
    if (on < on_ms) on_ms = on;
  }
  const double overhead_pct = (on_ms - off_ms) / off_ms * 100.0;
  std::printf("\n%-34s %12.1f wall ms\n", "minimd, profiling off", off_ms);
  std::printf("%-34s %12.1f wall ms\n", "minimd, profiling on", on_ms);
  std::printf("%-34s %11.1f%%  (bar: <5%%)\n", "overhead", overhead_pct);

  json::Object top;
  top["bench"] = "bench_profiling";
  top["hardware_threads"] =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  top["marker_pairs"] = pairs;
  top["marker_ns_per_pair"] = bare_ns;
  top["marker_hpm_ns_per_pair"] = hpm_ns;
  top["minimd_sim_minutes"] = static_cast<std::int64_t>(sim_duration / kMin);
  top["minimd_wall_ms_profiling_off"] = off_ms;
  top["minimd_wall_ms_profiling_on"] = on_ms;
  top["minimd_overhead_pct"] = overhead_pct;
  if (!bench::write_baseline("BENCH_profiling.json",
                             json::Value(std::move(top)).dump_pretty())) {
    return 1;
  }
  return 0;
}
