// Observability overhead: the design claim under test is that the obs layer
// is cheap enough to leave on everywhere — a cached counter increment is one
// relaxed atomic add, a histogram record two adds plus a bit-scan, and
// tracing adds only microseconds to an HTTP hop (compare the traced and
// untraced request arms).

#include <benchmark/benchmark.h>

#include <string>

#include "lms/net/transport.hpp"
#include "lms/obs/metrics.hpp"
#include "lms/obs/trace.hpp"

namespace {

using namespace lms;

// Counter increment through a cached reference — the instrumented hot path
// as components use it (resolve once, inc forever).
void BM_CounterIncCached(benchmark::State& state) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("hits");
  for (auto _ : state) {
    c.inc();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterIncCached);

// Registry lookup + increment — the anti-pattern cost, for contrast.
void BM_CounterIncWithLookup(benchmark::State& state) {
  obs::Registry reg;
  for (auto _ : state) {
    reg.counter("hits", {{"route", "/write"}}).inc();
  }
}
BENCHMARK(BM_CounterIncWithLookup);

void BM_GaugeSet(benchmark::State& state) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("depth");
  double v = 0;
  for (auto _ : state) {
    g.set(v);
    v += 1.0;
  }
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("lat");
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = v * 1664525 + 1013904223;  // vary the bucket hit
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_RegistryCollect(benchmark::State& state) {
  obs::Registry reg;
  for (int i = 0; i < 50; ++i) {
    reg.counter("c" + std::to_string(i)).inc(static_cast<std::uint64_t>(i));
    reg.histogram("h" + std::to_string(i)).record(static_cast<std::uint64_t>(i) * 100);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.collect());
  }
}
BENCHMARK(BM_RegistryCollect);

void BM_SpanLifecycle(benchmark::State& state) {
  obs::SpanRecorder recorder(1024);
  for (auto _ : state) {
    obs::Span span("bench.span", "bench", &recorder);
  }
}
BENCHMARK(BM_SpanLifecycle);

// One inproc HTTP request through a trivial handler, traced vs untraced:
// the difference is the full per-hop observability bill (client span +
// header + server adoption + server span + 4 instrument updates per side).
void http_request_arm(benchmark::State& state, bool traced) {
  obs::set_tracing_enabled(traced);
  obs::Registry reg;
  net::InprocNetwork network;
  network.set_registry(&reg);
  network.bind("echo",
               [](const net::HttpRequest&) { return net::HttpResponse::text(200, "ok"); });
  net::InprocHttpClient client(network);
  for (auto _ : state) {
    auto resp = client.get("inproc://echo/ping");
    benchmark::DoNotOptimize(resp);
  }
  obs::set_tracing_enabled(true);
}

void BM_HttpRequestTraced(benchmark::State& state) { http_request_arm(state, true); }
BENCHMARK(BM_HttpRequestTraced);

void BM_HttpRequestUntraced(benchmark::State& state) { http_request_arm(state, false); }
BENCHMARK(BM_HttpRequestUntraced);

}  // namespace
