// Perf-6 (paper §III-D): dashboard generation from templates — substitution,
// per-host row expansion, and full job-dashboard generation (including the
// analysis header and app-metric discovery) as a function of job size.

#include <benchmark/benchmark.h>

#include "lms/cluster/harness.hpp"
#include "lms/dashboard/templates.hpp"

namespace {

using namespace lms;

constexpr util::TimeNs kMin = util::kNanosPerMinute;

void BM_Substitute(benchmark::State& state) {
  dashboard::TemplateStore store;
  const json::Value* tpl = store.find("system_row");
  const dashboard::VarMap vars{{"HOST", "node17"}, {"JOB_ID", "42"},   {"DB", "lms"},
                               {"FROM", "0"},      {"TO", "86400000"}};
  for (auto _ : state) {
    auto v = dashboard::substitute(*tpl, vars);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Substitute);

void BM_ExpandPerHostRows(benchmark::State& state) {
  const int hosts_n = static_cast<int>(state.range(0));
  dashboard::TemplateStore store;
  json::Object dash;
  dash["title"] = "Job ${JOB_ID}";
  dash["rows"] = json::Array{*store.find("system_row")};
  const json::Value tpl{std::move(dash)};
  std::vector<std::string> hosts;
  for (int i = 0; i < hosts_n; ++i) hosts.push_back("node" + std::to_string(i));
  const dashboard::VarMap vars{{"JOB_ID", "42"}, {"DB", "lms"}, {"FROM", "0"}, {"TO", "1"}};
  for (auto _ : state) {
    auto v = dashboard::expand_dashboard(tpl, vars, hosts);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(hosts_n) + " hosts");
}
BENCHMARK(BM_ExpandPerHostRows)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

/// Full job dashboard generation against live data — what the agent does
/// each refresh for each running job.
void BM_GenerateJobDashboard(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  cluster::ClusterHarness::Options opts;
  opts.nodes = nodes;
  cluster::ClusterHarness harness(opts);
  harness.submit("minimd", "alice", nodes, 60 * kMin);
  harness.run_for(5 * kMin);
  const auto jobs = harness.router().running_jobs();
  for (auto _ : state) {
    auto dash = harness.dashboards().generate_job_dashboard(jobs[0], harness.now());
    benchmark::DoNotOptimize(dash);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(nodes) + "-node job");
}
BENCHMARK(BM_GenerateJobDashboard)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_AdminOverview(benchmark::State& state) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 8;
  cluster::ClusterHarness harness(opts);
  for (int i = 0; i < 8; ++i) harness.submit("dgemm", "user" + std::to_string(i), 1, 60 * kMin);
  harness.run_for(2 * kMin);
  const auto jobs = harness.router().running_jobs();
  for (auto _ : state) {
    auto dash = harness.dashboards().generate_admin_dashboard(jobs, harness.now());
    benchmark::DoNotOptimize(dash);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(jobs.size()) + " running jobs");
}
BENCHMARK(BM_AdminOverview);

void BM_DashboardJsonSerialize(benchmark::State& state) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 4;
  cluster::ClusterHarness harness(opts);
  harness.submit("minimd", "alice", 4, 60 * kMin);
  harness.run_for(5 * kMin);
  const auto jobs = harness.router().running_jobs();
  const auto dash = harness.dashboards().generate_job_dashboard(jobs[0], harness.now());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dash.dump_pretty());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DashboardJsonSerialize);

}  // namespace
