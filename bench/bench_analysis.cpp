// Perf-7 (paper §V): analysis costs — offline rule evaluation over a job
// archive, online per-point rule updates, signature building and decision
// tree classification.

#include <benchmark/benchmark.h>

#include "lms/analysis/online.hpp"
#include "lms/analysis/patterns.hpp"
#include "lms/analysis/report.hpp"
#include "lms/analysis/rules.hpp"
#include "lms/cluster/harness.hpp"

namespace {

using namespace lms;

constexpr util::TimeNs kMin = util::kNanosPerMinute;
constexpr util::TimeNs kSec = util::kNanosPerSecond;

/// One finished 4-node compute_break job's worth of data.
struct Archive {
  std::unique_ptr<cluster::ClusterHarness> harness;
  int job = 0;
  const cluster::ClusterHarness::JobRecord* record = nullptr;

  Archive() {
    cluster::ClusterHarness::Options opts;
    opts.nodes = 4;
    harness = std::make_unique<cluster::ClusterHarness>(opts);
    job = harness->submit("compute_break", "alice", 4, 40 * kMin);
    harness->run_until_done(job, 90 * kMin);
    record = harness->job_record(job);
  }
};

Archive& archive() {
  static Archive a;
  return a;
}

void BM_OfflineRuleEvaluation(benchmark::State& state) {
  Archive& a = archive();
  analysis::RuleEngine engine(a.harness->fetcher());
  for (auto& r : analysis::builtin_rules()) engine.add_rule(std::move(r));
  for (auto _ : state) {
    auto findings = engine.evaluate_job(a.record->nodes, std::to_string(a.job),
                                        a.record->start_time, a.record->end_time);
    benchmark::DoNotOptimize(findings);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("4 rules x 4 nodes x 40 min");
}
BENCHMARK(BM_OfflineRuleEvaluation)->Unit(benchmark::kMillisecond);

void BM_OnlineObservePoint(benchmark::State& state) {
  analysis::OnlineRuleEngine engine(analysis::builtin_rules());
  lineproto::Point p;
  p.measurement = "likwid_mem_dp";
  p.set_tag("hostname", "h1");
  p.set_tag("jobid", "1");
  p.add_field("dp_mflop_per_s", 2000.0);
  p.add_field("memory_bandwidth_mbytes_per_s", 8000.0);
  p.add_field("cpi", 0.5);
  p.normalize();
  util::TimeNs t = 0;
  for (auto _ : state) {
    p.timestamp = (t += 10 * kSec);
    engine.observe(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OnlineObservePoint);

void BM_OnlineObserveBatchLines(benchmark::State& state) {
  analysis::OnlineRuleEngine engine(analysis::builtin_rules());
  std::string batch;
  for (int h = 0; h < 16; ++h) {
    batch += "likwid_mem_dp,hostname=node" + std::to_string(h) +
             ",jobid=1 dp_mflop_per_s=2000,memory_bandwidth_mbytes_per_s=8000 " +
             std::to_string(1000000 + h) + "\n";
  }
  for (auto _ : state) {
    engine.observe_lines(batch);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_OnlineObserveBatchLines);

void BM_SignatureFromDb(benchmark::State& state) {
  Archive& a = archive();
  for (auto _ : state) {
    auto sig = analysis::signature_from_db(a.harness->fetcher(), a.record->nodes,
                                           std::to_string(a.job), a.record->start_time,
                                           a.record->end_time, *a.harness->options().arch);
    benchmark::DoNotOptimize(sig);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SignatureFromDb)->Unit(benchmark::kMillisecond);

void BM_DecisionTreeClassify(benchmark::State& state) {
  analysis::JobSignature sig;
  sig.cpu_load = 0.9;
  sig.ipc = 1.2;
  sig.flops_dp_fraction = 0.2;
  sig.mem_bw_fraction = 0.4;
  sig.vectorization_ratio = 0.5;
  sig.branch_miss_ratio = 0.02;
  sig.load_imbalance_cv = 0.1;
  for (auto _ : state) {
    auto c = analysis::DecisionTree::default_tree().classify(sig);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecisionTreeClassify);

void BM_FullJobEvaluation(benchmark::State& state) {
  Archive& a = archive();
  for (auto _ : state) {
    auto eval = a.harness->reporter().evaluate(std::to_string(a.job), a.record->nodes,
                                               a.record->start_time, a.record->end_time);
    benchmark::DoNotOptimize(eval);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("Fig.2 header: checks+rules+classification");
}
BENCHMARK(BM_FullJobEvaluation)->Unit(benchmark::kMillisecond);

}  // namespace
