// Perf-3 (paper §III-C): the time-series back-end — ingest rate, windowed
// aggregation query latency vs. series cardinality, tag-index selectivity
// and retention enforcement.

#include <benchmark/benchmark.h>

#include "lms/lineproto/codec.hpp"
#include "lms/tsdb/persist.hpp"
#include "lms/tsdb/query.hpp"
#include "lms/tsdb/storage.hpp"
#include "lms/util/rng.hpp"

namespace {

using namespace lms;
using tsdb::TimeNs;

constexpr TimeNs kSec = util::kNanosPerSecond;

std::vector<lineproto::Point> make_points(int n, int hosts, TimeNs t0) {
  util::Rng rng(3);
  std::vector<lineproto::Point> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    lineproto::Point p;
    p.measurement = "cpu";
    p.set_tag("hostname", "node" + std::to_string(i % hosts));
    p.set_tag("jobid", std::to_string(i % 8));
    p.add_field("user_percent", rng.uniform(0, 100));
    p.add_field("system_percent", rng.uniform(0, 20));
    p.timestamp = t0 + (i / hosts) * 10 * kSec;
    p.normalize();
    out.push_back(std::move(p));
  }
  return out;
}

void BM_WritePoints(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    tsdb::Storage storage;
    const auto points = make_points(batch, 16, 0);
    state.ResumeTiming();
    storage.write("lms", points, 0);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_WritePoints)->Arg(100)->Arg(1000)->Arg(10000);

void BM_AppendSteadyState(benchmark::State& state) {
  // Long-running ingest into existing series (the common case).
  tsdb::Storage storage;
  storage.write("lms", make_points(1000, 16, 0), 0);
  TimeNs t = 1'000'000 * kSec;
  util::Rng rng(4);
  for (auto _ : state) {
    lineproto::Point p;
    p.measurement = "cpu";
    p.set_tag("hostname", "node3");
    p.set_tag("jobid", "1");
    p.add_field("user_percent", rng.uniform(0, 100));
    p.timestamp = (t += 10 * kSec);
    p.normalize();
    storage.write("lms", {p}, 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AppendSteadyState);

void BM_WindowedQueryVsSeriesCount(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  tsdb::Storage storage;
  // One hour of data at 10 s cadence per host.
  storage.write("lms", make_points(360 * hosts, hosts, 0), 0);
  const auto stmt =
      tsdb::parse_query("SELECT mean(user_percent) FROM cpu WHERE time >= 0 AND "
                        "time < 3600s GROUP BY time(60s), hostname",
                        0);
  for (auto _ : state) {
    auto r = tsdb::execute(storage.snapshot("lms"), *stmt);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(hosts) + " hosts x 360 samples");
}
BENCHMARK(BM_WindowedQueryVsSeriesCount)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_TagSelectiveQuery(benchmark::State& state) {
  tsdb::Storage storage;
  storage.write("lms", make_points(360 * 64, 64, 0), 0);
  // Selective: one host out of 64 — exercises the tag index.
  const auto stmt = tsdb::parse_query(
      "SELECT mean(user_percent) FROM cpu WHERE hostname='node17' AND time >= 0 AND "
      "time < 3600s GROUP BY time(60s)",
      0);
  for (auto _ : state) {
    auto r = tsdb::execute(storage.snapshot("lms"), *stmt);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagSelectiveQuery);

void BM_QueryParse(benchmark::State& state) {
  const std::string q =
      "SELECT mean(user_percent) AS u, max(system_percent) FROM cpu WHERE "
      "hostname='node1' AND jobid='3' AND time >= now() - 1h GROUP BY time(30s) "
      "fill(previous) ORDER BY time DESC LIMIT 100";
  for (auto _ : state) {
    auto stmt = tsdb::parse_query(q, 1'700'000'000LL * kSec);
    benchmark::DoNotOptimize(stmt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryParse);

void BM_RetentionSweep(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    tsdb::Storage storage;
    storage.write("lms", make_points(20000, 32, 0), 0);
    state.ResumeTiming();
    benchmark::DoNotOptimize(storage.drop_before(360 * 10 * kSec / 2));
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_RetentionSweep);

void BM_SnapshotSaveLoad(benchmark::State& state) {
  tsdb::Storage storage;
  storage.write("lms", make_points(20000, 32, 0), 0);
  const std::string path = "/tmp/lms_bench_snapshot.lp";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsdb::save_snapshot(storage, path));
    tsdb::Storage restored;
    benchmark::DoNotOptimize(tsdb::load_snapshot(restored, path));
  }
  state.SetItemsProcessed(state.iterations() * 20000 * 2);  // save + load
}
BENCHMARK(BM_SnapshotSaveLoad)->Unit(benchmark::kMillisecond);

void BM_InfluxJsonEncode(benchmark::State& state) {
  tsdb::Storage storage;
  storage.write("lms", make_points(360 * 16, 16, 0), 0);
  const auto stmt = tsdb::parse_query(
      "SELECT mean(user_percent) FROM cpu WHERE time >= 0 AND time < 3600s "
      "GROUP BY time(60s), hostname",
      0);
  tsdb::QueryResult result = tsdb::execute(storage.snapshot("lms"), *stmt).take();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsdb::to_influx_json(result));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InfluxJsonEncode);

}  // namespace
