// Prices the sharded storage engine's ingest path: N writer threads append
// batches into one database while query threads run aggregations against it
// (the dashboard-poll mix from the paper's production setting). Every
// configuration runs twice — against a single-stripe storage (the old
// global-lock layout, Storage(1)) and against the default 16-stripe layout —
// so the speedup from lock striping is measured, not assumed. A third
// configuration runs the 16-stripe layout with a core::TaskScheduler
// attached (Database::set_scheduler): contended stripe writes stage their
// batches for pinned per-stripe drain tasks instead of convoying on the
// stripe lock. Writes the numbers as a machine-readable baseline to
// BENCH_tsdb_ingest.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "lms/core/taskscheduler.hpp"
#include "lms/json/json.hpp"
#include "lms/tsdb/query.hpp"
#include "lms/tsdb/storage.hpp"
#include "lms/util/clock.hpp"

namespace {

using namespace lms;

constexpr util::TimeNs kSec = util::kNanosPerSecond;
constexpr util::TimeNs kT0 = 1'500'000'000LL * kSec;
const int kPointsPerWriter = bench::scaled(40'000, 1'000);
constexpr int kBatchSize = 100;      // points per storage.write(), like a collector batch
constexpr int kQueryThreads = 2;     // dashboard-style pollers
constexpr int kHostsPerWriter = 64;  // distinct series per writer thread

struct RunResult {
  double points_per_sec = 0;
  double wall_ms = 0;
  std::uint64_t queries_served = 0;
};

RunResult run_ingest(std::size_t stripes, int writer_threads, bool offload = false) {
  tsdb::Storage storage(stripes);
  storage.database("lms");  // pre-create so queriers never miss it
  tsdb::Engine engine(storage);
  std::unique_ptr<core::TaskScheduler> sched;
  if (offload) {
    sched = std::make_unique<core::TaskScheduler>();
    storage.set_scheduler(sched.get());
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> queries{0};
  std::vector<std::thread> queriers;
  queriers.reserve(kQueryThreads);
  for (int q = 0; q < kQueryThreads; ++q) {
    queriers.emplace_back([&storage, &engine, &stop, &queries] {
      while (!stop.load(std::memory_order_relaxed)) {
        // A dashboard-style targeted query: one host's series, bounded cost.
        auto r = engine.query("lms", "SELECT count(v) FROM cpu WHERE hostname = 'w0h0'", kT0);
        if (r.ok()) queries.fetch_add(1, std::memory_order_relaxed);
        // Poll, don't hot-loop: dashboards refresh on an interval.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  const util::TimeNs start = util::monotonic_now_ns();
  std::vector<std::thread> writers;
  writers.reserve(static_cast<std::size_t>(writer_threads));
  for (int w = 0; w < writer_threads; ++w) {
    writers.emplace_back([&storage, w] {
      std::vector<lineproto::Point> batch;
      batch.reserve(kBatchSize);
      int written = 0;
      while (written < kPointsPerWriter) {
        batch.clear();
        for (int i = 0; i < kBatchSize && written < kPointsPerWriter; ++i, ++written) {
          lineproto::Point p;
          p.measurement = "cpu";
          p.set_tag("hostname",
                    "w" + std::to_string(w) + "h" + std::to_string(written % kHostsPerWriter));
          p.add_field("v", static_cast<double>(written));
          p.timestamp = kT0 + static_cast<util::TimeNs>(written) * kSec;
          p.normalize();
          batch.push_back(std::move(p));
        }
        storage.write("lms", batch, kT0);
      }
    });
  }
  for (auto& t : writers) t.join();
  const double wall_ns = static_cast<double>(util::monotonic_now_ns() - start);
  stop.store(true);
  for (auto& t : queriers) t.join();
  if (sched != nullptr) {
    // Quiesce before the storage goes out of scope: queued drain tasks
    // capture shard references.
    storage.set_scheduler(nullptr);
    sched->stop();
  }

  RunResult res;
  res.wall_ms = wall_ns / 1e6;
  res.points_per_sec = double(writer_threads) * kPointsPerWriter / (wall_ns / 1e9);
  res.queries_served = queries.load();
  return res;
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("=== bench_tsdb_ingest: %d pts/writer, batches of %d, %d query threads, "
              "%u hardware threads ===\n\n",
              kPointsPerWriter, kBatchSize, kQueryThreads, hw);
  std::printf("%-22s %8s %12s %12s %10s\n", "config", "writers", "Mpts/s", "wall ms",
              "queries");

  const int writer_counts[] = {1, 4, 8};
  json::Array runs;
  double speedup_at_8 = 0;
  double sched_speedup_at_8 = 0;
  for (const int writers : writer_counts) {
    const RunResult single = run_ingest(1, writers);
    const RunResult sharded = run_ingest(tsdb::Database::kDefaultShards, writers);
    const RunResult offload =
        run_ingest(tsdb::Database::kDefaultShards, writers, /*offload=*/true);
    const double speedup = sharded.points_per_sec / single.points_per_sec;
    const double sched_speedup = offload.points_per_sec / single.points_per_sec;
    if (writers == 8) {
      speedup_at_8 = speedup;
      sched_speedup_at_8 = sched_speedup;
    }
    std::printf("%-22s %8d %12.2f %12.1f %10llu\n", "single-stripe", writers,
                single.points_per_sec / 1e6, single.wall_ms,
                static_cast<unsigned long long>(single.queries_served));
    std::printf("%-22s %8d %12.2f %12.1f %10llu   (%.2fx)\n", "sharded-16", writers,
                sharded.points_per_sec / 1e6, sharded.wall_ms,
                static_cast<unsigned long long>(sharded.queries_served), speedup);
    std::printf("%-22s %8d %12.2f %12.1f %10llu   (%.2fx)\n", "sharded-16+sched", writers,
                offload.points_per_sec / 1e6, offload.wall_ms,
                static_cast<unsigned long long>(offload.queries_served), sched_speedup);
    for (const auto* r : {&single, &sharded, &offload}) {
      json::Object o;
      o["stripes"] = (r == &single) ? 1 : static_cast<std::int64_t>(tsdb::Database::kDefaultShards);
      o["scheduler"] = (r == &offload);
      o["writer_threads"] = writers;
      o["points_per_sec"] = r->points_per_sec;
      o["wall_ms"] = r->wall_ms;
      o["queries_served"] = static_cast<std::int64_t>(r->queries_served);
      runs.emplace_back(std::move(o));
    }
  }

  json::Object top;
  top["bench"] = "bench_tsdb_ingest";
  // Lock striping buys parallel writes; the measured speedup scales with the
  // cores actually available (on a single-core box it only reflects reduced
  // lock-handoff overhead, not parallelism).
  top["hardware_threads"] = static_cast<std::int64_t>(hw);
  top["points_per_writer"] = kPointsPerWriter;
  top["batch_size"] = kBatchSize;
  top["query_threads"] = kQueryThreads;
  top["runs"] = std::move(runs);
  top["speedup_8_writers"] = speedup_at_8;
  top["sched_speedup_8_writers"] = sched_speedup_at_8;
  std::printf("\nsharded speedup at 8 writers: %.2fx   with scheduler offload: %.2fx\n",
              speedup_at_8, sched_speedup_at_8);
  return bench::write_baseline("BENCH_tsdb_ingest.json",
                               json::Value(std::move(top)).dump_pretty())
             ? 0
             : 1;
}
