// Fig. 4 regeneration: "Timeline of the DP FP rate and memory bandwidth of
// a four-node (h1, h2, h3 and h4) job run revealing a longer break in
// computation with FP rate and memory bandwidth below thresholds for more
// than 10 minutes."
//
// Runs the compute_break workload on four nodes, prints the per-host
// timelines of both metrics, and shows the rule engine detecting exactly
// the >10-minute sub-threshold window (and, as a control, NOT detecting a
// shorter dip).

#include <cstdio>

#include "lms/analysis/rules.hpp"
#include "lms/cluster/harness.hpp"
#include "lms/util/ascii_chart.hpp"

namespace {

using namespace lms;

constexpr util::TimeNs kMin = util::kNanosPerMinute;

void print_timelines(const cluster::ClusterHarness& harness, const std::string& job,
                     const std::vector<std::string>& hosts, util::TimeNs t0, util::TimeNs t1) {
  struct FieldSpec {
    const char* field;
    const char* title;
    double threshold;
  };
  const FieldSpec specs[] = {
      {"dp_mflop_per_s", "DP FP rate [MFLOP/s], all hosts (60 s means)", 100.0},
      {"memory_bandwidth_mbytes_per_s", "Memory bandwidth [MB/s], all hosts (60 s means)",
       500.0},
  };
  for (const auto& spec : specs) {
    std::vector<std::string> labels;
    std::vector<std::vector<double>> series;
    for (const auto& host : hosts) {
      labels.push_back(host);
      series.push_back(harness.fetcher()
                           .fetch_host({"likwid_mem_dp", spec.field}, host, job, t0, t1, kMin)
                           .take()
                           .values);
    }
    util::AsciiChartOptions chart;
    chart.title = std::string("\n") + spec.title;
    chart.threshold = spec.threshold;
    chart.show_threshold = true;
    std::printf("%s", util::ascii_chart_multi(labels, series, chart).c_str());
  }
}

int run_scenario(util::TimeNs break_duration, bool expect_detection) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 4;
  cluster::ClusterHarness harness(opts);
  const util::TimeNs duration = 20 * kMin + break_duration + 10 * kMin;
  const int job_id = harness.submit_workload(
      cluster::make_compute_break(10 * kMin, break_duration), "alice", 4, duration);
  if (!harness.run_until_done(job_id, duration * 2)) {
    std::printf("job did not finish\n");
    return 1;
  }
  const auto* record = harness.job_record(job_id);
  const std::string job = std::to_string(job_id);

  std::printf("\n=== scenario: %s break ===\n",
              util::format_duration(break_duration).c_str());
  if (expect_detection) {
    print_timelines(harness, job, record->nodes, record->start_time, record->end_time);
  }

  analysis::RuleEngine engine(harness.fetcher());
  for (auto& r : analysis::builtin_rules()) engine.add_rule(std::move(r));
  const auto findings =
      engine.evaluate_job(record->nodes, job, record->start_time, record->end_time);
  int breaks = 0;
  for (const auto& f : findings) {
    if (f.rule != "compute_break") continue;
    ++breaks;
    std::printf("detected: %s\n", f.to_string().c_str());
  }
  const bool ok = expect_detection ? breaks == 4 : breaks == 0;
  std::printf("Reproduction check: %d/4 nodes flagged, expected %s -> %s\n", breaks,
              expect_detection ? "4 (break > 10 min threshold+timeout)"
                               : "0 (dip shorter than timeout)",
              ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}

}  // namespace

int main() {
  std::printf("=== Fig. 4: pathological job detection (threshold + timeout) ===\n");
  int rc = run_scenario(/*break=*/12 * kMin, /*expect_detection=*/true);
  // Control: a 5-minute dip stays below the 10-minute timeout -> no alarm.
  rc |= run_scenario(/*break=*/5 * kMin, /*expect_detection=*/false);
  return rc;
}
