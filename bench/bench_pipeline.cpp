// Fig. 1 / end-to-end: the whole stack (agents -> router -> DB, scheduler
// signals, PUB/SUB analyzer) driven on virtual time. Measures sustainable
// simulation throughput and how the per-step cost scales with node count —
// the "small- to medium-sized commodity cluster" target of the paper.

#include <benchmark/benchmark.h>

#include "lms/cluster/harness.hpp"

namespace {

using namespace lms;

constexpr util::TimeNs kMin = util::kNanosPerMinute;

/// Simulate one minute of cluster time per iteration with all nodes busy.
void BM_FullStackMinutePerNodeCount(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  cluster::ClusterHarness::Options opts;
  opts.nodes = nodes;
  cluster::ClusterHarness harness(opts);
  harness.submit("dgemm", "alice", nodes, 100000 * kMin);
  harness.run_for(kMin);  // warmup: job started, baselines set
  for (auto _ : state) {
    harness.run_for(kMin);
  }
  state.SetItemsProcessed(state.iterations() * 60);  // simulated seconds
  const auto stats = harness.router().stats();
  state.counters["points_total"] = static_cast<double>(stats.points_out);
  state.SetLabel(std::to_string(nodes) + " nodes");
}
BENCHMARK(BM_FullStackMinutePerNodeCount)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

/// Same, with the miniMD app-level reporting active on top.
void BM_FullStackWithAppMetrics(benchmark::State& state) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 4;
  cluster::ClusterHarness harness(opts);
  harness.submit("minimd", "alice", 4, 100000 * kMin);
  harness.run_for(kMin);
  for (auto _ : state) {
    harness.run_for(kMin);
  }
  state.SetItemsProcessed(state.iterations() * 60);
}
BENCHMARK(BM_FullStackWithAppMetrics)->Unit(benchmark::kMillisecond);

/// Scheduler churn: many short jobs flowing through the queue, with the
/// full signal path (notifier -> router -> DB annotations) active.
void BM_SchedulerChurn(benchmark::State& state) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 8;
  cluster::ClusterHarness harness(opts);
  int user = 0;
  for (auto _ : state) {
    for (int i = 0; i < 4; ++i) {
      harness.submit("dgemm", "user" + std::to_string(++user), 2, 2 * kMin);
    }
    harness.run_for(5 * kMin);
  }
  state.SetItemsProcessed(state.iterations() * 4);  // jobs
  state.SetLabel("4 jobs per 5 simulated minutes, 8 nodes");
}
BENCHMARK(BM_SchedulerChurn)->Unit(benchmark::kMillisecond);

/// Duplication ablation at the stack level (DESIGN.md §4.2): per-user DB
/// duplication roughly doubles DB write work.
void BM_FullStackDuplicationAblation(benchmark::State& state) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 4;
  opts.duplicate_per_user = state.range(0) != 0;
  cluster::ClusterHarness harness(opts);
  harness.submit("dgemm", "alice", 4, 100000 * kMin);
  harness.run_for(kMin);
  for (auto _ : state) {
    harness.run_for(kMin);
  }
  state.SetItemsProcessed(state.iterations() * 60);
  state.SetLabel(opts.duplicate_per_user ? "with per-user duplication" : "primary only");
}
BENCHMARK(BM_FullStackDuplicationAblation)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// The §II data-volume claim: with 5-minute rollups + a 15-minute raw
/// retention window, the stored sample count stays bounded as the cluster
/// runs on, instead of growing linearly.
void BM_DataVolumeControl(benchmark::State& state) {
  const bool rollups = state.range(0) != 0;
  for (auto _ : state) {
    cluster::ClusterHarness::Options opts;
    opts.nodes = 4;
    opts.enable_rollups = rollups;
    opts.retention = rollups ? 15 * kMin : 0;
    cluster::ClusterHarness harness(opts);
    harness.submit("dgemm", "alice", 4, 100000 * kMin);
    harness.run_for(60 * kMin);
    tsdb::Database* db = harness.storage().find_database("lms");
    state.counters["stored_samples"] =
        static_cast<double>(db != nullptr ? db->sample_count() : 0);
  }
  state.SetLabel(rollups ? "rollups + 15 min raw retention" : "raw forever");
}
BENCHMARK(BM_DataVolumeControl)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
