// Unit and property tests for the InfluxDB line protocol codec — the wire
// format every hop of the stack depends on.

#include <gtest/gtest.h>

#include "lms/lineproto/codec.hpp"
#include "lms/util/rng.hpp"

namespace lms::lineproto {
namespace {

TEST(FieldValue, Accessors) {
  EXPECT_DOUBLE_EQ(FieldValue(2.5).as_double(), 2.5);
  EXPECT_EQ(FieldValue(std::int64_t{7}).as_int(), 7);
  EXPECT_EQ(FieldValue(true).as_bool(), true);
  EXPECT_EQ(FieldValue("ev").as_string(), "ev");
  // Cross-type conversions.
  EXPECT_DOUBLE_EQ(FieldValue(std::int64_t{3}).as_double(), 3.0);
  EXPECT_EQ(FieldValue(2.9).as_int(), 2);
  EXPECT_TRUE(FieldValue(1.0).as_bool());
  EXPECT_EQ(FieldValue(2.5).as_string(), "2.5");
  EXPECT_EQ(FieldValue(false).as_string(), "false");
}

TEST(Point, TagOperations) {
  Point p;
  p.measurement = "cpu";
  p.set_tag("hostname", "h1");
  p.set_tag("b", "2");
  p.set_tag("a", "1");
  EXPECT_EQ(p.tag("hostname"), "h1");
  EXPECT_EQ(p.hostname(), "h1");
  EXPECT_TRUE(p.has_tag("a"));
  EXPECT_FALSE(p.has_tag("zz"));
  p.set_tag("a", "9");  // overwrite
  EXPECT_EQ(p.tag("a"), "9");
  p.normalize();
  EXPECT_EQ(p.tags[0].first, "a");
  EXPECT_EQ(p.tags[2].first, "hostname");
}

TEST(Serialize, Basic) {
  Point p = make_point("cpu", "user", 42.5, 1234567890, {{"hostname", "h1"}});
  EXPECT_EQ(serialize(p), "cpu,hostname=h1 user=42.5 1234567890");
}

TEST(Serialize, FieldTypes) {
  Point p;
  p.measurement = "m";
  p.add_field("f", 1.5);
  p.add_field("i", std::int64_t{42});
  p.add_field("b", true);
  p.add_field("s", "text value");
  EXPECT_EQ(serialize(p), R"(m f=1.5,i=42i,b=true,s="text value")");
}

TEST(Serialize, Escaping) {
  Point p;
  p.measurement = "my measurement,x";
  p.set_tag("tag key", "va=l,ue");
  p.add_field("fi eld", "quote\" and \\ backslash");
  EXPECT_EQ(serialize(p),
            "my\\ measurement\\,x,tag\\ key=va\\=l\\,ue "
            "fi\\ eld=\"quote\\\" and \\\\ backslash\"");
}

TEST(Parse, Basic) {
  const auto p = parse_line("cpu,hostname=h1 user=42.5,idle=10 1234567890");
  ASSERT_TRUE(p.ok()) << p.message();
  EXPECT_EQ(p->measurement, "cpu");
  EXPECT_EQ(p->tag("hostname"), "h1");
  ASSERT_EQ(p->fields.size(), 2u);
  EXPECT_DOUBLE_EQ(p->field("user")->as_double(), 42.5);
  EXPECT_DOUBLE_EQ(p->field("idle")->as_double(), 10.0);
  EXPECT_EQ(p->timestamp, 1234567890);
}

TEST(Parse, NoTagsNoTimestamp) {
  const auto p = parse_line("mem used=1");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->tags.empty());
  EXPECT_EQ(p->timestamp, 0);
}

TEST(Parse, ValueTypes) {
  const auto p = parse_line(R"(m f=1.5,i=42i,bt=true,bf=F,s="hello world")");
  ASSERT_TRUE(p.ok()) << p.message();
  EXPECT_TRUE(p->field("f")->is_double());
  EXPECT_TRUE(p->field("i")->is_int());
  EXPECT_EQ(p->field("i")->as_int(), 42);
  EXPECT_EQ(p->field("bt")->as_bool(), true);
  EXPECT_EQ(p->field("bf")->as_bool(), false);
  EXPECT_EQ(p->field("s")->as_string(), "hello world");
}

TEST(Parse, EscapedContent) {
  const auto p =
      parse_line("my\\ meas,k\\=ey=v\\,alue fi\\ eld=\"a \\\" b \\\\ c\" 77");
  ASSERT_TRUE(p.ok()) << p.message();
  EXPECT_EQ(p->measurement, "my meas");
  EXPECT_EQ(p->tag("k=ey"), "v,alue");
  EXPECT_EQ(p->field("fi eld")->as_string(), "a \" b \\ c");
  EXPECT_EQ(p->timestamp, 77);
}

TEST(Parse, Rejections) {
  EXPECT_FALSE(parse_line("").ok());
  EXPECT_FALSE(parse_line("measurement_only").ok());
  EXPECT_FALSE(parse_line("m,badtag value=1").ok());
  EXPECT_FALSE(parse_line("m,k= value=1").ok());
  EXPECT_FALSE(parse_line("m field=").ok());
  EXPECT_FALSE(parse_line("m f=\"unterminated").ok());
  EXPECT_FALSE(parse_line("m f=1 notanumber").ok());
  EXPECT_FALSE(parse_line("m f=12xy34").ok());
  EXPECT_FALSE(parse_line("m f=1 123 trailing").ok());
}

TEST(ParseBatch, MultiLineWithCommentsAndBlanks) {
  const auto points = parse("# comment\ncpu,hostname=h1 u=1\n\nmem,hostname=h1 m=2\n");
  ASSERT_TRUE(points.ok()) << points.message();
  EXPECT_EQ(points->size(), 2u);
}

TEST(ParseBatch, StrictFailsOnBadLine) {
  const auto points = parse("cpu u=1\nbadline\nmem m=2");
  EXPECT_FALSE(points.ok());
  EXPECT_NE(points.message().find("line 2"), std::string::npos);
}

TEST(ParseBatch, LenientSkipsBadLines) {
  std::vector<std::string> errors;
  const auto points = parse_lenient("cpu u=1\nbadline\nmem m=2", &errors);
  EXPECT_EQ(points.size(), 2u);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("line 2"), std::string::npos);
}

TEST(SerializeBatch, ConcatenatesWithNewlines) {
  std::vector<Point> pts;
  pts.push_back(make_point("a", "v", 1.0, 10));
  pts.push_back(make_point("b", "v", 2.0, 20));
  EXPECT_EQ(serialize_batch(pts), "a v=1 10\nb v=2 20\n");
  const auto re = parse(serialize_batch(pts));
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(*re, pts);
}

// ------------------------------------------------- property: roundtrip

std::string random_identifier(util::Rng& rng, bool nasty) {
  static const char kPlain[] = "abcdefghij_0123456789";
  static const char kNasty[] = "abc ,=\"\\xyz";
  const char* alphabet = nasty ? kNasty : kPlain;
  const std::size_t alpha_len = (nasty ? sizeof(kNasty) : sizeof(kPlain)) - 1;
  std::string s;
  const int len = static_cast<int>(rng.uniform_int(1, 10));
  for (int i = 0; i < len; ++i) {
    s.push_back(alphabet[rng.uniform_int(0, static_cast<std::int64_t>(alpha_len) - 1)]);
  }
  return s;
}

Point random_point(util::Rng& rng, bool nasty) {
  Point p;
  p.measurement = random_identifier(rng, nasty);
  const int ntags = static_cast<int>(rng.uniform_int(0, 4));
  for (int i = 0; i < ntags; ++i) {
    // Unique tag keys (duplicate keys are not round-trip stable by design).
    p.set_tag("t" + std::to_string(i) + random_identifier(rng, nasty),
              random_identifier(rng, nasty));
  }
  const int nfields = static_cast<int>(rng.uniform_int(1, 4));
  for (int i = 0; i < nfields; ++i) {
    const std::string key = "f" + std::to_string(i) + random_identifier(rng, nasty);
    switch (rng.uniform_int(0, 3)) {
      case 0:
        p.add_field(key, rng.normal(0, 1e9));
        break;
      case 1:
        p.add_field(key, rng.uniform_int(-1'000'000'000, 1'000'000'000));
        break;
      case 2:
        p.add_field(key, rng.bernoulli(0.5));
        break;
      default:
        p.add_field(key, random_identifier(rng, nasty));
        break;
    }
  }
  p.timestamp = rng.uniform_int(1, 2'000'000'000'000'000'000LL);
  p.normalize();
  return p;
}

class LineProtoRoundTrip : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(LineProtoRoundTrip, SerializeParseIdentity) {
  const auto [seed, nasty] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  for (int i = 0; i < 100; ++i) {
    const Point p = random_point(rng, nasty);
    const std::string line = serialize(p);
    const auto reparsed = parse_line(line);
    ASSERT_TRUE(reparsed.ok()) << line << " -> " << reparsed.message();
    EXPECT_EQ(*reparsed, p) << line;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LineProtoRoundTrip,
                         ::testing::Combine(::testing::Range(1, 7), ::testing::Bool()));

}  // namespace
}  // namespace lms::lineproto
