// Tests for lms::obs::CpuProfiler and ProfileExporter — deterministic
// sample_once()/process_once() paths, trace/task correlation, the timer
// (SIGPROF) mode, the lms_profiles export format, and the HTTP surfaces
// (/debug/pprof, /debug/runtime, /flamegraph) across the full harness.
//
// The profiler is process-global (signals and interval timers are), so
// every test stops and clears it on entry and exit, and asserts on deltas
// of the cumulative counters rather than absolute values.

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "lms/cluster/harness.hpp"
#include "lms/core/runtime.hpp"
#include "lms/obs/cpuprofiler.hpp"
#include "lms/obs/trace.hpp"
#include "lms/tsdb/storage.hpp"
#include "lms/util/clock.hpp"

namespace {

using namespace lms;
using cluster::ClusterHarness;
using obs::CpuProfiler;
using obs::ProfileExporter;
using obs::ProfileStack;

constexpr util::TimeNs kSec = util::kNanosPerSecond;

/// Per-test reset of the process-global profiler.
struct ProfilerReset {
  ProfilerReset() { reset(); }
  ~ProfilerReset() { reset(); }
  static void reset() {
    CpuProfiler::instance().detach();
    CpuProfiler::instance().stop();
    CpuProfiler::instance().clear();
  }
};

CpuProfiler::Options manual_options() {
  CpuProfiler::Options o;
  o.timer = false;  // the test drives capture explicitly
  return o;
}

TEST(CpuProfiler, ManualSampleFoldsIntoCollapsedStacks) {
  ProfilerReset reset;
  CpuProfiler& prof = CpuProfiler::instance();
  const CpuProfiler::Stats before = prof.stats();
  ASSERT_TRUE(prof.start(manual_options()).ok());
  EXPECT_TRUE(prof.running());

  for (int i = 0; i < 5; ++i) prof.sample_once();
  const std::size_t folded = prof.process_once();
  EXPECT_EQ(folded, 5u);

  const CpuProfiler::Stats after = prof.stats();
  EXPECT_EQ(after.samples_captured - before.samples_captured, 5u);
  EXPECT_EQ(after.samples_folded - before.samples_folded, 5u);
  EXPECT_GE(after.rings_active, 1u);
  EXPECT_GE(after.stacks, 1u);

  const std::vector<ProfileStack> stacks = prof.snapshot();
  ASSERT_FALSE(stacks.empty());
  std::uint64_t total = 0;
  for (const ProfileStack& s : stacks) total += s.count;
  EXPECT_EQ(total, 5u);

  // Collapsed text: "stack count\n" per line, heaviest first.
  const std::string text = prof.collapsed();
  ASSERT_FALSE(text.empty());
  const std::size_t space = text.find(' ');
  ASSERT_NE(space, std::string::npos);
  EXPECT_GT(space, 0u);
  EXPECT_EQ(text.back(), '\n');
}

TEST(CpuProfiler, SampleOnceIsNoOpWhenStopped) {
  ProfilerReset reset;
  CpuProfiler& prof = CpuProfiler::instance();
  const CpuProfiler::Stats before = prof.stats();
  EXPECT_FALSE(prof.running());
  prof.sample_once();
  prof.stop();  // idempotent
  EXPECT_EQ(prof.stats().samples_captured, before.samples_captured);
}

TEST(CpuProfiler, SampleCarriesTraceIdIntoFoldTable) {
  ProfilerReset reset;
  const double prev_rate = obs::trace_sample_rate();
  obs::set_trace_sample_rate(1.0);
  CpuProfiler& prof = CpuProfiler::instance();
  ASSERT_TRUE(prof.start(manual_options()).ok());

  std::uint64_t trace_id = 0;
  {
    obs::Span span("test.profiled", "test");
    trace_id = span.context().trace_id;
    prof.sample_once();
  }
  prof.process_once();
  obs::set_trace_sample_rate(prev_rate);

  ASSERT_NE(trace_id, 0u);
  bool found = false;
  for (const ProfileStack& s : prof.snapshot()) {
    if (s.trace_id == trace_id) found = true;
  }
  EXPECT_TRUE(found) << "no folded stack carries the sampled trace id";
}

TEST(CpuProfiler, SampleCarriesSchedulerTaskName) {
  ProfilerReset reset;
  CpuProfiler& prof = CpuProfiler::instance();
  ASSERT_TRUE(prof.start(manual_options()).ok());
  {
    core::runtime::TaskNameScope scope("test.sampled.task");
    prof.sample_once();
  }
  prof.process_once();
  bool found = false;
  for (const ProfileStack& s : prof.snapshot()) {
    if (s.stack.rfind("task:test.sampled.task", 0) == 0) found = true;
  }
  EXPECT_TRUE(found) << "no folded stack starts with the synthetic task root";
}

TEST(CpuProfiler, StackTableOverflowFoldsIntoOverflowBucket) {
  ProfilerReset reset;
  CpuProfiler& prof = CpuProfiler::instance();
  CpuProfiler::Options opts = manual_options();
  opts.max_stacks = 1;
  ASSERT_TRUE(prof.start(opts).ok());
  const std::uint64_t overflows_before = prof.stats().stack_overflows;

  {
    core::runtime::TaskNameScope scope("test.overflow.a");
    prof.sample_once();
  }
  prof.process_once();  // first distinct stack occupies the whole table
  {
    core::runtime::TaskNameScope scope("test.overflow.b");
    prof.sample_once();
  }
  prof.process_once();

  EXPECT_GT(prof.stats().stack_overflows, overflows_before);
  bool overflow_bucket = false;
  for (const ProfileStack& s : prof.snapshot()) {
    if (s.stack == "(overflow)") overflow_bucket = true;
  }
  EXPECT_TRUE(overflow_bucket);
}

TEST(CpuProfiler, ClearResetsAggregateNotCounters) {
  ProfilerReset reset;
  CpuProfiler& prof = CpuProfiler::instance();
  ASSERT_TRUE(prof.start(manual_options()).ok());
  prof.sample_once();
  prof.process_once();
  ASSERT_GE(prof.stats().stacks, 1u);
  const std::uint64_t captured = prof.stats().samples_captured;
  prof.clear();
  EXPECT_EQ(prof.stats().stacks, 0u);
  EXPECT_EQ(prof.stats().samples_captured, captured);
}

TEST(CpuProfiler, StartWhileRunningFails) {
  ProfilerReset reset;
  CpuProfiler& prof = CpuProfiler::instance();
  ASSERT_TRUE(prof.start(manual_options()).ok());
  EXPECT_FALSE(prof.start(manual_options()).ok());
  prof.stop();
  EXPECT_TRUE(prof.start(manual_options()).ok());
}

TEST(CpuProfiler, TimerModeCapturesBusyLoop) {
  ProfilerReset reset;
  CpuProfiler& prof = CpuProfiler::instance();
  const std::uint64_t captured_before = prof.stats().samples_captured;
  CpuProfiler::Options opts;
  opts.hz = 250;
  opts.timer = true;  // real SIGPROF
  ASSERT_TRUE(prof.start(opts).ok());
  EXPECT_TRUE(prof.stats().timer);

  // Burn CPU until a few ticks landed (sanitizer builds accumulate CPU time
  // slower, hence the generous wall-clock deadline).
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  volatile double sink = 0;
  while (prof.stats().samples_captured - captured_before < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 1000000; ++i) sink = sink + static_cast<double>(i) * 0.5;
  }
  prof.stop();  // disarms the timer and folds pending samples

  EXPECT_GT(prof.stats().samples_captured, captured_before);
  EXPECT_FALSE(prof.collapsed().empty());
  // Stopped: no further ticks arrive.
  const std::uint64_t after_stop = prof.stats().samples_captured;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(prof.stats().samples_captured, after_stop);
}

// ------------------------------------------------------- ProfileExporter

TEST(ProfileExporter, ExportsTopStacksAsLineProtocol) {
  ProfilerReset reset;
  const double prev_rate = obs::trace_sample_rate();
  obs::set_trace_sample_rate(1.0);
  CpuProfiler& prof = CpuProfiler::instance();
  ASSERT_TRUE(prof.start(manual_options()).ok());

  std::uint64_t trace_id = 0;
  {
    obs::Span span("test.export", "test");
    trace_id = span.context().trace_id;
    core::runtime::TaskNameScope scope("test.export.task");
    prof.sample_once();
  }
  obs::set_trace_sample_rate(prev_rate);

  util::SimClock clock(1'500'000'000LL * kSec);
  std::vector<std::string> bodies;
  ProfileExporter::Options opts;
  opts.host = "test-host";
  opts.top_k = 5;
  opts.clock = &clock;
  ProfileExporter exporter(
      [&](const std::string& body) -> util::Status {
        bodies.push_back(body);
        return util::Status();
      },
      opts);

  ASSERT_TRUE(exporter.export_once().ok());
  EXPECT_EQ(exporter.exports(), 1u);
  EXPECT_GT(exporter.stacks_exported(), 0u);
  ASSERT_EQ(bodies.size(), 1u);
  const std::string& body = bodies[0];
  EXPECT_NE(body.find("lms_profiles"), std::string::npos);
  EXPECT_NE(body.find("host=test-host"), std::string::npos);
  EXPECT_NE(body.find("rank=0"), std::string::npos);
  EXPECT_NE(body.find("samples="), std::string::npos);
  EXPECT_NE(body.find("stack="), std::string::npos);
  EXPECT_NE(body.find("frame="), std::string::npos);
  EXPECT_NE(body.find("trace_id=" + obs::trace_id_hex(trace_id)), std::string::npos);
  EXPECT_NE(body.find(std::to_string(clock.now())), std::string::npos);
}

TEST(ProfileExporter, EmptyAggregateWritesNothing) {
  ProfilerReset reset;
  CpuProfiler& prof = CpuProfiler::instance();
  ASSERT_TRUE(prof.start(manual_options()).ok());
  int writes = 0;
  ProfileExporter exporter(
      [&](const std::string&) -> util::Status {
        ++writes;
        return util::Status();
      },
      ProfileExporter::Options{});
  EXPECT_TRUE(exporter.export_once().ok());
  EXPECT_EQ(writes, 0);
  EXPECT_EQ(exporter.stacks_exported(), 0u);
}

// ------------------------------------------------------- harness wiring

TEST(HarnessProfile, PprofAnswers503WithoutProfiler) {
  ProfilerReset reset;
  ClusterHarness::Options opts;
  opts.nodes = 1;
  ClusterHarness harness(opts);
  EXPECT_EQ(harness.profile_exporter(), nullptr);
  auto resp = harness.client().get("inproc://router/debug/pprof");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 503);
}

TEST(HarnessProfile, DebugRuntimeShapeOnAllFourAgents) {
  ProfilerReset reset;
  ClusterHarness::Options opts;
  opts.nodes = 2;
  opts.enable_cpuprofile = true;
  ClusterHarness harness(opts);
  ASSERT_NE(harness.profile_exporter(), nullptr);
  harness.run_for(20 * kSec);

  const std::vector<std::string> endpoints = {
      "inproc://router/debug/runtime", "inproc://tsdb/debug/runtime",
      "inproc://grafana/debug/runtime", "inproc://agent-h1/debug/runtime"};
  for (const std::string& url : endpoints) {
    auto resp = harness.client().get(url);
    ASSERT_TRUE(resp.ok()) << url;
    EXPECT_EQ(resp->status, 200) << url;
    for (const char* key :
         {"\"build\"", "\"lock_stats\"", "\"queues\"", "\"loops\"", "\"scheds\"",
          "\"queue_delays\"", "\"profiler\"", "\"samples_captured\"", "\"rings_active\""}) {
      EXPECT_NE(resp->body.find(key), std::string::npos) << url << " missing " << key;
    }
    EXPECT_NE(resp->body.find("\"running\":true"), std::string::npos) << url;
  }
}

TEST(HarnessProfile, PprofAndFlamegraphServeHarnessSamples) {
  ProfilerReset reset;
  ClusterHarness::Options opts;
  opts.nodes = 1;
  opts.enable_cpuprofile = true;
  ClusterHarness harness(opts);
  harness.run_for(30 * kSec);  // 30 steps → 30 deterministic samples

  auto pprof = harness.client().get("inproc://router/debug/pprof");
  ASSERT_TRUE(pprof.ok());
  EXPECT_EQ(pprof->status, 200);
  ASSERT_FALSE(pprof->body.empty());
  // Collapsed format: every line is "stack count".
  const std::size_t eol = pprof->body.find('\n');
  ASSERT_NE(eol, std::string::npos);
  const std::string first_line = pprof->body.substr(0, eol);
  const std::size_t space = first_line.rfind(' ');
  ASSERT_NE(space, std::string::npos);
  EXPECT_GT(std::stoull(first_line.substr(space + 1)), 0u);

  // Same body on every agent's port.
  for (const char* ep : {"inproc://tsdb/debug/pprof", "inproc://grafana/debug/pprof",
                         "inproc://agent-h1/debug/pprof"}) {
    auto resp = harness.client().get(ep);
    ASSERT_TRUE(resp.ok()) << ep;
    EXPECT_EQ(resp->status, 200) << ep;
    EXPECT_FALSE(resp->body.empty()) << ep;
  }

  auto flame = harness.client().get("inproc://grafana/flamegraph");
  ASSERT_TRUE(flame.ok());
  EXPECT_EQ(flame->status, 200);
  EXPECT_NE(flame->headers.get_or("Content-Type", "").find("text/html"), std::string::npos);
  EXPECT_NE(flame->body.find("flamegraph"), std::string::npos);
}

TEST(HarnessProfile, ProfilePointsLandInTsdbWithResolvableTraceId) {
  ProfilerReset reset;
  ClusterHarness::Options opts;
  opts.nodes = 2;
  opts.enable_cpuprofile = true;
  opts.enable_tracing = true;
  opts.async_ingest = true;  // profiles must survive the queued write path
  ClusterHarness harness(opts);
  obs::SpanRecorder::global().clear();

  // Keep a root span open across the simulation: every per-step CPU sample
  // of the harness thread is taken inside it, so the hottest folded stack
  // carries this trace id.
  std::uint64_t trace_id = 0;
  {
    obs::Span span("test.profiled.run", "test");
    trace_id = span.context().trace_id;
    harness.run_for(60 * kSec);
  }
  ASSERT_NE(trace_id, 0u);
  ASSERT_GT(harness.drain_traces(), 0u);
  ASSERT_GT(harness.drain_profiles(), 0u);

  // The lms_profiles measurement exists and a point is tagged with the
  // trace id sampled during the run.
  std::string hex;
  {
    const tsdb::ReadSnapshot snap = harness.storage().snapshot("lms");
    ASSERT_TRUE(snap);
    bool tagged = false;
    std::size_t profile_series = 0;
    for (const tsdb::Series* s :
         snap->series_matching(std::string(obs::kProfileMeasurement), {})) {
      ++profile_series;
      if (s->tag("trace_id") == obs::trace_id_hex(trace_id)) tagged = true;
    }
    ASSERT_GT(profile_series, 0u) << "no lms_profiles series in the TSDB";
    EXPECT_TRUE(tagged) << "no profile point tagged with the sampled trace id";
    hex = obs::trace_id_hex(trace_id);
  }

  // The profile→trace pivot resolves: GET /trace/<id> renders the span the
  // samples were captured under.
  auto page = harness.client().get("inproc://grafana/trace/" + hex);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->status, 200);
  EXPECT_NE(page->body.find("test.profiled.run"), std::string::npos);

  // The flamegraph links hot stacks to their trace.
  auto flame = harness.client().get("inproc://grafana/flamegraph");
  ASSERT_TRUE(flame.ok());
  EXPECT_EQ(flame->status, 200);
  EXPECT_NE(flame->body.find("/trace/" + hex), std::string::npos);
}

TEST(HarnessProfile, SelfScrapeExportsProfilerGauges) {
  ProfilerReset reset;
  ClusterHarness::Options opts;
  opts.nodes = 1;
  opts.enable_cpuprofile = true;
  opts.enable_self_scrape = true;
  ClusterHarness harness(opts);
  harness.run_for(90 * kSec);

  auto resp = harness.client().get("inproc://router/metrics");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("lms_profile_running 1"), std::string::npos);
  EXPECT_NE(resp->body.find("lms_profile_samples_captured_total"), std::string::npos);
  EXPECT_NE(resp->body.find("lms_runtime_sched_queue_delay_count{task="), std::string::npos);
  // Satellite: the exposition carries HELP/TYPE headers.
  EXPECT_NE(resp->body.find("# TYPE lms_profile_running gauge"), std::string::npos);
  EXPECT_NE(resp->body.find("# HELP "), std::string::npos);
}

}  // namespace
