// Tests for the simulated kernel, the system-metric collector plugins and
// the host agent (scheduling, batching, retry behaviour).

#include <gtest/gtest.h>

#include "lms/collector/agent.hpp"
#include "lms/lineproto/codec.hpp"
#include "lms/collector/plugins.hpp"
#include "lms/net/transport.hpp"
#include "lms/obs/metrics.hpp"
#include "lms/sysmon/kernel.hpp"

namespace lms::collector {
namespace {

using sysmon::KernelLoad;
using sysmon::SimulatedKernel;
using util::kNanosPerSecond;

constexpr util::TimeNs kSec = kNanosPerSecond;

KernelLoad busy_load() {
  KernelLoad load;
  load.cpu_user_fraction = 0.6;
  load.cpu_system_fraction = 0.1;
  load.cpu_iowait_fraction = 0.05;
  load.mem_used_bytes = 8e9;
  load.net_rx_bytes_per_sec = 1e6;
  load.net_tx_bytes_per_sec = 5e5;
  load.net_rx_packets_per_sec = 1000;
  load.net_tx_packets_per_sec = 800;
  load.disk_read_bytes_per_sec = 2e6;
  load.disk_write_bytes_per_sec = 4e6;
  load.disk_read_ops_per_sec = 20;
  load.disk_write_ops_per_sec = 40;
  load.runnable_tasks = 10;
  return load;
}

// ---------------------------------------------------------------- kernel

TEST(Kernel, CpuTimeAccounting) {
  SimulatedKernel kernel(16, 64ULL << 30);
  kernel.advance(busy_load(), 10 * kSec);
  const auto t = kernel.cpu_times();
  // 16 cpus * 10 s = 160 cpu-seconds capacity.
  EXPECT_NEAR(t.user, 96.0, 1e-9);
  EXPECT_NEAR(t.system, 16.0, 1e-9);
  EXPECT_NEAR(t.iowait, 8.0, 1e-9);
  EXPECT_NEAR(t.idle, 40.0, 1e-9);
  EXPECT_NEAR(t.total(), 160.0, 1e-9);
}

TEST(Kernel, CountersAccumulateExactly) {
  SimulatedKernel kernel(4, 8ULL << 30);
  for (int i = 0; i < 10; ++i) kernel.advance(busy_load(), kSec);
  EXPECT_EQ(kernel.net_counters().rx_bytes, 10'000'000u);
  EXPECT_EQ(kernel.net_counters().tx_packets, 8000u);
  EXPECT_EQ(kernel.disk_counters().write_bytes, 40'000'000u);
  EXPECT_EQ(kernel.disk_counters().read_ops, 200u);
}

TEST(Kernel, FractionalRatesNotLost) {
  SimulatedKernel kernel(1, 1ULL << 30);
  KernelLoad slow;
  slow.disk_write_ops_per_sec = 0.25;  // one op per 4 seconds
  for (int i = 0; i < 40; ++i) kernel.advance(slow, kSec);
  EXPECT_EQ(kernel.disk_counters().write_ops, 10u);
}

TEST(Kernel, MemoryClampedToCapacity) {
  SimulatedKernel kernel(4, 1ULL << 30);
  KernelLoad load;
  load.mem_used_bytes = 99e18;
  kernel.advance(load, kSec);
  EXPECT_EQ(kernel.meminfo().used_bytes, 1ULL << 30);
  EXPECT_EQ(kernel.meminfo().free_bytes, 0u);
}

TEST(Kernel, LoadAverageConvergesToRunnable) {
  SimulatedKernel kernel(8, 8ULL << 30);
  KernelLoad load;
  load.runnable_tasks = 8.0;
  EXPECT_EQ(kernel.loadavg1(), 0.0);
  for (int i = 0; i < 300; ++i) kernel.advance(load, kSec);  // 5 minutes
  EXPECT_NEAR(kernel.loadavg1(), 8.0, 0.1);
  load.runnable_tasks = 0.0;
  for (int i = 0; i < 60; ++i) kernel.advance(load, kSec);
  EXPECT_LT(kernel.loadavg1(), 8.0 * 0.5);  // decayed substantially
}

// ---------------------------------------------------------------- plugins

TEST(Plugins, CpuPercentagesFromDeltas) {
  SimulatedKernel kernel(8, 8ULL << 30);
  CpuPlugin plugin(kernel, "h1");
  EXPECT_TRUE(plugin.collect(0).empty());  // first sample: baseline only
  kernel.advance(busy_load(), 10 * kSec);
  const auto points = plugin.collect(10 * kSec);
  ASSERT_EQ(points.size(), 1u);
  const auto& p = points[0];
  EXPECT_EQ(p.measurement, "cpu");
  EXPECT_EQ(p.tag("hostname"), "h1");
  EXPECT_NEAR(p.field("user_percent")->as_double(), 60.0, 1e-9);
  EXPECT_NEAR(p.field("system_percent")->as_double(), 10.0, 1e-9);
  EXPECT_NEAR(p.field("idle_percent")->as_double(), 25.0, 1e-9);
}

TEST(Plugins, MemorySnapshot) {
  SimulatedKernel kernel(8, 10ULL << 30);
  KernelLoad load;
  load.mem_used_bytes = 5.0 * (1ULL << 30);
  kernel.advance(load, kSec);
  MemoryPlugin plugin(kernel, "h1");
  const auto points = plugin.collect(kSec);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_NEAR(points[0].field("used_percent")->as_double(), 50.0, 1.0);
  EXPECT_EQ(points[0].field("total_bytes")->as_int(),
            static_cast<std::int64_t>(10ULL << 30));
}

TEST(Plugins, NetworkAndDiskRates) {
  SimulatedKernel kernel(8, 8ULL << 30);
  NetworkPlugin net(kernel, "h1");
  DiskPlugin disk(kernel, "h1");
  net.collect(0);
  disk.collect(0);
  for (int i = 0; i < 10; ++i) kernel.advance(busy_load(), kSec);
  const auto np = net.collect(10 * kSec);
  ASSERT_EQ(np.size(), 1u);
  EXPECT_NEAR(np[0].field("rx_bytes_per_sec")->as_double(), 1e6, 1.0);
  EXPECT_NEAR(np[0].field("tx_packets_per_sec")->as_double(), 800, 0.1);
  const auto dp = disk.collect(10 * kSec);
  ASSERT_EQ(dp.size(), 1u);
  EXPECT_NEAR(dp[0].field("write_bytes_per_sec")->as_double(), 4e6, 1.0);
  EXPECT_NEAR(dp[0].field("read_ops_per_sec")->as_double(), 20, 0.1);
}

// ---------------------------------------------------------------- agent

/// A plugin emitting one fixed point per collection.
class FakePlugin final : public CollectorPlugin {
 public:
  explicit FakePlugin(std::string measurement) : measurement_(std::move(measurement)) {}
  std::string name() const override { return measurement_; }
  std::vector<lineproto::Point> collect(util::TimeNs now) override {
    ++collections_;
    return {lineproto::make_point(measurement_, "v", 1.0, now, {{"hostname", "h1"}})};
  }
  int collections() const { return collections_; }

 private:
  std::string measurement_;
  int collections_ = 0;
};

/// In-proc write sink counting received points; can simulate failure.
struct FakeRouter {
  net::InprocNetwork net;
  std::atomic<int> points{0};
  std::atomic<int> requests{0};
  std::atomic<bool> fail{false};
  std::atomic<int> reject_status{0};

  FakeRouter() {
    net.bind("router", [this](const net::HttpRequest& req) {
      ++requests;
      if (fail.load()) throw std::runtime_error("down");
      if (reject_status.load() != 0) {
        return net::HttpResponse::text(reject_status.load(), "rejected");
      }
      const auto pts = lineproto::parse_lenient(req.body, nullptr);
      points += static_cast<int>(pts.size());
      return net::HttpResponse::no_content();
    });
  }
};

HostAgent::Options agent_options() {
  HostAgent::Options o;
  o.router_url = "inproc://router";
  o.flush_interval = 10 * kSec;
  o.max_batch_points = 100;
  o.retry_queue_capacity = 50;
  return o;
}

TEST(Agent, SchedulesPluginsAtIntervals) {
  FakeRouter router;
  net::InprocHttpClient client(router.net);
  HostAgent agent(client, agent_options());
  auto fast = std::make_unique<FakePlugin>("fast");
  auto slow = std::make_unique<FakePlugin>("slow");
  FakePlugin* fast_raw = fast.get();
  FakePlugin* slow_raw = slow.get();
  agent.add_plugin(std::move(fast), 10 * kSec);
  agent.add_plugin(std::move(slow), 30 * kSec);
  for (int t = 0; t <= 60; t += 10) {
    agent.tick(static_cast<util::TimeNs>(t) * kSec);
  }
  EXPECT_EQ(fast_raw->collections(), 7);  // t=0,10,...,60
  EXPECT_EQ(slow_raw->collections(), 3);  // t=0,30,60
}

TEST(Agent, BatchesByFlushInterval) {
  FakeRouter router;
  net::InprocHttpClient client(router.net);
  HostAgent agent(client, agent_options());
  agent.add_plugin(std::make_unique<FakePlugin>("m"), kSec);
  // 9 ticks: under the flush interval, nothing sent yet after the first
  // flush at t=0 (empty), points buffer up.
  for (int t = 1; t <= 9; ++t) agent.tick(static_cast<util::TimeNs>(t) * kSec);
  EXPECT_EQ(router.points.load(), 0);
  EXPECT_EQ(agent.pending_points(), 9u);
  agent.tick(10 * kSec);  // flush interval reached
  EXPECT_EQ(router.points.load(), 10);
  EXPECT_EQ(agent.pending_points(), 0u);
  EXPECT_EQ(agent.stats().batches_sent, 1u);
}

TEST(Agent, FlushesWhenBatchFull) {
  FakeRouter router;
  net::InprocHttpClient client(router.net);
  auto opts = agent_options();
  opts.max_batch_points = 5;
  opts.flush_interval = 1000 * kSec;
  HostAgent agent(client, opts);
  agent.add_plugin(std::make_unique<FakePlugin>("m"), kSec);
  for (int t = 1; t <= 5; ++t) agent.tick(static_cast<util::TimeNs>(t) * kSec);
  EXPECT_EQ(router.points.load(), 5);
}

TEST(Agent, RetriesAfterFailureWithoutLoss) {
  FakeRouter router;
  net::InprocHttpClient client(router.net);
  HostAgent agent(client, agent_options());
  agent.add_plugin(std::make_unique<FakePlugin>("m"), kSec);
  router.fail = true;
  for (int t = 1; t <= 12; ++t) agent.tick(static_cast<util::TimeNs>(t) * kSec);
  EXPECT_EQ(router.points.load(), 0);
  EXPECT_GE(agent.stats().send_failures, 1u);
  const auto buffered = agent.pending_points();
  EXPECT_GE(buffered, 12u);
  router.fail = false;
  agent.flush(13 * kSec);
  EXPECT_EQ(router.points.load(), static_cast<int>(buffered));
  EXPECT_EQ(agent.stats().points_dropped, 0u);
}

TEST(Agent, BoundedRetryQueueDropsOldest) {
  FakeRouter router;
  net::InprocHttpClient client(router.net);
  auto opts = agent_options();
  opts.retry_queue_capacity = 20;
  opts.flush_interval = 1000000 * kSec;  // never time-flush
  opts.max_batch_points = 1000000;       // never size-flush
  HostAgent agent(client, opts);
  agent.add_plugin(std::make_unique<FakePlugin>("m"), kSec);
  router.fail = true;
  for (int t = 1; t <= 50; ++t) agent.tick(static_cast<util::TimeNs>(t) * kSec);
  EXPECT_EQ(agent.pending_points(), 20u);
  EXPECT_EQ(agent.stats().points_dropped, 30u);
}

TEST(Agent, DropsBatchOn400WithoutRetryLoop) {
  FakeRouter router;
  net::InprocHttpClient client(router.net);
  HostAgent agent(client, agent_options());
  agent.add_plugin(std::make_unique<FakePlugin>("m"), kSec);
  router.reject_status = 400;
  for (int t = 1; t <= 10; ++t) agent.tick(static_cast<util::TimeNs>(t) * kSec);
  EXPECT_EQ(agent.pending_points(), 0u);  // rejected batches dropped, not retried
  EXPECT_GT(agent.stats().points_dropped, 0u);
  EXPECT_EQ(agent.stats().points_sent, 0u);
}

TEST(Agent, StatsTrackCollectedAndSent) {
  FakeRouter router;
  net::InprocHttpClient client(router.net);
  HostAgent agent(client, agent_options());
  agent.add_plugin(std::make_unique<FakePlugin>("a"), kSec);
  agent.add_plugin(std::make_unique<FakePlugin>("b"), kSec);
  for (int t = 1; t <= 10; ++t) agent.tick(static_cast<util::TimeNs>(t) * kSec);
  agent.flush(11 * kSec);
  EXPECT_EQ(agent.stats().points_collected, 20u);
  EXPECT_EQ(agent.stats().points_sent, 20u);
  EXPECT_EQ(router.points.load(), 20);
}

TEST(Agent, ServesMetricsAndRuntimeDebugEndpoints) {
  FakeRouter router;
  net::InprocHttpClient client(router.net);
  obs::Registry registry;
  HostAgent::Options options = agent_options();
  options.registry = &registry;
  HostAgent agent(client, options);
  agent.add_plugin(std::make_unique<FakePlugin>("a"), kSec);
  agent.tick(kSec);

  auto metrics = agent.handler()(net::HttpRequest::get("/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.headers.get_or("Content-Type", ""), obs::kTextExpositionContentType);
  EXPECT_NE(metrics.body.find("collector_points_collected"), std::string::npos);
  // The runtime gauges are folded in on scrape.
  EXPECT_NE(metrics.body.find("lms_lock_stats_enabled"), std::string::npos);

  auto dbg = agent.handler()(net::HttpRequest::get("/debug/runtime"));
  EXPECT_EQ(dbg.status, 200);
  EXPECT_EQ(dbg.headers.get_or("Content-Type", ""), "application/json");
  EXPECT_NE(dbg.body.find("\"lock_stats\""), std::string::npos);
  EXPECT_NE(dbg.body.find("\"queues\""), std::string::npos);
}

}  // namespace
}  // namespace lms::collector
