// Tests for the HPM layer: formula compiler/evaluator, architecture model,
// performance group parsing and validation, counter simulator calibration
// (counts match configured rates), wrap-around handling, and the monitor's
// derived metrics and group multiplexing.

#include <gtest/gtest.h>

#include <cmath>

#include "lms/hpm/arch.hpp"
#include "lms/hpm/formula.hpp"
#include "lms/hpm/monitor.hpp"
#include "lms/hpm/perfgroup.hpp"
#include "lms/hpm/simulator.hpp"

namespace lms::hpm {
namespace {

using util::kNanosPerSecond;

// ---------------------------------------------------------------- formula

double eval(std::string_view text, const VarMap& vars = {}) {
  auto f = Formula::compile(text);
  EXPECT_TRUE(f.ok()) << text << ": " << f.message();
  auto v = f->evaluate(vars);
  EXPECT_TRUE(v.ok()) << text << ": " << v.message();
  return *v;
}

TEST(Formula, Arithmetic) {
  EXPECT_DOUBLE_EQ(eval("1+2*3"), 7.0);
  EXPECT_DOUBLE_EQ(eval("(1+2)*3"), 9.0);
  EXPECT_DOUBLE_EQ(eval("10/4"), 2.5);
  EXPECT_DOUBLE_EQ(eval("2^10"), 1024.0);
  EXPECT_DOUBLE_EQ(eval("2^3^2"), 512.0);  // right associative
  EXPECT_DOUBLE_EQ(eval("-3+5"), 2.0);
  EXPECT_DOUBLE_EQ(eval("--4"), 4.0);
  EXPECT_DOUBLE_EQ(eval("1-2-3"), -4.0);  // left associative
}

TEST(Formula, ScientificNotation) {
  EXPECT_DOUBLE_EQ(eval("1.0E-06*2000000"), 2.0);
  EXPECT_DOUBLE_EQ(eval("2e3"), 2000.0);
  EXPECT_DOUBLE_EQ(eval("1.5E+2"), 150.0);
}

TEST(Formula, Variables) {
  const VarMap vars{{"PMC0", 100.0}, {"time", 2.0}, {"FIXC0", 400.0}};
  EXPECT_DOUBLE_EQ(eval("PMC0/time", vars), 50.0);
  EXPECT_DOUBLE_EQ(eval("1.0E-06*(PMC0*2.0+FIXC0)/time", vars), 3e-4);
}

TEST(Formula, LikwidRealFormulas) {
  // Actual formulas from the shipped groups.
  const VarMap vars{{"FIXC0", 4e9}, {"FIXC1", 2e9}, {"FIXC2", 2.3e9},
                    {"PMC0", 1e8},  {"PMC1", 5e7},  {"PMC2", 2e8},
                    {"time", 1.0},  {"inverseClock", 1.0 / 2.3e9}};
  EXPECT_NEAR(eval("1.0E-06*(FIXC1/FIXC2)/inverseClock", vars), 2000.0, 1e-9);
  EXPECT_DOUBLE_EQ(eval("FIXC1/FIXC0", vars), 0.5);
  EXPECT_NEAR(eval("1.0E-06*(PMC0*2.0+PMC1+PMC2*4.0)/time", vars), 1050.0, 1e-9);
  EXPECT_NEAR(eval("100.0*(PMC0+PMC2)/(PMC0+PMC1+PMC2)", vars), 85.714285, 1e-4);
}

TEST(Formula, DivisionByZeroYieldsZero) {
  EXPECT_DOUBLE_EQ(eval("5/0"), 0.0);
  EXPECT_DOUBLE_EQ(eval("PMC0/PMC1", {{"PMC0", 3.0}, {"PMC1", 0.0}}), 0.0);
}

TEST(Formula, MinMaxAbs) {
  EXPECT_DOUBLE_EQ(eval("min(3, 7)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("max(3, 7)"), 7.0);
  EXPECT_DOUBLE_EQ(eval("abs(-5)"), 5.0);
  EXPECT_DOUBLE_EQ(eval("max(1+1, 3*1)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("min(max(1,5), abs(-3))"), 3.0);
}

TEST(Formula, UnboundVariableFails) {
  auto f = Formula::compile("PMC9/2");
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(f->evaluate({}).ok());
}

TEST(Formula, CompileErrors) {
  EXPECT_FALSE(Formula::compile("").ok());
  EXPECT_FALSE(Formula::compile("1+").ok());
  EXPECT_FALSE(Formula::compile("(1+2").ok());
  EXPECT_FALSE(Formula::compile("1+2)").ok());
  EXPECT_FALSE(Formula::compile("1 2").ok());
  EXPECT_FALSE(Formula::compile("$bad").ok());
}

TEST(Formula, VariableListDeduplicated) {
  auto f = Formula::compile("PMC0+PMC1*PMC0");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->variables(), (std::vector<std::string>{"PMC0", "PMC1"}));
}

// ---------------------------------------------------------------- arch

TEST(Arch, BuiltinsConsistent) {
  for (const CounterArchitecture* arch : {&simx86(), &simx86_small()}) {
    EXPECT_GT(arch->total_cores(), 0);
    EXPECT_GT(arch->peak_dp_flops_per_core, 0);
    EXPECT_GT(arch->peak_mem_bw_per_socket, 0);
    EXPECT_NE(arch->find_slot("PMC0"), nullptr);
    EXPECT_NE(arch->find_slot("FIXC0"), nullptr);
    EXPECT_NE(arch->find_slot("PWR0"), nullptr);
    EXPECT_NE(arch->find_event("INSTR_RETIRED_ANY"), nullptr);
    EXPECT_EQ(arch->find_event("NOT_AN_EVENT"), nullptr);
    EXPECT_EQ(arch->find_slot("PMC99"), nullptr);
  }
  EXPECT_EQ(find_architecture("simx86"), &simx86());
  EXPECT_EQ(find_architecture("simx86-small"), &simx86_small());
  EXPECT_EQ(find_architecture("unknown"), nullptr);
}

TEST(Arch, SchedulabilityRules) {
  const auto& arch = simx86();
  const EventDef* fixed = arch.find_event("INSTR_RETIRED_ANY");
  const EventDef* pmc = arch.find_event("L1D_REPLACEMENT");
  const EventDef* uncore = arch.find_event("CAS_COUNT_RD");
  EXPECT_TRUE(arch.schedulable(*fixed, *arch.find_slot("FIXC0")));
  EXPECT_FALSE(arch.schedulable(*fixed, *arch.find_slot("PMC0")));
  EXPECT_TRUE(arch.schedulable(*pmc, *arch.find_slot("PMC3")));
  EXPECT_FALSE(arch.schedulable(*pmc, *arch.find_slot("MBOX0C0")));
  EXPECT_TRUE(arch.schedulable(*uncore, *arch.find_slot("MBOX0C1")));
}

// ---------------------------------------------------------------- groups

TEST(PerfGroupTest, SanitizeFieldKeys) {
  EXPECT_EQ(sanitize_field_key("DP [MFLOP/s]"), "dp_mflop_per_s");
  EXPECT_EQ(sanitize_field_key("Runtime (RDTSC) [s]"), "runtime_rdtsc_s");
  EXPECT_EQ(sanitize_field_key("Vectorization ratio [%]"), "vectorization_ratio");
  EXPECT_EQ(sanitize_field_key("CPI"), "cpi");
  EXPECT_EQ(sanitize_field_key("Memory bandwidth [MBytes/s]"),
            "memory_bandwidth_mbytes_per_s");
}

class BuiltinGroups
    : public ::testing::TestWithParam<std::tuple<std::string, const CounterArchitecture*>> {};

TEST_P(BuiltinGroups, ParseAndValidate) {
  const auto& [name, arch] = GetParam();
  const auto text = builtin_group_text(name);
  ASSERT_FALSE(text.empty());
  auto group = PerfGroup::parse(name, text, *arch);
  ASSERT_TRUE(group.ok()) << group.message();
  EXPECT_FALSE(group->short_description().empty());
  EXPECT_FALSE(group->events().empty());
  EXPECT_FALSE(group->metrics().empty());
  EXPECT_FALSE(group->long_description().empty());
  for (const auto& m : group->metrics()) {
    EXPECT_FALSE(m.field_key.empty());
  }
}

std::vector<std::tuple<std::string, const CounterArchitecture*>> all_group_arch_combos() {
  std::vector<std::tuple<std::string, const CounterArchitecture*>> out;
  for (const auto& name : builtin_group_names()) {
    out.emplace_back(name, &simx86());
    out.emplace_back(name, &simx86_small());
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllGroupsBothArchs, BuiltinGroups,
                         ::testing::ValuesIn(all_group_arch_combos()),
                         [](const auto& param_info) {
                           return std::get<0>(param_info.param) + "_" +
                                  (std::get<1>(param_info.param) == &simx86() ? "simx86"
                                                                        : "simx86small");
                         });

TEST(PerfGroupTest, ParseRejectsInvalid) {
  const auto& arch = simx86();
  // Unknown slot.
  EXPECT_FALSE(PerfGroup::parse("X", "EVENTSET\nPMC9 INSTR_RETIRED_ANY\nMETRICS\nx time\n",
                                arch)
                   .ok());
  // Unknown event.
  EXPECT_FALSE(PerfGroup::parse("X", "EVENTSET\nPMC0 NOPE\nMETRICS\nx time\n", arch).ok());
  // Not schedulable (fixed event on PMC).
  EXPECT_FALSE(
      PerfGroup::parse("X", "EVENTSET\nPMC0 INSTR_RETIRED_ANY\nMETRICS\nx time\n", arch).ok());
  // Duplicate slot.
  EXPECT_FALSE(PerfGroup::parse(
                   "X", "EVENTSET\nPMC0 L1D_REPLACEMENT\nPMC0 L2_LINES_IN_ALL\nMETRICS\nx time\n",
                   arch)
                   .ok());
  // Metric references unassigned counter.
  EXPECT_FALSE(
      PerfGroup::parse("X", "EVENTSET\nPMC0 L1D_REPLACEMENT\nMETRICS\nx PMC1/time\n", arch)
          .ok());
  // Empty sections.
  EXPECT_FALSE(PerfGroup::parse("X", "METRICS\nx time\n", arch).ok());
  EXPECT_FALSE(PerfGroup::parse("X", "EVENTSET\nPMC0 L1D_REPLACEMENT\n", arch).ok());
}

TEST(GroupRegistryTest, BuiltinsPreloaded) {
  GroupRegistry registry(simx86());
  EXPECT_EQ(registry.names().size(), builtin_group_names().size());
  ASSERT_NE(registry.find("FLOPS_DP"), nullptr);
  EXPECT_EQ(registry.find("FLOPS_DP")->measurement(), "likwid_flops_dp");
  EXPECT_EQ(registry.find("nope"), nullptr);
  // Custom group can be added.
  EXPECT_TRUE(registry
                  .add("CUSTOM",
                       "SHORT c\nEVENTSET\nFIXC0 INSTR_RETIRED_ANY\nMETRICS\nInstr FIXC0\nLONG\nx")
                  .ok());
  EXPECT_NE(registry.find("CUSTOM"), nullptr);
}

// ---------------------------------------------------------------- simulator

TEST(Simulator, CalibratedCounts) {
  const auto& arch = simx86();
  CounterSimulator sim(arch, 1, /*noise_sigma=*/0.0);
  NodeLoad load = idle_load(arch);
  // One fully busy core at nominal clock, IPC 2, 1 GFLOP/s scalar DP.
  load.cores[0].clock_ghz = arch.nominal_clock_ghz;
  load.cores[0].active_fraction = 1.0;
  load.cores[0].ipc = 2.0;
  load.cores[0].flops_dp_per_sec = 1e9;
  load.cores[0].dp_simd_fraction = 0.0;
  load.sockets[0].mem_read_bw_bytes_per_sec = 6.4e9;
  load.sockets[0].package_power_watts = 100.0;
  sim.advance(load, 2 * kNanosPerSecond);

  const double cycles = static_cast<double>(sim.read(EventKind::kCoreCyclesUnhalted, 0));
  EXPECT_NEAR(cycles, 2 * arch.nominal_clock_ghz * 1e9, 1e3);
  EXPECT_NEAR(static_cast<double>(sim.read(EventKind::kInstructionsRetired, 0)), 2 * cycles,
              1e3);
  EXPECT_NEAR(static_cast<double>(sim.read(EventKind::kFlopsScalarDp, 0)), 2e9, 1.0);
  EXPECT_EQ(sim.read(EventKind::kFlopsPacked256Dp, 0), 0u);
  // 6.4 GB/s read = 1e8 cachelines/s * 2 s.
  EXPECT_NEAR(static_cast<double>(sim.read(EventKind::kCasReadUncore, 0)), 2e8, 10.0);
  // Energy: 200 J / unit.
  const double units = static_cast<double>(sim.read(EventKind::kPkgEnergyUncore, 0));
  EXPECT_NEAR(units * arch.energy_unit_joules, 200.0, 0.01);
}

TEST(Simulator, CountsAreMonotone) {
  const auto& arch = simx86_small();
  CounterSimulator sim(arch, 2, 0.05);
  NodeLoad load = idle_load(arch);
  load.cores[0].active_fraction = 0.9;
  load.cores[0].clock_ghz = 3.0;
  load.cores[0].ipc = 1.5;
  std::uint64_t prev = 0;
  for (int i = 0; i < 20; ++i) {
    sim.advance(load, kNanosPerSecond);
    const std::uint64_t cur = sim.read(EventKind::kInstructionsRetired, 0);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Simulator, WrapDelta) {
  const std::uint64_t mask = CounterSimulator::kCoreCounterMask;
  EXPECT_EQ(CounterSimulator::wrap_delta(100, 40, mask), 60u);
  // Wrapped: before near the top, now small.
  EXPECT_EQ(CounterSimulator::wrap_delta(5, mask - 4, mask), 10u);
  EXPECT_EQ(CounterSimulator::wrap_delta(7, 7, mask), 0u);
}

TEST(Simulator, EnergyCounterWrapsAt32Bits) {
  const auto& arch = simx86();
  CounterSimulator sim(arch, 3, 0.0);
  NodeLoad load = idle_load(arch);
  // Huge power so the 32-bit energy counter wraps quickly:
  // 2^32 units * 6.1e-5 J/unit = ~262 kJ; at 100 kW that is ~2.6 s.
  load.sockets[0].package_power_watts = 1e5;
  std::uint64_t before = sim.read(EventKind::kPkgEnergyUncore, 0);
  double total_joules = 0;
  for (int i = 0; i < 10; ++i) {
    sim.advance(load, kNanosPerSecond);
    const std::uint64_t now = sim.read(EventKind::kPkgEnergyUncore, 0);
    EXPECT_LE(now, CounterSimulator::kEnergyCounterMask);
    total_joules += static_cast<double>(CounterSimulator::wrap_delta(
                        now, before, CounterSimulator::kEnergyCounterMask)) *
                    arch.energy_unit_joules;
    before = now;
  }
  // Despite several wraps the reconstructed energy is right: 1 MJ.
  EXPECT_NEAR(total_joules, 1e6, 1e3);
}

TEST(Simulator, NoiseAveragesOut) {
  const auto& arch = simx86_small();
  CounterSimulator sim(arch, 4, 0.05);
  NodeLoad load = idle_load(arch);
  load.cores[0].active_fraction = 1.0;
  load.cores[0].clock_ghz = 3.5;
  load.cores[0].ipc = 1.0;
  for (int i = 0; i < 100; ++i) sim.advance(load, kNanosPerSecond);
  const double cycles = static_cast<double>(sim.read(EventKind::kCoreCyclesUnhalted, 0));
  EXPECT_NEAR(cycles, 100 * 3.5e9, 0.02 * 100 * 3.5e9);
}

// ---------------------------------------------------------------- monitor

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() : registry_(simx86()), sim_(simx86(), 7, 0.0) {}

  NodeLoad busy_load(double flops_frac, double bw_frac) {
    const auto& arch = simx86();
    NodeLoad load = idle_load(arch);
    for (auto& core : load.cores) {
      core.clock_ghz = arch.nominal_clock_ghz;
      core.active_fraction = 1.0;
      core.ipc = 2.0;
      core.flops_dp_per_sec = flops_frac * arch.peak_dp_flops_per_core;
      core.dp_simd_fraction = 0.8;
      core.branch_per_instr = 0.1;
      core.branch_miss_ratio = 0.02;
    }
    for (auto& socket : load.sockets) {
      socket.mem_read_bw_bytes_per_sec = bw_frac * arch.peak_mem_bw_per_socket * 0.7;
      socket.mem_write_bw_bytes_per_sec = bw_frac * arch.peak_mem_bw_per_socket * 0.3;
      socket.package_power_watts = 120;
    }
    return load;
  }

  GroupRegistry registry_;
  CounterSimulator sim_;
};

TEST_F(MonitorTest, DerivedMetricsMatchLoad) {
  HpmMonitor::Options opts;
  opts.groups = {"MEM_DP"};
  opts.hostname = "h1";
  auto monitor = HpmMonitor::create(registry_, sim_, opts);
  ASSERT_TRUE(monitor.ok()) << monitor.message();

  const NodeLoad load = busy_load(0.25, 0.5);
  util::TimeNs now = 0;
  monitor->sample(now);  // baseline
  for (int i = 0; i < 10; ++i) {
    sim_.advance(load, kNanosPerSecond);
    now += kNanosPerSecond;
  }
  const auto points = monitor->sample(now);
  ASSERT_EQ(points.size(), 1u);
  const auto& p = points[0];
  EXPECT_EQ(p.measurement, "likwid_mem_dp");
  EXPECT_EQ(p.tag("hostname"), "h1");
  EXPECT_EQ(p.timestamp, now);

  const auto& arch = simx86();
  // DP MFLOP/s: 0.25 * peak/core * 16 cores / 1e6.
  const double expect_mflops =
      0.25 * arch.peak_dp_flops_per_core * arch.total_cores() / 1e6;
  EXPECT_NEAR(p.field("dp_mflop_per_s")->as_double(), expect_mflops, expect_mflops * 0.01);
  // Memory bandwidth: 0.5 * peak/socket * 2 sockets / 1e6 MB/s.
  const double expect_bw = 0.5 * arch.peak_mem_bw_per_socket * arch.sockets / 1e6;
  EXPECT_NEAR(p.field("memory_bandwidth_mbytes_per_s")->as_double(), expect_bw,
              expect_bw * 0.01);
  EXPECT_NEAR(p.field("cpi")->as_double(), 0.5, 0.01);
  EXPECT_NEAR(p.field("ipc")->as_double(), 2.0, 0.02);
  EXPECT_NEAR(p.field("runtime_rdtsc_s")->as_double(), 10.0, 1e-9);
  EXPECT_NEAR(p.field("clock_mhz")->as_double(), arch.nominal_clock_ghz * 1e3, 1.0);
}

TEST_F(MonitorTest, MultiplexingRotatesGroups) {
  HpmMonitor::Options opts;
  opts.groups = {"FLOPS_DP", "MEM", "BRANCH"};
  opts.hostname = "h1";
  auto monitor = HpmMonitor::create(registry_, sim_, opts);
  ASSERT_TRUE(monitor.ok());
  EXPECT_EQ(monitor->active_group(), "FLOPS_DP");
  util::TimeNs now = 0;
  monitor->sample(now);
  std::vector<std::string> seen;
  for (int i = 0; i < 6; ++i) {
    sim_.advance(busy_load(0.1, 0.1), kNanosPerSecond);
    now += kNanosPerSecond;
    const auto points = monitor->sample(now);
    ASSERT_EQ(points.size(), 1u);
    seen.push_back(points[0].measurement);
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"likwid_flops_dp", "likwid_mem", "likwid_branch",
                                            "likwid_flops_dp", "likwid_mem",
                                            "likwid_branch"}));
}

TEST_F(MonitorTest, PerSocketFieldsExposeNumaImbalance) {
  HpmMonitor::Options opts;
  opts.groups = {"MEM_DP"};
  opts.hostname = "h1";
  opts.per_socket_fields = true;
  auto monitor = HpmMonitor::create(registry_, sim_, opts);
  ASSERT_TRUE(monitor.ok());

  // Socket 0 does all the flops and memory traffic; socket 1 idles.
  const auto& arch = simx86();
  NodeLoad load = idle_load(arch);
  for (int c = 0; c < arch.cores_per_socket; ++c) {
    auto& core = load.cores[static_cast<std::size_t>(c)];
    core.clock_ghz = arch.nominal_clock_ghz;
    core.active_fraction = 1.0;
    core.ipc = 2.0;
    core.flops_dp_per_sec = 0.4 * arch.peak_dp_flops_per_core;
    core.dp_simd_fraction = 0.8;
  }
  load.sockets[0].mem_read_bw_bytes_per_sec = 30e9;
  load.sockets[0].mem_write_bw_bytes_per_sec = 10e9;

  util::TimeNs now = 0;
  monitor->sample(now);
  sim_.advance(load, kNanosPerSecond);
  now += kNanosPerSecond;
  const auto points = monitor->sample(now);
  // One node point + one per socket.
  ASSERT_EQ(points.size(), 3u);
  EXPECT_FALSE(points[0].has_tag("socket"));
  EXPECT_EQ(points[1].tag("socket"), "0");
  EXPECT_EQ(points[2].tag("socket"), "1");

  const double s0_flops = points[1].field("dp_mflop_per_s")->as_double();
  const double s1_flops = points[2].field("dp_mflop_per_s")->as_double();
  const double node_flops = points[0].field("dp_mflop_per_s")->as_double();
  EXPECT_GT(s0_flops, 100 * std::max(s1_flops, 1.0));  // all work on socket 0
  EXPECT_NEAR(node_flops, s0_flops + s1_flops, node_flops * 0.01);
  const double s0_bw = points[1].field("memory_bandwidth_mbytes_per_s")->as_double();
  const double s1_bw = points[2].field("memory_bandwidth_mbytes_per_s")->as_double();
  EXPECT_NEAR(s0_bw, 40e3, 40e3 * 0.02);
  EXPECT_LT(s1_bw, 0.05 * s0_bw);
}

TEST_F(MonitorTest, UnknownGroupRejected) {
  HpmMonitor::Options opts;
  opts.groups = {"NOT_A_GROUP"};
  EXPECT_FALSE(HpmMonitor::create(registry_, sim_, opts).ok());
  opts.groups = {};
  EXPECT_FALSE(HpmMonitor::create(registry_, sim_, opts).ok());
}

TEST_F(MonitorTest, EnergyGroupReportsJoules) {
  HpmMonitor::Options opts;
  opts.groups = {"ENERGY"};
  opts.hostname = "h1";
  auto monitor = HpmMonitor::create(registry_, sim_, opts);
  ASSERT_TRUE(monitor.ok());
  util::TimeNs now = 0;
  monitor->sample(now);
  NodeLoad load = busy_load(0.1, 0.1);
  for (auto& s : load.sockets) s.package_power_watts = 100.0;
  for (int i = 0; i < 5; ++i) {
    sim_.advance(load, kNanosPerSecond);
    now += kNanosPerSecond;
  }
  const auto points = monitor->sample(now);
  ASSERT_EQ(points.size(), 1u);
  // 2 sockets * 100 W * 5 s = 1000 J.
  EXPECT_NEAR(points[0].field("energy_j")->as_double(), 1000.0, 1.0);
  EXPECT_NEAR(points[0].field("power_w")->as_double(), 200.0, 0.5);
}

TEST_F(MonitorTest, VectorizationRatioReflectsSimdMix) {
  HpmMonitor::Options opts;
  opts.groups = {"FLOPS_DP"};
  auto monitor = HpmMonitor::create(registry_, sim_, opts);
  ASSERT_TRUE(monitor.ok());
  util::TimeNs now = 0;
  monitor->sample(now);
  // 80% of flops from 256-bit packed: instruction mix is
  // packed = 0.8/4, scalar = 0.2 -> ratio = 0.2/(0.2+0.2) = 50%.
  sim_.advance(busy_load(0.2, 0.1), kNanosPerSecond);
  now += kNanosPerSecond;
  const auto points = monitor->sample(now);
  EXPECT_NEAR(points[0].field("vectorization_ratio")->as_double(), 50.0, 0.5);
}

}  // namespace
}  // namespace lms::hpm
