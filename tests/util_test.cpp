// Unit tests for the util module: clock, strings, rng, config, xml, queue.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "lms/util/clock.hpp"
#include "lms/util/config.hpp"
#include "lms/util/logging.hpp"
#include "lms/util/queue.hpp"
#include "lms/util/rng.hpp"
#include "lms/util/status.hpp"
#include "lms/util/strings.hpp"
#include "lms/util/ascii_chart.hpp"
#include "lms/util/xml.hpp"

namespace lms::util {
namespace {

// ---------------------------------------------------------------- clock

TEST(Clock, SecondsConversionRoundTrip) {
  EXPECT_EQ(seconds_to_ns(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(ns_to_seconds(2'500'000'000LL), 2.5);
  EXPECT_EQ(seconds_to_ns(0.0), 0);
  EXPECT_EQ(seconds_to_ns(-2.0), -2 * kNanosPerSecond);
}

TEST(Clock, SecondsConversionSaturates) {
  EXPECT_EQ(seconds_to_ns(1e30), std::numeric_limits<TimeNs>::max());
  EXPECT_EQ(seconds_to_ns(-1e30), std::numeric_limits<TimeNs>::min());
}

TEST(Clock, SimClockAdvances) {
  SimClock clock(100);
  EXPECT_EQ(clock.now(), 100);
  EXPECT_EQ(clock.advance(50), 150);
  EXPECT_EQ(clock.now(), 150);
  clock.advance_seconds(1.0);
  EXPECT_EQ(clock.now(), 150 + kNanosPerSecond);
}

TEST(Clock, SimClockSetForwardOnly) {
  SimClock clock(100);
  clock.set(200);
  EXPECT_EQ(clock.now(), 200);
  EXPECT_THROW(clock.set(50), std::invalid_argument);
}

TEST(Clock, SimClockThreadSafety) {
  SimClock clock(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < 1000; ++i) clock.advance(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(clock.now(), 4000);
}

TEST(Clock, WallClockIsReasonable) {
  const TimeNs t = WallClock::instance().now();
  // Past 2020-01-01, before 2100.
  EXPECT_GT(t, 1'577'836'800LL * kNanosPerSecond);
  EXPECT_LT(t, 4'102'444'800LL * kNanosPerSecond);
}

TEST(Clock, FormatUtc) {
  // 2017-07-14T02:40:00Z = 1500000000 s.
  EXPECT_EQ(format_utc(1'500'000'000LL * kNanosPerSecond), "2017-07-14T02:40:00.000Z");
  EXPECT_EQ(format_utc(1'500'000'000LL * kNanosPerSecond + 250 * kNanosPerMilli),
            "2017-07-14T02:40:00.250Z");
}

TEST(Clock, FormatDuration) {
  EXPECT_EQ(format_duration(500), "500ns");
  EXPECT_EQ(format_duration(1'500), "1.5us");
  EXPECT_EQ(format_duration(2'500'000), "2.5ms");
  EXPECT_EQ(format_duration(12'500'000'000LL), "12.5s");
  EXPECT_EQ(format_duration(90 * kNanosPerSecond), "1m30s");
  EXPECT_EQ(format_duration(3 * kNanosPerHour + 5 * kNanosPerMinute), "3h05m");
  EXPECT_EQ(format_duration(-(2 * kNanosPerSecond)), "-2.0s");
}

// ---------------------------------------------------------------- status

TEST(Status, OkAndError) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.message(), "");
  Status err = Status::error("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.message(), "boom");
}

TEST(Result, ValueAndError) {
  Result<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  auto e = Result<int>::error("bad");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.message(), "bad");
  Result<std::string> s(std::string("hi"));
  EXPECT_EQ(s.take(), "hi");
}

// ---------------------------------------------------------------- strings

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split_trimmed(" a , ,b ", ','), (std::vector<std::string>{"a", "b"}));
}

TEST(Strings, SplitOnce) {
  const auto [a, b] = split_once("key=value=more", '=');
  EXPECT_EQ(a, "key");
  EXPECT_EQ(b, "value=more");
  const auto [c, d] = split_once("nokey", '=');
  EXPECT_EQ(c, "nokey");
  EXPECT_EQ(d, "");
}

TEST(Strings, TrimAndJoin) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, PrefixSuffixCase) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("he", "hello"));
  EXPECT_TRUE(ends_with("hello", "llo"));
  EXPECT_TRUE(iequals("Content-Type", "content-type"));
  EXPECT_FALSE(iequals("a", "ab"));
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
}

TEST(Strings, ParseNumbers) {
  EXPECT_EQ(parse_double("3.25"), 3.25);
  EXPECT_EQ(parse_double("-1e3"), -1000.0);
  EXPECT_FALSE(parse_double("3.25x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_EQ(parse_int64("-42"), -42);
  EXPECT_FALSE(parse_int64("42.5").has_value());
}

TEST(Strings, FormatDoubleRoundTrips) {
  for (const double v : {0.0, 1.0, -2.5, 3.141592653589793, 1e-9, 6.02e23, 205982.89121842667}) {
    const auto parsed = parse_double(format_double(v));
    ASSERT_TRUE(parsed.has_value()) << format_double(v);
    EXPECT_EQ(*parsed, v);
  }
}

TEST(Strings, UrlCoding) {
  EXPECT_EQ(url_encode("a b/c"), "a%20b%2Fc");
  EXPECT_EQ(url_decode("a%20b%2Fc"), "a b/c");
  EXPECT_EQ(url_decode("a+b"), "a b");
  EXPECT_EQ(url_decode(url_encode("SELECT mean(x) FROM m WHERE t='v'")),
            "SELECT mean(x) FROM m WHERE t='v'");
  EXPECT_EQ(url_decode("%zz"), "%zz");  // malformed escape passes through
}

TEST(Strings, GlobMatch) {
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("h?", "h1"));
  EXPECT_TRUE(glob_match("likwid_*", "likwid_mem_dp"));
  EXPECT_FALSE(glob_match("likwid_*", "cpu"));
  EXPECT_TRUE(glob_match("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(glob_match("a*b*c", "aXXbYY"));
  EXPECT_TRUE(glob_match("", ""));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("x", "", "y"), "x");
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    const double w = rng.uniform(5.0, 6.0);
    EXPECT_GE(w, 5.0);
    EXPECT_LT(w, 6.0);
    const std::int64_t n = rng.uniform_int(-3, 3);
    EXPECT_GE(n, -3);
    EXPECT_LE(n, 3);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(99);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, ForkDecorrelates) {
  Rng rng(3);
  Rng a = rng.fork(1);
  Rng b = rng.fork(2);
  // Different labels must give different streams.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

// ---------------------------------------------------------------- config

TEST(Config, ParseAndLookup) {
  const auto cfg = Config::parse(R"(
# comment
[router]
db_url = http://localhost:8086
duplicate = true
batch = 500
timeout = 2.5
nodes = h1, h2, h3

[agent]
interval = 10
)");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->get("router", "db_url"), "http://localhost:8086");
  EXPECT_EQ(cfg->get_bool("router", "duplicate"), true);
  EXPECT_EQ(cfg->get_int("router", "batch"), 500);
  EXPECT_EQ(cfg->get_double("router", "timeout"), 2.5);
  EXPECT_EQ(cfg->get_list("router", "nodes"),
            (std::vector<std::string>{"h1", "h2", "h3"}));
  EXPECT_EQ(cfg->get_int_or("agent", "interval", 0), 10);
  EXPECT_EQ(cfg->get_or("agent", "missing", "fallback"), "fallback");
  EXPECT_FALSE(cfg->has("nope", "nothing"));
  EXPECT_EQ(cfg->sections(), (std::vector<std::string>{"router", "agent"}));
}

TEST(Config, RejectsMalformedSection) {
  EXPECT_FALSE(Config::parse("[unclosed\nkey = v").ok());
}

TEST(Config, StripsInlineComments) {
  const auto cfg = Config::parse(R"(
[router]
spool = 10000   ; store-and-forward cap
async = true    # hash-style too
path =          ; empty value, only a comment
url = http://h:1/a;b?x#y
)");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->get_int("router", "spool"), 10000);
  EXPECT_EQ(cfg->get_bool("router", "async"), true);
  EXPECT_EQ(cfg->get("router", "path"), "");
  // Separators embedded in a value (no preceding whitespace) are kept.
  EXPECT_EQ(cfg->get("router", "url"), "http://h:1/a;b?x#y");
}

TEST(Config, SetAndSerializeRoundTrip) {
  Config cfg;
  cfg.set("a", "x", "1");
  cfg.set("a", "y", "2");
  cfg.set("b", "z", "3");
  cfg.set("a", "x", "9");  // overwrite
  const auto reparsed = Config::parse(cfg.to_string());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->get_int("a", "x"), 9);
  EXPECT_EQ(reparsed->get_int("a", "y"), 2);
  EXPECT_EQ(reparsed->get_int("b", "z"), 3);
}

// ---------------------------------------------------------------- xml

TEST(Xml, ParsesGmondStyleDocument) {
  const auto doc = xml_parse(R"(<?xml version="1.0"?>
<!DOCTYPE GANGLIA_XML>
<GANGLIA_XML VERSION="3.7">
  <CLUSTER NAME="test">
    <HOST NAME="h1"><METRIC NAME="load_one" VAL="0.5" TYPE="double"/></HOST>
    <HOST NAME="h2"><METRIC NAME="load_one" VAL="1.5" TYPE="double"/></HOST>
  </CLUSTER>
</GANGLIA_XML>)");
  ASSERT_TRUE(doc.ok()) << doc.message();
  EXPECT_EQ(doc->name, "GANGLIA_XML");
  EXPECT_EQ(doc->attr("VERSION"), "3.7");
  const auto* cluster = doc->child("CLUSTER");
  ASSERT_NE(cluster, nullptr);
  const auto hosts = cluster->children_named("HOST");
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_EQ(hosts[1]->attr("NAME"), "h2");
  EXPECT_EQ(hosts[0]->child("METRIC")->attr("VAL"), "0.5");
}

TEST(Xml, TextAndEntities) {
  const auto doc = xml_parse("<a x='1 &amp; 2'>hello &lt;world&gt;<!-- c --></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->attr("x"), "1 & 2");
  EXPECT_EQ(doc->text, "hello <world>");
}

TEST(Xml, RejectsMismatchedTags) {
  EXPECT_FALSE(xml_parse("<a><b></a></b>").ok());
  EXPECT_FALSE(xml_parse("<a>").ok());
  EXPECT_FALSE(xml_parse("<a></a><b></b>").ok());
}

TEST(Xml, EscapeRoundTrip) {
  const std::string nasty = "<>&\"'";
  const auto doc = xml_parse("<a v=\"" + xml_escape(nasty) + "\">" + xml_escape(nasty) + "</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->attr("v"), nasty);
  EXPECT_EQ(doc->text, nasty);
}

// ---------------------------------------------------------------- chart

TEST(AsciiChart, RendersValuesWithinScale) {
  AsciiChartOptions opts;
  opts.width = 20;
  opts.height = 5;
  opts.title = "test chart";
  const std::string out = ascii_chart({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, opts);
  EXPECT_NE(out.find("test chart"), std::string::npos);
  EXPECT_NE(out.find("10.0"), std::string::npos);  // max on the axis
  EXPECT_NE(out.find("0.0"), std::string::npos);   // min on the axis
  EXPECT_NE(out.find('*'), std::string::npos);
  // Every line between title and legend is bounded by the axis width.
  for (const auto& line : split(out, '\n')) {
    EXPECT_LE(line.size(), 100u);
  }
}

TEST(AsciiChart, MultiSeriesUsesLabelGlyphs) {
  AsciiChartOptions opts;
  opts.width = 16;
  opts.height = 4;
  opts.threshold = 5.0;
  opts.show_threshold = true;
  const std::string out = ascii_chart_multi({"alpha", "beta"},
                                            {{10, 10, 10, 10}, {1, 1, 1, 1}}, opts);
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
  EXPECT_NE(out.find("threshold"), std::string::npos);
  EXPECT_NE(out.find("a=alpha"), std::string::npos);
}

TEST(AsciiChart, HandlesDegenerateInput) {
  AsciiChartOptions opts;
  EXPECT_NE(ascii_chart({}, opts).find("no data"), std::string::npos);
  // Constant series must not divide by zero.
  const std::string out = ascii_chart({5, 5, 5}, opts);
  EXPECT_NE(out.find('*'), std::string::npos);
  // More columns than samples: still renders.
  opts.width = 50;
  EXPECT_NE(ascii_chart({1, 2}, opts).find('*'), std::string::npos);
}

// ---------------------------------------------------------------- queue

TEST(Queue, PushPopOrder) {
  BoundedQueue<int> q(10);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(Queue, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.try_pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(Queue, CloseDrainsAndRejects) {
  BoundedQueue<int> q(10);
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));
  EXPECT_EQ(q.pop(), 1);       // drain
  EXPECT_FALSE(q.pop().has_value());  // then empty-closed
}

TEST(Queue, PopForTimesOut) {
  BoundedQueue<int> q(1);
  const auto t0 = monotonic_now_ns();
  EXPECT_FALSE(q.pop_for(20 * kNanosPerMilli).has_value());
  EXPECT_GE(monotonic_now_ns() - t0, 10 * kNanosPerMilli);
}

TEST(Queue, ProducerConsumerThreads) {
  BoundedQueue<int> q(16);
  std::atomic<long> sum{0};
  std::thread consumer([&] {
    while (auto v = q.pop()) sum += *v;
  });
  std::thread producer([&] {
    for (int i = 1; i <= 1000; ++i) q.push(i);
    q.close();
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(sum.load(), 1000L * 1001 / 2);
}

TEST(Queue, CloseReleasesBlockedPoppers) {
  BoundedQueue<int> q(4);
  std::atomic<int> released{0};
  std::vector<std::thread> poppers;
  for (int i = 0; i < 4; ++i) {
    poppers.emplace_back([&] {
      if (!q.pop().has_value()) ++released;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : poppers) t.join();
  EXPECT_EQ(released.load(), 4);
}

TEST(Queue, CloseReleasesBlockedPushers) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(0));  // fill to capacity so further pushes block
  std::atomic<int> rejected{0};
  std::vector<std::thread> pushers;
  for (int i = 0; i < 4; ++i) {
    pushers.emplace_back([&] {
      if (!q.push(1)) ++rejected;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : pushers) t.join();
  EXPECT_EQ(rejected.load(), 4);
}

TEST(Queue, PopForReturnsItemArrivingBeforeTimeout) {
  BoundedQueue<int> q(1);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.push(7);
  });
  const std::optional<int> v = q.pop_for(5 * kNanosPerSecond);
  producer.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(Queue, DrainAfterCloseUnderContention) {
  // close() racing concurrent producers and a consumer: every item accepted
  // before the close must still come out, and nothing may hang.
  BoundedQueue<int> q(64);
  std::atomic<long> pushed{0};
  std::atomic<long> popped{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        if (q.try_push(1)) ++pushed;
      }
    });
  }
  std::thread consumer([&] {
    while (q.pop().has_value()) ++popped;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.close();
  for (auto& t : producers) t.join();
  consumer.join();
  while (q.try_pop().has_value()) ++popped;  // whatever the consumer left
  EXPECT_EQ(popped.load(), pushed.load());
}

// ---------------------------------------------------------------- logging

TEST(Logging, LogRingKeepsMostRecentAndCountsDropped) {
  LogRing ring(3);
  auto sink = ring.sink();
  for (int i = 0; i < 5; ++i) {
    sink(LogLevel::kInfo, "comp", "m" + std::to_string(i), 0);
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 2u);
  const std::vector<std::string> lines = ring.lines();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines.front(), "[INFO] comp: m2");
  EXPECT_EQ(lines.back(), "[INFO] comp: m4");
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(Logging, LogRingCapturesThroughLogger) {
  LogRing ring(8);
  const LogLevel prev = Logger::instance().level();
  Logger::instance().set_sink(ring.sink());
  Logger::instance().set_level(LogLevel::kInfo);
  LMS_INFO("test") << "hello " << 42;
  Logger::instance().set_sink(nullptr);  // restore before the ring dies
  Logger::instance().set_level(prev);
  const auto entries = ring.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].level, LogLevel::kInfo);
  EXPECT_EQ(entries[0].component, "test");
  EXPECT_EQ(entries[0].message, "hello 42");
  EXPECT_EQ(entries[0].trace_id, 0u);  // no active span around the LMS_INFO
}

TEST(Logging, LogRingStoresTraceIdAndFiltersByIt) {
  LogRing ring(8);
  auto sink = ring.sink();
  sink(LogLevel::kInfo, "comp", "untraced", 0);
  sink(LogLevel::kWarn, "comp", "first of trace", 0xabcdef0123456789ULL);
  sink(LogLevel::kInfo, "other", "unrelated trace", 0x42ULL);
  sink(LogLevel::kError, "comp", "second of trace", 0xabcdef0123456789ULL);

  const auto all = ring.entries();
  ASSERT_EQ(all.size(), 4u);
  const auto traced = ring.entries_for_trace(0xabcdef0123456789ULL);
  ASSERT_EQ(traced.size(), 2u);
  EXPECT_EQ(traced[0].message, "first of trace");
  EXPECT_EQ(traced[1].message, "second of trace");
  EXPECT_TRUE(ring.entries_for_trace(0xdeadULL).empty());

  // Formatted lines carry the trace token only for traced entries.
  const std::vector<std::string> lines = ring.lines();
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "[INFO] comp: untraced");
  EXPECT_EQ(lines[1], "[WARN] trace=abcdef0123456789 comp: first of trace");
  EXPECT_EQ(lines[2], "[INFO] trace=0000000000000042 other: unrelated trace");
}

TEST(Logging, LoggerResolvesTraceProviderAtLogTime) {
  // The obs layer installs the real provider at static init; override it
  // here to prove the plumbing and restore the hook afterwards.
  static std::uint64_t fake_id = 0;
  Logger::set_trace_provider([] { return fake_id; });
  LogRing ring(4);
  const LogLevel prev = Logger::instance().level();
  Logger::instance().set_sink(ring.sink());
  Logger::instance().set_level(LogLevel::kInfo);
  fake_id = 0x1122334455667788ULL;
  LMS_INFO("test") << "inside";
  fake_id = 0;
  LMS_INFO("test") << "outside";
  Logger::instance().set_sink(nullptr);
  Logger::instance().set_level(prev);
  Logger::set_trace_provider(nullptr);
  const auto entries = ring.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].trace_id, 0x1122334455667788ULL);
  EXPECT_EQ(entries[1].trace_id, 0u);
}

}  // namespace
}  // namespace lms::util
