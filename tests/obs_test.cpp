// Tests for the lms::obs self-monitoring subsystem: metrics registry,
// request tracing across transports, and the self-scrape loop that writes
// the stack's own instruments back into its TSDB.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "lms/core/router.hpp"
#include "lms/lineproto/codec.hpp"
#include "lms/net/tcp_http.hpp"
#include "lms/net/transport.hpp"
#include "lms/core/runtime.hpp"
#include "lms/obs/metrics.hpp"
#include "lms/obs/runtime.hpp"
#include "lms/obs/selfscrape.hpp"
#include "lms/obs/trace.hpp"
#include "lms/obs/traceexport.hpp"
#include "lms/tsdb/http_api.hpp"
#include "lms/tsdb/storage.hpp"
#include "lms/util/clock.hpp"
#include "lms/util/queue.hpp"

namespace lms::obs {
namespace {

// ---------------------------------------------------------------- registry

TEST(Registry, CounterIncrementsAndInterns) {
  Registry reg;
  Counter& c = reg.counter("requests");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  // Same (name, labels) -> same instrument; label order must not matter.
  EXPECT_EQ(&reg.counter("requests"), &c);
  Counter& ab = reg.counter("requests", {{"a", "1"}, {"b", "2"}});
  Counter& ba = reg.counter("requests", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&ab, &ba);
  EXPECT_NE(&ab, &c);
  EXPECT_EQ(reg.instrument_count(), 2u);
}

TEST(Registry, GaugeSetAndAdd) {
  Registry reg;
  Gauge& g = reg.gauge("depth");
  g.set(10.5);
  EXPECT_DOUBLE_EQ(g.value(), 10.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
}

TEST(Registry, HistogramPercentilesWithinLogBucketError) {
  Registry reg;
  Histogram& h = reg.histogram("lat");
  // 100 samples 1..100: p50 ~ 50, p99 ~ 99. Log2 buckets bound the relative
  // error to 2x, so assert the half-to-double bracket.
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  const double p50 = h.percentile(0.5);
  const double p99 = h.percentile(0.99);
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_GE(p99, 50.0);
  EXPECT_LE(p99, 200.0);
  EXPECT_LE(p50, p99);
  const Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.p50, p50);
}

TEST(Registry, HistogramZeroAndLargeValues) {
  Registry reg;
  Histogram& h = reg.histogram("sizes");
  h.record(0);
  h.record(1ULL << 40);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_GE(h.percentile(1.0), static_cast<double>(1ULL << 39));
}

TEST(Registry, GaugeFnSampledAtCollect) {
  Registry reg;
  double depth = 3;
  reg.gauge_fn("queue_depth", {{"q", "spool"}}, [&depth] { return depth; });
  auto find = [&]() -> double {
    for (const Sample& s : reg.collect()) {
      if (s.name == "queue_depth") return s.value;
    }
    return -1;
  };
  EXPECT_DOUBLE_EQ(find(), 3.0);
  depth = 7;
  EXPECT_DOUBLE_EQ(find(), 7.0);
  reg.remove_gauge_fn("queue_depth", {{"q", "spool"}});
  EXPECT_DOUBLE_EQ(find(), -1.0);
}

TEST(Registry, CounterIsThreadSafe) {
  Registry reg;
  Counter& c = reg.counter("hits");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), 40000u);
}

TEST(Registry, RenderTextFormat) {
  Registry reg;
  reg.counter("reqs", {{"route", "/write"}}).inc(3);
  reg.gauge("temp").set(1.5);
  reg.histogram("lat").record(100);
  const std::string text = render_text(reg);
  EXPECT_NE(text.find("reqs{route=\"/write\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("temp 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_p99 "), std::string::npos);
  // Every family carries a HELP/TYPE header ahead of its series.
  EXPECT_NE(text.find("# TYPE reqs counter\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE temp gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_count counter\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_sum counter\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_p99 gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# HELP reqs "), std::string::npos);
  EXPECT_NE(text.find("# HELP lat_count "), std::string::npos);
  // The header precedes the series it introduces.
  EXPECT_LT(text.find("# TYPE lat_count counter\n"), text.find("lat_count 1\n"));
  // No exemplar family appears when no exemplar was captured.
  EXPECT_EQ(text.find("_exemplar"), std::string::npos);
}

TEST(Registry, RenderTextKeepsHistogramFamiliesContiguous) {
  Registry reg;
  reg.histogram("lat", {{"route", "/a"}}).record(100);
  reg.histogram("lat", {{"route", "/b"}}).record(200);
  const std::string text = render_text(reg);
  // Both label sets of the _count family sit together, before any _sum
  // series (Prometheus requires a family's series to be contiguous).
  const auto count_a = text.find("lat_count{route=\"/a\"}");
  const auto count_b = text.find("lat_count{route=\"/b\"}");
  const auto sum_a = text.find("lat_sum{route=\"/a\"}");
  ASSERT_NE(count_a, std::string::npos);
  ASSERT_NE(count_b, std::string::npos);
  ASSERT_NE(sum_a, std::string::npos);
  EXPECT_LT(count_a, sum_a);
  EXPECT_LT(count_b, sum_a);
  // One header per family, not one per label set.
  const auto first_type = text.find("# TYPE lat_count counter\n");
  ASSERT_NE(first_type, std::string::npos);
  EXPECT_EQ(text.find("# TYPE lat_count counter\n", first_type + 1), std::string::npos);
}

TEST(Registry, ToPointsCarriesTagsAndFields) {
  Registry reg;
  reg.counter("reqs", {{"route", "/write"}}).inc(2);
  reg.histogram("lat").record(64);
  const auto points = to_points(reg, "lms_internal", {{"hostname", "h1"}}, 12345);
  ASSERT_EQ(points.size(), 2u);
  for (const auto& p : points) {
    EXPECT_EQ(p.measurement, "lms_internal");
    EXPECT_EQ(p.tag("hostname"), "h1");
    EXPECT_EQ(p.timestamp, 12345);
  }
  const auto& counter_pt = points[0].tag("metric") == "reqs" ? points[0] : points[1];
  const auto& hist_pt = points[0].tag("metric") == "lat" ? points[0] : points[1];
  EXPECT_EQ(counter_pt.tag("route"), "/write");
  ASSERT_NE(counter_pt.field("value"), nullptr);
  EXPECT_DOUBLE_EQ(counter_pt.field("value")->as_double(), 2.0);
  ASSERT_NE(hist_pt.field("count"), nullptr);
  EXPECT_DOUBLE_EQ(hist_pt.field("count")->as_double(), 1.0);
  ASSERT_NE(hist_pt.field("p50"), nullptr);
  EXPECT_GT(hist_pt.field("p50")->as_double(), 0.0);
}

// ---------------------------------------------------------------- tracing

TEST(Trace, HeaderRoundTrip) {
  const TraceContext ctx{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  const std::string header = format_trace_header(ctx);
  EXPECT_EQ(header, "0123456789abcdef-fedcba9876543210");
  const auto parsed = parse_trace_header(header);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_id, ctx.trace_id);
  EXPECT_EQ(parsed->span_id, ctx.span_id);
  EXPECT_FALSE(parse_trace_header("").has_value());
  EXPECT_FALSE(parse_trace_header("zzz").has_value());
  EXPECT_FALSE(parse_trace_header("0123456789abcdef_fedcba9876543210").has_value());
}

TEST(Trace, SpanNestingAndParenting) {
  SpanRecorder recorder(16);
  std::uint64_t trace_id = 0;
  std::uint64_t outer_id = 0;
  {
    Span outer("outer", "test", &recorder);
    ASSERT_TRUE(outer.active());
    trace_id = outer.context().trace_id;
    outer_id = outer.context().span_id;
    EXPECT_EQ(current_trace().trace_id, trace_id);
    {
      Span inner("inner", "test", &recorder);
      EXPECT_EQ(inner.context().trace_id, trace_id);  // same trace
      EXPECT_NE(inner.context().span_id, outer_id);
    }
    EXPECT_EQ(current_trace().span_id, outer_id);  // restored
  }
  EXPECT_FALSE(current_trace().valid());
  const auto spans = recorder.by_trace(trace_id);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "inner");  // inner finished first
  EXPECT_EQ(spans[0].parent_span_id, outer_id);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent_span_id, 0u);  // root
}

TEST(Trace, ScopedContextAdoption) {
  SpanRecorder recorder(16);
  const TraceContext remote{new_trace_id(), new_trace_id()};
  {
    ScopedTraceContext adopt(remote);
    Span server("server", "test", &recorder);
    EXPECT_EQ(server.context().trace_id, remote.trace_id);
  }
  EXPECT_FALSE(current_trace().valid());
  const auto spans = recorder.by_trace(remote.trace_id);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].parent_span_id, remote.span_id);
}

TEST(Trace, RecorderBoundsAndEviction) {
  SpanRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    Span s("s" + std::to_string(i), "test", &recorder);
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.evicted(), 6u);
  const auto recent = recorder.recent(2);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[1].name, "s9");
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(Trace, DisabledTracingIsNoOp) {
  SpanRecorder recorder(16);
  set_tracing_enabled(false);
  {
    Span s("ghost", "test", &recorder);
    EXPECT_FALSE(s.active());
    EXPECT_FALSE(current_trace().valid());
  }
  set_tracing_enabled(true);
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(Trace, UnsampledHeaderRoundTrip) {
  // The head-sampling decision travels with the header: "-u" marks an
  // unsampled trace; the sampled form stays the pre-sampling 33 characters.
  TraceContext ctx{0x0123456789abcdefULL, 0xfedcba9876543210ULL, false};
  const std::string header = format_trace_header(ctx);
  EXPECT_EQ(header, "0123456789abcdef-fedcba9876543210-u");
  const auto parsed = parse_trace_header(header);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_id, ctx.trace_id);
  EXPECT_EQ(parsed->span_id, ctx.span_id);
  EXPECT_FALSE(parsed->sampled);

  ctx.sampled = true;
  const std::string sampled_header = format_trace_header(ctx);
  EXPECT_EQ(sampled_header.size(), 33u);
  const auto sampled_parsed = parse_trace_header(sampled_header);
  ASSERT_TRUE(sampled_parsed.has_value());
  EXPECT_TRUE(sampled_parsed->sampled);
  EXPECT_FALSE(parse_trace_header("0123456789abcdef-fedcba9876543210-x").has_value());
}

TEST(Trace, HeadSamplingIsDeterministicPerTraceId) {
  const double prev = trace_sample_rate();
  set_trace_sample_rate(1.0);
  EXPECT_TRUE(trace_head_sampled(1));
  EXPECT_TRUE(trace_head_sampled(0xdeadbeefULL));
  set_trace_sample_rate(0.0);
  EXPECT_FALSE(trace_head_sampled(1));
  EXPECT_FALSE(trace_head_sampled(0xdeadbeefULL));

  // The decision is a hash of the id, not a coin flip: stable across calls,
  // and at 50% roughly half of a batch of ids is kept.
  set_trace_sample_rate(0.5);
  int kept = 0;
  for (std::uint64_t id = 1; id <= 1000; ++id) {
    const bool first = trace_head_sampled(id);
    EXPECT_EQ(first, trace_head_sampled(id));
    if (first) ++kept;
  }
  EXPECT_GT(kept, 350);
  EXPECT_LT(kept, 650);
  set_trace_sample_rate(prev);
}

TEST(Trace, UnsampledSpansPropagateContextButSkipRecorder) {
  const double prev = trace_sample_rate();
  set_trace_sample_rate(0.0);
  SpanRecorder recorder(16);
  {
    Span outer("outer", "test", &recorder);
    EXPECT_TRUE(outer.active());  // timing still runs; only recording stops
    EXPECT_FALSE(outer.sampled());
    EXPECT_TRUE(current_trace().valid());
    EXPECT_FALSE(current_trace().sampled);
    Span inner("inner", "test", &recorder);
    EXPECT_EQ(inner.context().trace_id, outer.context().trace_id);
    EXPECT_FALSE(inner.sampled());
  }
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.recorded(), 0u);
  set_trace_sample_rate(prev);
}

TEST(Trace, TailKeepRecordsErroredAndSlowSpansOfUnsampledTraces) {
  const double prev_rate = trace_sample_rate();
  const bool prev_errors = trace_keep_errors();
  const std::int64_t prev_slow = trace_slow_keep_ns();
  set_trace_sample_rate(0.0);

  SpanRecorder recorder(16);
  {
    Span fine("fine", "test", &recorder);
  }
  EXPECT_EQ(recorder.size(), 0u);  // unsampled + healthy + fast: dropped

  set_trace_keep_errors(true);
  {
    Span failed("failed", "test", &recorder);
    failed.set_ok(false);
    failed.set_note("boom");
  }
  auto spans = recorder.recent(4);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "failed");
  EXPECT_FALSE(spans[0].ok);
  EXPECT_NE(spans[0].trace_id, 0u);  // reconstructed despite head-drop

  set_trace_keep_errors(false);
  {
    Span failed_again("failed_again", "test", &recorder);
    failed_again.set_ok(false);
  }
  EXPECT_EQ(recorder.recent(4).size(), 1u);  // keep-errors off: dropped

  set_trace_slow_keep_ns(1);  // any measurable duration counts as slow
  {
    Span slow("slow", "test", &recorder);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  spans = recorder.recent(4);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].name, "slow");
  EXPECT_GE(spans[1].duration_ns, 1);

  set_trace_sample_rate(prev_rate);
  set_trace_keep_errors(prev_errors);
  set_trace_slow_keep_ns(prev_slow);
}

TEST(Trace, SuppressGuardStopsSpansAndNests) {
  SpanRecorder recorder(16);
  EXPECT_FALSE(tracing_suppressed());
  {
    TraceSuppressGuard outer;
    EXPECT_TRUE(tracing_suppressed());
    {
      TraceSuppressGuard inner;
      Span s("invisible", "test", &recorder);
      EXPECT_FALSE(s.active());
    }
    EXPECT_TRUE(tracing_suppressed());  // survives inner guard exit
  }
  EXPECT_FALSE(tracing_suppressed());
  EXPECT_EQ(recorder.recorded(), 0u);
  {
    Span s("visible", "test", &recorder);
    EXPECT_TRUE(s.active());
  }
  EXPECT_EQ(recorder.recorded(), 1u);
}

TEST(Trace, DrainEmptiesRingWithoutCountingEviction) {
  SpanRecorder recorder(8);
  for (int i = 0; i < 5; ++i) {
    Span s("s" + std::to_string(i), "test", &recorder);
  }
  auto first = recorder.drain(2);  // bounded take: oldest first
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].name, "s0");
  EXPECT_EQ(first[1].name, "s1");
  auto rest = recorder.drain();
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[2].name, "s4");
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.drained(), 5u);
  EXPECT_EQ(recorder.evicted(), 0u);  // drained spans were consumed, not lost
  EXPECT_TRUE(recorder.drain().empty());
}

TEST(Trace, SpanToPointCarriesWholeSpan) {
  SpanRecord span;
  span.trace_id = 0x0123456789abcdefULL;
  span.span_id = 2;
  span.parent_span_id = 1;
  span.name = "tsdb.write";
  span.component = "tsdb";
  span.start_wall_ns = 1'500'000'000'000'000'000LL;
  span.duration_ns = 4200;
  span.ok = false;
  span.note = "error=backpressure";

  const lineproto::Point pt = span_to_point(span, kTraceMeasurement, "h7");
  EXPECT_EQ(pt.measurement, "lms_traces");
  EXPECT_EQ(pt.tag("trace_id"), "0123456789abcdef");
  EXPECT_EQ(pt.tag("component"), "tsdb");
  EXPECT_EQ(pt.tag("host"), "h7");
  EXPECT_EQ(pt.timestamp, span.start_wall_ns);
  ASSERT_NE(pt.field("duration_ns"), nullptr);
  EXPECT_EQ(pt.field("duration_ns")->as_int(), 4200);
  ASSERT_NE(pt.field("name"), nullptr);
  EXPECT_EQ(pt.field("name")->as_string(), "tsdb.write");
  // The span field is a self-contained JSON record — every attribute
  // survives the trip without row-aligning separate columns.
  ASSERT_NE(pt.field("span"), nullptr);
  const std::string json = pt.field("span")->as_string();
  EXPECT_NE(json.find("\"span_id\":\"0000000000000002\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\":\"0000000000000001\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("error=backpressure"), std::string::npos);
  EXPECT_NE(json.find("tsdb.write"), std::string::npos);
}

// ------------------------------------------------------- stack integration

/// Router + TSDB over the in-process transport sharing one registry — the
/// harness topology in miniature.
struct MiniStack {
  util::SimClock clock{1'500'000'000LL * util::kNanosPerSecond};
  Registry registry;
  net::InprocNetwork network;
  net::InprocHttpClient client{network};
  tsdb::Storage storage;
  std::unique_ptr<tsdb::HttpApi> db_api;
  std::unique_ptr<core::MetricsRouter> router;

  MiniStack() {
    network.set_registry(&registry);
    tsdb::HttpApi::Options db_opts;
    db_opts.registry = &registry;
    db_api = std::make_unique<tsdb::HttpApi>(storage, clock, db_opts);
    network.bind("tsdb", db_api->handler());
    core::MetricsRouter::Options router_opts;
    router_opts.db_url = "inproc://tsdb";
    router_opts.registry = &registry;
    router = std::make_unique<core::MetricsRouter>(client, clock, router_opts, nullptr);
    network.bind("router", router->handler());
  }
};

TEST(ObsIntegration, TracedWriteSharesOneTraceAcrossHops) {
  MiniStack stack;
  SpanRecorder::global().clear();

  auto resp = stack.client.post("inproc://router/write?db=lms",
                                "cpu,hostname=h1 user_percent=42\n", "text/plain");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 204);

  // Find the innermost span (the TSDB write) and walk its whole trace.
  std::uint64_t trace_id = 0;
  for (const auto& s : SpanRecorder::global().recent(64)) {
    if (s.name == "tsdb.write") trace_id = s.trace_id;
  }
  ASSERT_NE(trace_id, 0u);
  const auto spans = SpanRecorder::global().by_trace(trace_id);
  // One trace covers: client send -> router server -> router.write ->
  // router.forward -> client send -> tsdb server -> tsdb.write.
  std::vector<std::string> names;
  for (const auto& s : spans) {
    EXPECT_EQ(s.trace_id, trace_id);
    names.push_back(s.name);
  }
  auto has = [&](const std::string& n) {
    for (const auto& name : names) {
      if (name.find(n) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("tsdb.write"));
  EXPECT_TRUE(has("router.write"));
  EXPECT_TRUE(has("router.forward"));
  EXPECT_TRUE(has("http.server"));
  EXPECT_TRUE(has("http.client"));
  EXPECT_GE(spans.size(), 5u);
  // Exactly one root: the originating client span.
  int roots = 0;
  for (const auto& s : spans) {
    if (s.parent_span_id == 0) ++roots;
  }
  EXPECT_EQ(roots, 1);
}

TEST(ObsIntegration, MetricsEndpointShowsIngestAndLatency) {
  MiniStack stack;
  for (int i = 0; i < 3; ++i) {
    auto resp = stack.client.post("inproc://router/write?db=lms",
                                  "cpu,hostname=h1 user_percent=42\n", "text/plain");
    ASSERT_TRUE(resp.ok() && resp->status == 204);
  }

  auto metrics = stack.client.get("inproc://router/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  // Scrapers negotiate on the exposition content type.
  EXPECT_EQ(metrics->headers.get_or("Content-Type", ""), kTextExpositionContentType);
  const std::string& body = metrics->body;
  EXPECT_NE(body.find("router_points_in 3\n"), std::string::npos);
  EXPECT_NE(body.find("router_points_out 3\n"), std::string::npos);
  EXPECT_NE(body.find("tsdb_points_written 3\n"), std::string::npos);
  EXPECT_NE(body.find("router_write_ns_count 3\n"), std::string::npos);
  // Latency percentiles are present and non-zero.
  const auto p99_pos = body.find("router_write_ns_p99 ");
  ASSERT_NE(p99_pos, std::string::npos);
  EXPECT_GT(std::stod(body.substr(p99_pos + std::string("router_write_ns_p99 ").size())), 0.0);
  // The shared registry also carries the transport's view of the same traffic.
  EXPECT_NE(body.find("http_server_requests"), std::string::npos);

  // The TSDB endpoint serves the same registry.
  auto db_metrics = stack.client.get("inproc://tsdb/metrics");
  ASSERT_TRUE(db_metrics.ok());
  EXPECT_EQ(db_metrics->headers.get_or("Content-Type", ""), kTextExpositionContentType);
  EXPECT_NE(db_metrics->body.find("tsdb_points_written 3\n"), std::string::npos);

  // JSON endpoints say so.
  auto stats = stack.client.get("inproc://router/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->headers.get_or("Content-Type", ""), "application/json");
  auto health = stack.client.get("inproc://router/health");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->headers.get_or("Content-Type", ""), "application/json");
}

TEST(ObsIntegration, SpanEvictionVisibleInMetrics) {
  // A small recorder forced to evict, exported through the registry: the
  // trace_spans_* instruments land in /metrics like any other.
  Registry registry;
  SpanRecorder recorder(4);
  register_trace_metrics(registry, recorder);
  for (int i = 0; i < 10; ++i) {
    Span s("s" + std::to_string(i), "test", &recorder);
  }
  const std::string text = render_text(registry);
  EXPECT_NE(text.find("trace_spans_recorded 10\n"), std::string::npos);
  EXPECT_NE(text.find("trace_spans_evicted 6\n"), std::string::npos);
  EXPECT_NE(text.find("trace_spans_retained 4\n"), std::string::npos);
  remove_trace_metrics(registry);
  EXPECT_EQ(render_text(registry).find("trace_spans_evicted"), std::string::npos);
}

TEST(ObsIntegration, SelfScrapeLandsInOwnTsdbQueryable) {
  MiniStack stack;
  // Produce some traffic so the registry has non-trivial values.
  for (int i = 0; i < 5; ++i) {
    auto resp = stack.client.post("inproc://router/write?db=lms",
                                  "cpu,hostname=h1 user_percent=42\n", "text/plain");
    ASSERT_TRUE(resp.ok() && resp->status == 204);
  }

  SelfScrape::Options ss_opts;
  ss_opts.tags = {{"hostname", "stack"}};
  SelfScrape scrape(
      stack.registry, stack.clock,
      [&](const std::string& body) -> util::Status {
        auto resp = stack.client.post("inproc://router/write?db=lms", body, "text/plain");
        if (!resp.ok()) return util::Status::error(resp.message());
        if (!resp->ok()) return util::Status::error("HTTP " + std::to_string(resp->status));
        return util::Status();
      },
      ss_opts);
  ASSERT_TRUE(scrape.scrape_once().ok());
  EXPECT_EQ(scrape.scrapes(), 1u);
  EXPECT_EQ(scrape.failures(), 0u);

  // The registry snapshot is now a regular measurement in the stack's own
  // TSDB, queryable through the Influx-compatible API.
  auto resp = stack.client.get(
      "inproc://tsdb/query?db=lms&q=SELECT%20last(value)%20FROM%20lms_internal%20WHERE%20"
      "metric%3D%27router_points_in%27");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("lms_internal"), std::string::npos);
  // 5 data writes happened before the scrape snapshot.
  EXPECT_NE(resp->body.find("5"), std::string::npos);

  // Histogram instruments arrive with percentile fields.
  auto hist = stack.client.get(
      "inproc://tsdb/query?db=lms&q=SELECT%20last(p99)%20FROM%20lms_internal%20WHERE%20"
      "metric%3D%27router_write_ns%27");
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->status, 200);
  EXPECT_NE(hist->body.find("lms_internal"), std::string::npos);
}

TEST(ObsIntegration, SelfScrapeAttachedToSchedulerWritesPeriodically) {
  Registry reg;
  reg.counter("ticks").inc();
  util::WallClock clock;
  std::atomic<int> writes{0};
  SelfScrape::Options ss_opts;
  ss_opts.interval = 5 * util::kNanosPerMilli;
  SelfScrape scrape(
      reg, clock,
      [&](const std::string& body) -> util::Status {
        EXPECT_NE(body.find("ticks"), std::string::npos);
        ++writes;
        return util::Status();
      },
      ss_opts);
  core::TaskScheduler::Options sched_opts;
  sched_opts.workers = 1;
  sched_opts.name = "test.obs.sched";
  core::TaskScheduler sched(sched_opts);
  scrape.attach(sched);
  EXPECT_TRUE(scrape.attached());
  const util::TimeNs deadline = util::monotonic_now_ns() + 2 * util::kNanosPerSecond;
  while (writes.load() < 2 && util::monotonic_now_ns() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  scrape.detach();
  EXPECT_FALSE(scrape.attached());
  EXPECT_GE(writes.load(), 2);
}

TEST(ObsIntegration, TcpTracePropagationAndClientMetrics) {
  Registry server_reg;
  net::TcpHttpServer::Options srv_opts;
  srv_opts.registry = &server_reg;
  net::TcpHttpServer server(
      [](const net::HttpRequest&) { return net::HttpResponse::text(200, "ok"); }, srv_opts);
  ASSERT_TRUE(server.start().ok());

  Registry client_reg;
  net::TcpHttpClient::Options cl_opts;
  cl_opts.registry = &client_reg;
  net::TcpHttpClient client(cl_opts);

  SpanRecorder::global().clear();
  auto resp = client.get(server.url() + "/hello");
  server.stop();
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);

  // Client and server spans (different threads) joined one trace over the
  // X-LMS-Trace header.
  std::uint64_t trace_id = 0;
  for (const auto& s : SpanRecorder::global().recent(16)) {
    if (s.name.find("http.client") != std::string::npos) trace_id = s.trace_id;
  }
  ASSERT_NE(trace_id, 0u);
  const auto spans = SpanRecorder::global().by_trace(trace_id);
  bool server_span = false;
  for (const auto& s : spans) {
    if (s.name.find("http.server") != std::string::npos) server_span = true;
  }
  EXPECT_TRUE(server_span);

  // Both sides counted the request in their registries.
  bool client_counted = false;
  for (const Sample& s : client_reg.collect()) {
    if (s.name == "http_client_requests" && s.value == 1) client_counted = true;
  }
  EXPECT_TRUE(client_counted);
  bool server_counted = false;
  for (const Sample& s : server_reg.collect()) {
    if (s.name == "http_server_requests" && s.value == 1) server_counted = true;
  }
  EXPECT_TRUE(server_counted);
}

TEST(ObsIntegration, TraceExporterLandsSpansInTsdbAndTraceEndpointAssembles) {
  MiniStack stack;
  SpanRecorder recorder(64);
  std::uint64_t trace_id = 0;
  {
    Span root("selftest.root", "test", &recorder);
    trace_id = root.context().trace_id;
    Span child("selftest.child", "test", &recorder);
    child.set_note("points=3");
  }
  ASSERT_EQ(recorder.size(), 2u);

  TraceExporter::Options opts;
  opts.host = "h1";
  opts.recorder = &recorder;
  TraceExporter exporter(
      [&](const std::string& body) -> util::Status {
        auto resp = stack.client.post("inproc://router/write?db=lms", body, "text/plain");
        if (!resp.ok()) return util::Status::error(resp.message());
        if (!resp->ok()) return util::Status::error("HTTP " + std::to_string(resp->status));
        return util::Status();
      },
      opts);
  ASSERT_TRUE(exporter.export_once().ok());
  EXPECT_EQ(exporter.exports(), 1u);
  EXPECT_EQ(exporter.spans_exported(), 2u);
  EXPECT_EQ(exporter.spans_dropped(), 0u);
  EXPECT_EQ(recorder.size(), 0u);  // drained, not evicted
  // The export write itself ran under a TraceSuppressGuard: no spans about
  // exporting spans showed up in the recorder afterwards.
  EXPECT_EQ(recorder.recorded(), 2u);

  // The spans are regular lms_traces points now; /trace/<id> on the TSDB
  // API stitches them back into one tree.
  auto resp = stack.client.get("inproc://tsdb/trace/" + trace_id_hex(trace_id));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("selftest.root"), std::string::npos);
  EXPECT_NE(resp->body.find("selftest.child"), std::string::npos);
  EXPECT_NE(resp->body.find("points=3"), std::string::npos);

  auto waterfall =
      stack.client.get("inproc://tsdb/trace/" + trace_id_hex(trace_id) + "?format=waterfall");
  ASSERT_TRUE(waterfall.ok());
  EXPECT_EQ(waterfall->status, 200);
  EXPECT_NE(waterfall->body.find("selftest.root"), std::string::npos);

  auto bad = stack.client.get("inproc://tsdb/trace/nothex");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);
  auto missing = stack.client.get("inproc://tsdb/trace/00000000000000ff");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 200);  // empty trace: a tree with zero spans
  EXPECT_NE(missing->body.find("\"span_count\":0"), std::string::npos);

  // Exporting with nothing pending is OK and writes nothing.
  ASSERT_TRUE(exporter.export_once().ok());
  EXPECT_EQ(exporter.spans_exported(), 2u);
}

TEST(ObsIntegration, TraceExporterCountsFailedWritesAndDropsSpans) {
  SpanRecorder recorder(16);
  {
    Span s("doomed", "test", &recorder);
  }
  TraceExporter::Options opts;
  opts.recorder = &recorder;
  TraceExporter exporter(
      [](const std::string&) { return util::Status::error("stack unreachable"); }, opts);
  EXPECT_FALSE(exporter.export_once().ok());
  EXPECT_EQ(exporter.failures(), 1u);
  EXPECT_EQ(exporter.spans_exported(), 0u);
  EXPECT_EQ(exporter.spans_dropped(), 1u);
  EXPECT_EQ(recorder.size(), 0u);  // not re-queued: the ring would re-evict
}

TEST(ObsIntegration, HistogramExemplarLinksSlowObservationToTrace) {
  const double prev = trace_sample_rate();
  set_trace_sample_rate(1.0);
  Registry reg;
  Histogram& h = reg.histogram("write_ns");
  h.enable_exemplar();

  SpanRecorder recorder(16);
  std::uint64_t slow_trace = 0;
  {
    Span s("slow write", "test", &recorder);
    slow_trace = s.context().trace_id;
    h.record(5000);
  }
  {
    Span s("fast write", "test", &recorder);
    h.record(10);  // smaller: must not displace the slow exemplar
  }
  const Histogram::Exemplar ex = h.exemplar();
  EXPECT_EQ(ex.trace_id, slow_trace);
  EXPECT_EQ(ex.value, 5000u);

  const std::string text = render_text(reg);
  EXPECT_NE(text.find("write_ns_exemplar{trace_id=\"" + trace_id_hex(slow_trace) + "\"} 5000"),
            std::string::npos);

  h.reset_exemplar();
  EXPECT_EQ(h.exemplar().trace_id, 0u);
  // Without an active sampled trace no exemplar is captured (it would dangle).
  h.record(9000);
  EXPECT_EQ(h.exemplar().trace_id, 0u);
  EXPECT_EQ(render_text(reg).find("_exemplar"), std::string::npos);
  set_trace_sample_rate(prev);
}

TEST(ObsIntegration, ScopedTraceMetricsUnregistersOnDestruction) {
  Registry reg;
  SpanRecorder recorder(8);
  {
    ScopedTraceMetrics scoped(reg, recorder);
    {
      Span s("one", "test", &recorder);
    }
    EXPECT_NE(render_text(reg).find("trace_spans_retained 1\n"), std::string::npos);
  }
  EXPECT_EQ(render_text(reg).find("trace_spans_retained"), std::string::npos);
}

// Concurrency stress for the tracing pipeline, sized for the sanitizer jobs
// in ci/sanitize.sh: parallel span producers (nested spans, errors, notes)
// race an exporter draining the shared ring while another thread flips the
// sampling rate. TSan watches the recorder/exporter locks, ASan the span
// string handling.
TEST(TracingStress, ConcurrentProducersExporterAndSamplingFlips) {
  const double prev = trace_sample_rate();
  SpanRecorder recorder(256);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> produced{0};

  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&recorder, &produced, t] {
      for (int i = 0; i < 2000; ++i) {
        Span outer("stress.outer", "test", &recorder);
        Span inner("stress.inner." + std::to_string(t), "test", &recorder);
        if (i % 7 == 0) inner.set_ok(false);
        if (i % 5 == 0) inner.set_note("iteration=" + std::to_string(i));
        produced.fetch_add(2);
      }
    });
  }

  std::atomic<std::uint64_t> exported_bytes{0};
  TraceExporter::Options opts;
  opts.recorder = &recorder;
  opts.max_spans_per_export = 128;
  TraceExporter exporter(
      [&exported_bytes](const std::string& body) {
        exported_bytes.fetch_add(body.size());
        return util::Status();
      },
      opts);
  std::thread drainer([&] {
    while (!stop.load()) {
      (void)exporter.export_once();
    }
    (void)exporter.export_once();  // final sweep
  });
  std::thread sampler([&] {
    while (!stop.load()) {
      set_trace_sample_rate(0.5);
      set_trace_sample_rate(1.0);
    }
    set_trace_sample_rate(1.0);
  });

  for (auto& th : producers) th.join();
  stop.store(true);
  drainer.join();
  sampler.join();

  // Conservation: every produced span was recorded or head-dropped, and every
  // recorded span was exported, evicted, or still sits in the ring.
  EXPECT_LE(recorder.recorded(), produced.load());
  EXPECT_EQ(recorder.recorded(),
            exporter.spans_exported() + recorder.evicted() + recorder.size());
  EXPECT_GT(exporter.spans_exported(), 0u);
  EXPECT_GT(exported_bytes.load(), 0u);
  set_trace_sample_rate(prev);
}

// ------------------------------------------------------- runtime export

TEST(RuntimeExport, BuildInfoGaugeCarriesConfiguration) {
  Registry reg;
  register_build_info(reg);
  const std::string text = render_text(reg);
  EXPECT_NE(text.find("lms_build_info{"), std::string::npos);
  EXPECT_NE(text.find("build_type="), std::string::npos);
  EXPECT_NE(text.find("lock_stats="), std::string::npos);
  EXPECT_NE(text.find("rank_checks="), std::string::npos);
  const BuildInfo info = build_info();
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_FALSE(info.build_type.empty());
  EXPECT_FALSE(build_info_summary().empty());
}

TEST(RuntimeExport, UpdateRuntimeMetricsExportsQueuesAndLoops) {
  util::BoundedQueue<int> q(8, "obs.test.queue");
  core::runtime::LoopStats loop("obs.test.loop");
  {
    const core::runtime::BusyScope busy(loop);
  }
  ASSERT_TRUE(q.push(1));

  Registry reg;
  update_runtime_metrics(reg);
  const std::string text = render_text(reg);
  EXPECT_NE(text.find("lms_runtime_queue_depth{queue=\"obs.test.queue\"}"), std::string::npos);
  EXPECT_NE(text.find("lms_runtime_queue_capacity{queue=\"obs.test.queue\"}"), std::string::npos);
  EXPECT_NE(text.find("lms_runtime_queue_pushes_total{queue=\"obs.test.queue\"}"),
            std::string::npos);
  EXPECT_NE(text.find("lms_runtime_loop_iterations_total{loop=\"obs.test.loop\"}"),
            std::string::npos);
  EXPECT_NE(text.find("lms_runtime_loop_duty_pct{loop=\"obs.test.loop\"}"), std::string::npos);
  EXPECT_NE(text.find("lms_lock_stats_enabled"), std::string::npos);
  // Per-site lock series only exist when the binary carries the
  // instrumented wrappers (-DLMS_LOCK_STATS=ON CI pass).
  if constexpr (core::sync::kLockStatsEnabled) {
    EXPECT_NE(text.find("lms_lock_acquisitions_total"), std::string::npos);
    EXPECT_NE(text.find("lms_lock_wait_ns_total"), std::string::npos);
  }
}

TEST(RuntimeExport, RefreshedGaugesTrackCounters) {
  util::BoundedQueue<int> q(4, "obs.test.refresh");
  Registry reg;
  update_runtime_metrics(reg);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  update_runtime_metrics(reg);  // plain gauges are re-set on every update
  const std::string text = render_text(reg);
  EXPECT_NE(text.find("lms_runtime_queue_depth{queue=\"obs.test.refresh\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("lms_runtime_queue_high_watermark{queue=\"obs.test.refresh\"} 2"),
            std::string::npos);
}

}  // namespace
}  // namespace lms::obs
