// Tests for the dashboard agent: variable substitution, per-host row
// repetition, template store, job dashboard generation with app-metric
// discovery, admin overview, and the Grafana-style HTTP API.

#include <gtest/gtest.h>

#include "lms/cluster/harness.hpp"
#include "lms/dashboard/agent.hpp"
#include "lms/dashboard/templates.hpp"

namespace lms::dashboard {
namespace {

using util::kNanosPerMinute;
using util::kNanosPerSecond;

// ---------------------------------------------------------------- substitute

TEST(Substitute, ReplacesKnownVariables) {
  const auto tpl = json::parse(R"({"title":"Job ${JOB_ID}","deep":{"q":["x ${HOST} y"]}})");
  ASSERT_TRUE(tpl.ok());
  const json::Value out = substitute(*tpl, {{"JOB_ID", "42"}, {"HOST", "h1"}});
  EXPECT_EQ(out["title"].as_string(), "Job 42");
  EXPECT_EQ(out["deep"]["q"][0].as_string(), "x h1 y");
}

TEST(Substitute, UnknownVariablesLeftIntact) {
  const auto tpl = json::parse(R"({"a":"${UNKNOWN} and ${KNOWN}"})");
  const json::Value out = substitute(*tpl, {{"KNOWN", "v"}});
  EXPECT_EQ(out["a"].as_string(), "${UNKNOWN} and v");
}

TEST(Substitute, NonStringsUntouched) {
  const auto tpl = json::parse(R"({"n":42,"b":true,"x":null})");
  const json::Value out = substitute(*tpl, {{"n", "nope"}});
  EXPECT_EQ(out["n"].as_int(), 42);
  EXPECT_TRUE(out["b"].as_bool());
  EXPECT_TRUE(out["x"].is_null());
}

TEST(ExpandDashboard, RepeatsRowsPerHost) {
  const auto tpl = json::parse(R"({
    "title": "Job ${JOB_ID}",
    "rows": [
      {"title": "static row"},
      {"title": "metrics ${HOST}", "repeat": "host"}
    ]
  })");
  ASSERT_TRUE(tpl.ok());
  const json::Value out = expand_dashboard(*tpl, {{"JOB_ID", "7"}}, {"h1", "h2", "h3"});
  const auto& rows = out["rows"].get_array();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0]["title"].as_string(), "static row");
  EXPECT_EQ(rows[1]["title"].as_string(), "metrics h1");
  EXPECT_EQ(rows[3]["title"].as_string(), "metrics h3");
  // The repeat marker is stripped from instances.
  EXPECT_TRUE(rows[1]["repeat"].is_null());
  EXPECT_EQ(out["title"].as_string(), "Job 7");
}

TEST(ExpandDashboard, NoHostsKeepsRowUnexpanded) {
  const auto tpl = json::parse(R"({"rows":[{"title":"r","repeat":"host"}]})");
  const json::Value out = expand_dashboard(*tpl, {}, {});
  EXPECT_EQ(out["rows"].get_array().size(), 1u);
}

// ---------------------------------------------------------------- templates

TEST(TemplateStoreTest, BuiltinsPresentAndValid) {
  TemplateStore store;
  for (const char* name : {"job_dashboard", "system_row", "likwid_row", "usermetric_row"}) {
    const json::Value* tpl = store.find(name);
    ASSERT_NE(tpl, nullptr) << name;
    EXPECT_TRUE(tpl->is_object());
  }
  EXPECT_EQ(store.find("nope"), nullptr);
  EXPECT_FALSE(store.add("bad", "{invalid json").ok());
  EXPECT_TRUE(store.add("custom", R"({"title":"c"})").ok());
  EXPECT_NE(store.find("custom"), nullptr);
}

TEST(PanelQuery, BuildsInfluxQl) {
  const std::string q = panel_query("user_percent", "cpu", {{"hostname", "h1"}});
  EXPECT_EQ(q,
            "SELECT mean(user_percent) FROM cpu WHERE hostname='h1' AND time >= ${FROM} AND "
            "time < ${TO} GROUP BY time(30s)");
  const std::string q2 = panel_query("v", "m", {}, "max", "60s");
  EXPECT_EQ(q2, "SELECT max(v) FROM m WHERE time >= ${FROM} AND time < ${TO} GROUP BY time(60s)");
}

// ---------------------------------------------------------------- agent

/// Full-stack fixture: runs a short miniMD job so real metrics exist.
class DashboardAgentTest : public ::testing::Test {
 protected:
  DashboardAgentTest() {
    cluster::ClusterHarness::Options opts;
    opts.nodes = 2;
    harness_ = std::make_unique<cluster::ClusterHarness>(opts);
    job_id_ = harness_->submit("minimd", "alice", 2, 10 * kNanosPerMinute);
    harness_->run_for(5 * kNanosPerMinute);
  }

  std::unique_ptr<cluster::ClusterHarness> harness_;
  int job_id_ = 0;
};

TEST_F(DashboardAgentTest, JobDashboardStructure) {
  const auto jobs = harness_->router().running_jobs();
  ASSERT_EQ(jobs.size(), 1u);
  const json::Value dash =
      harness_->dashboards().generate_job_dashboard(jobs[0], harness_->now());

  EXPECT_EQ(dash["uid"].as_string(), "job-" + std::to_string(job_id_));
  EXPECT_NE(dash["title"].as_string().find("alice"), std::string::npos);
  const auto& rows = dash["rows"].get_array();
  // Analysis header + 2 per-host system rows + likwid row + app metrics row.
  ASSERT_GE(rows.size(), 4u);
  EXPECT_EQ(rows[0]["title"].as_string(), "Analysis");
  // The analysis header carries the Fig. 2 evaluation table.
  const json::Value& header = rows[0]["panels"][0]["content"];
  EXPECT_EQ(header["jobid"].as_string(), std::to_string(job_id_));
  EXPECT_FALSE(header["rows"].get_array().empty());

  // Per-host rows got the host substituted into queries.
  EXPECT_NE(rows[1]["title"].as_string().find("h1"), std::string::npos);
  const std::string query = rows[1]["panels"][0]["targets"][0]["query"].as_string();
  EXPECT_NE(query.find("hostname='h1'"), std::string::npos);
  EXPECT_NE(query.find("jobid='" + std::to_string(job_id_) + "'"), std::string::npos);
  EXPECT_EQ(query.find("${"), std::string::npos);  // all variables resolved
}

TEST_F(DashboardAgentTest, DiscoversApplicationMetrics) {
  const auto jobs = harness_->router().running_jobs();
  const json::Value dash =
      harness_->dashboards().generate_job_dashboard(jobs[0], harness_->now());
  // miniMD reported energy/pressure/temperature/runtime_100iters via
  // libusermetric; the agent must have discovered them (paper §IV).
  bool found_app_row = false;
  for (const auto& row : dash["rows"].get_array()) {
    if (row["title"].as_string() != "Application metrics") continue;
    found_app_row = true;
    std::set<std::string> titles;
    for (const auto& panel : row["panels"].get_array()) {
      titles.insert(panel["title"].as_string());
    }
    EXPECT_TRUE(titles.count("pressure"));
    EXPECT_TRUE(titles.count("temperature"));
    EXPECT_TRUE(titles.count("energy"));
    EXPECT_TRUE(titles.count("runtime_100iters"));
  }
  EXPECT_TRUE(found_app_row);
}

TEST_F(DashboardAgentTest, AdminOverviewListsRunningJobs) {
  harness_->submit("stream", "bob", 1, 20 * kNanosPerMinute);
  // No second node free -> job 2 pending; only job 1 running. Run briefly so
  // the scheduler ticks.
  harness_->run_for(30 * kNanosPerSecond);
  const auto jobs = harness_->router().running_jobs();
  const json::Value admin =
      harness_->dashboards().generate_admin_dashboard(jobs, harness_->now());
  EXPECT_EQ(admin["uid"].as_string(), "admin");
  const auto& rows = admin["rows"].get_array();
  ASSERT_EQ(rows.size(), jobs.size());
  // Thumbnails reference the job dashboards.
  EXPECT_EQ(rows[0]["panels"][1]["dashboard_uid"].as_string(),
            "job-" + std::to_string(job_id_));
}

TEST(UserDashboard, FiltersByUserAndBindsUserDb) {
  cluster::ClusterHarness::Options hopts;
  hopts.nodes = 2;
  hopts.duplicate_per_user = true;
  cluster::ClusterHarness harness(hopts);
  harness.submit("dgemm", "alice", 1, 20 * kNanosPerMinute);
  harness.submit("stream", "bob", 1, 20 * kNanosPerMinute);
  harness.run_for(2 * kNanosPerMinute);
  const auto jobs = harness.router().running_jobs();
  ASSERT_EQ(jobs.size(), 2u);

  const json::Value dash =
      harness.dashboards().generate_user_dashboard("alice", jobs, harness.now());
  EXPECT_EQ(dash["uid"].as_string(), "user-alice");
  // Only alice's job appears, and the view binds her duplicated database.
  ASSERT_EQ(dash["rows"].get_array().size(), 1u);
  EXPECT_EQ(dash["datasource"].as_string(), "user_alice");
  EXPECT_NE(harness.dashboards().find_dashboard("user-alice"), nullptr);
  // Unknown user: empty view on the global datasource.
  const json::Value other =
      harness.dashboards().generate_user_dashboard("mallory", jobs, harness.now());
  EXPECT_TRUE(other["rows"].get_array().empty());
  EXPECT_EQ(other["datasource"].as_string(), "lms");
}

TEST_F(DashboardAgentTest, RefreshAndHttpApi) {
  const auto jobs = harness_->router().running_jobs();
  EXPECT_EQ(harness_->dashboards().refresh(jobs, harness_->now()), jobs.size() + 1);

  auto resp = harness_->client().get(std::string("inproc://") +
                                     cluster::ClusterHarness::kDashboardEndpoint +
                                     "/api/search");
  ASSERT_TRUE(resp.ok());
  const auto list = json::parse(resp->body);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->get_array().size(), jobs.size() + 1);

  resp = harness_->client().get(std::string("inproc://") +
                                cluster::ClusterHarness::kDashboardEndpoint +
                                "/api/dashboards/uid/job-" + std::to_string(job_id_));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_TRUE(json::parse(resp->body).ok());

  resp = harness_->client().get(std::string("inproc://") +
                                cluster::ClusterHarness::kDashboardEndpoint +
                                "/api/dashboards/uid/nope");
  EXPECT_EQ(resp->status, 404);
}

TEST_F(DashboardAgentTest, CustomTemplateOverridesBuiltin) {
  harness_->dashboards().templates().add("job_dashboard",
                                         R"({"title":"Site ${JOB_ID}","uid":"job-${JOB_ID}"})");
  const auto jobs = harness_->router().running_jobs();
  const json::Value dash =
      harness_->dashboards().generate_job_dashboard(jobs[0], harness_->now());
  EXPECT_EQ(dash["title"].as_string(), "Site " + std::to_string(job_id_));
}

TEST_F(DashboardAgentTest, RuntimeDashboardChartsLocksQueuesLoops) {
  const json::Value dash =
      harness_->dashboards().generate_runtime_dashboard(harness_->now());
  EXPECT_EQ(dash["uid"].as_string(), "runtime");
  const auto& rows = dash["rows"].get_array();
  ASSERT_EQ(rows.size(), 2u);
  const std::string lock_query =
      rows[0]["panels"][0]["targets"][0]["query"].as_string();
  EXPECT_NE(lock_query.find("lms_lock_wait_ns_total"), std::string::npos);
  EXPECT_NE(lock_query.find("GROUP BY time(60s), lock"), std::string::npos);
  const std::string loop_query =
      rows[1]["panels"][3]["targets"][0]["query"].as_string();
  EXPECT_NE(loop_query.find("lms_runtime_loop_duty_pct"), std::string::npos);
  EXPECT_NE(loop_query.find("GROUP BY time(60s), loop"), std::string::npos);
  // Stored and retrievable through the Grafana-style API.
  EXPECT_NE(harness_->dashboards().find_dashboard("runtime"), nullptr);
}

TEST_F(DashboardAgentTest, ServesMetricsAndRuntimeDebugEndpoints) {
  auto resp = harness_->client().get(std::string("inproc://") +
                                     cluster::ClusterHarness::kDashboardEndpoint + "/metrics");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("lms_lock_stats_enabled"), std::string::npos);

  resp = harness_->client().get(std::string("inproc://") +
                                cluster::ClusterHarness::kDashboardEndpoint + "/debug/runtime");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  const auto body = json::parse(resp->body);
  ASSERT_TRUE(body.ok()) << resp->body;
  EXPECT_TRUE((*body)["lock_stats"]["sites"].is_array());
  EXPECT_TRUE((*body)["loops"].is_array());
}

}  // namespace
}  // namespace lms::dashboard
