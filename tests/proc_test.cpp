// Tests for the real /proc parsers and the ProcKernel reader: fixtures
// copied from actual Linux kernels, edge cases, and a live sanity check
// against this machine's /proc.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "lms/collector/agent.hpp"
#include "lms/collector/plugins.hpp"
#include "lms/sysmon/proc.hpp"
#include "lms/core/router.hpp"
#include "lms/net/tcp_http.hpp"
#include "lms/tsdb/http_api.hpp"

namespace lms::sysmon {
namespace {

constexpr std::string_view kProcStat =
    "cpu  22152 340 13921 2564063 1583 0 621 0 0 0\n"
    "cpu0 10876 170 7020 1280131 800 0 320 0 0 0\n"
    "cpu1 11276 170 6901 1283932 783 0 301 0 0 0\n"
    "intr 8432702 33 9 0 0\n"
    "ctxt 17238755\n"
    "btime 1736399999\n";

constexpr std::string_view kMeminfo =
    "MemTotal:       16461744 kB\n"
    "MemFree:        14766920 kB\n"
    "MemAvailable:   15686108 kB\n"
    "Buffers:           86600 kB\n"
    "Cached:           942008 kB\n";

constexpr std::string_view kNetDev =
    "Inter-|   Receive                                                |  Transmit\n"
    " face |bytes    packets errs drop fifo frame compressed multicast|bytes    packets errs "
    "drop fifo colls carrier compressed\n"
    "    lo: 1839770    5000    0    0    0     0          0         0  1839770    5000    0 "
    "   0    0    0    0          0\n"
    "  eth0: 98765432   65536    0    0    0     0          0         0  12345678   32768    "
    "0    0    0    0    0          0\n"
    "  eth1:  1000000    1000    0    0    0     0          0         0   2000000    2000    "
    "0    0    0    0    0          0\n";

constexpr std::string_view kDiskstats =
    "   7       0 loop0 55 0 2194 24 0 0 0 0 0 40 24 0 0 0 0 0 0\n"
    " 259       0 nvme0n1 60000 1000 4000000 20000 30000 2000 2400000 50000 0 30000 70000 0 "
    "0 0 0 0 0\n"
    " 259       1 nvme0n1p1 500 0 30000 200 100 0 8000 300 0 400 500 0 0 0 0 0 0\n"
    "   8       0 sda 1000 10 80000 400 2000 20 160000 800 0 900 1200 0 0 0 0 0 0\n"
    "   8       1 sda1 900 10 70000 350 1900 20 150000 750 0 850 1100 0 0 0 0 0 0\n"
    " 252       0 dm-0 123 0 4567 89 456 0 7890 123 0 100 212 0 0 0 0 0 0\n";

constexpr std::string_view kLoadavg = "1.09 0.84 0.67 2/345 12345\n";

TEST(ProcStat, ParsesAggregateCpuLine) {
  auto t = parse_proc_stat(kProcStat);
  ASSERT_TRUE(t.ok()) << t.message();
  // user+nice = (22152+340)/100; system = (13921+0+621)/100.
  EXPECT_NEAR(t->user, 224.92, 1e-9);
  EXPECT_NEAR(t->system, 145.42, 1e-9);
  EXPECT_NEAR(t->idle, 25640.63, 1e-9);
  EXPECT_NEAR(t->iowait, 15.83, 1e-9);
  EXPECT_FALSE(parse_proc_stat("intr 1 2 3\n").ok());
  EXPECT_FALSE(parse_proc_stat("").ok());
}

TEST(ProcStat, CountsCpus) {
  EXPECT_EQ(count_cpus_in_proc_stat(kProcStat), 2);
  EXPECT_EQ(count_cpus_in_proc_stat("cpu  1 2 3\n"), 0);
}

TEST(Meminfo, ParsesAndPrefersMemAvailable) {
  auto m = parse_meminfo(kMeminfo);
  ASSERT_TRUE(m.ok()) << m.message();
  EXPECT_EQ(m->total_bytes, 16461744ULL * 1024);
  EXPECT_EQ(m->free_bytes, 15686108ULL * 1024);  // MemAvailable, not MemFree
  EXPECT_EQ(m->used_bytes, (16461744ULL - 15686108ULL) * 1024);
}

TEST(Meminfo, FallsBackToMemFree) {
  auto m = parse_meminfo("MemTotal: 1000 kB\nMemFree: 400 kB\n");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->free_bytes, 400ULL * 1024);
  EXPECT_FALSE(parse_meminfo("SwapTotal: 0 kB\n").ok());
}

TEST(NetDev, SumsInterfacesExceptLoopback) {
  auto n = parse_net_dev(kNetDev);
  ASSERT_TRUE(n.ok()) << n.message();
  EXPECT_EQ(n->rx_bytes, 98765432ULL + 1000000);
  EXPECT_EQ(n->rx_packets, 65536ULL + 1000);
  EXPECT_EQ(n->tx_bytes, 12345678ULL + 2000000);
  EXPECT_EQ(n->tx_packets, 32768ULL + 2000);
  EXPECT_FALSE(parse_net_dev("header only\n").ok());
}

TEST(Diskstats, SumsWholeDisksOnly) {
  auto d = parse_diskstats(kDiskstats);
  ASSERT_TRUE(d.ok()) << d.message();
  // nvme0n1 + sda; partitions, loop and dm-0 excluded.
  EXPECT_EQ(d->read_ops, 60000ULL + 1000);
  EXPECT_EQ(d->read_bytes, (4000000ULL + 80000) * 512);
  EXPECT_EQ(d->write_ops, 30000ULL + 2000);
  EXPECT_EQ(d->write_bytes, (2400000ULL + 160000) * 512);
  EXPECT_FALSE(parse_diskstats("7 0 loop0 1 2 3 4 5 6 7 8 9 10\n").ok());
}

TEST(Loadavg, ParsesFirstField) {
  auto l = parse_loadavg(kLoadavg);
  ASSERT_TRUE(l.ok());
  EXPECT_DOUBLE_EQ(*l, 1.09);
  EXPECT_FALSE(parse_loadavg("").ok());
  EXPECT_FALSE(parse_loadavg("abc def").ok());
}

TEST(ProcKernelTest, ReadsFixtureDirectory) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(::testing::TempDir()) / "fake_proc";
  fs::create_directories(root / "net");
  auto write = [&](const fs::path& rel, std::string_view content) {
    std::ofstream(root / rel) << content;
  };
  write("stat", kProcStat);
  write("meminfo", kMeminfo);
  write("net/dev", kNetDev);
  write("diskstats", kDiskstats);
  write("loadavg", kLoadavg);

  ProcKernel kernel(root.string());
  EXPECT_EQ(kernel.cpu_count(), 2);
  EXPECT_NEAR(kernel.cpu_times().user, 224.92, 1e-9);
  EXPECT_EQ(kernel.meminfo().total_bytes, 16461744ULL * 1024);
  EXPECT_EQ(kernel.net_counters().rx_packets, 66536u);
  EXPECT_EQ(kernel.disk_counters().write_ops, 32000u);
  EXPECT_DOUBLE_EQ(kernel.loadavg1(), 1.09);

  // The stock plugins run unchanged on the real reader (delta = 0 here, but
  // the wiring is the deployment path).
  collector::MemoryPlugin mem(kernel, "me");
  const auto points = mem.collect(123);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].field("total_bytes")->as_int(),
            static_cast<std::int64_t>(16461744ULL * 1024));
}

TEST(ProcKernelTest, MissingFilesYieldZeroesNotCrashes) {
  ProcKernel kernel("/nonexistent-proc-root");
  EXPECT_EQ(kernel.cpu_count(), 1);  // fallback
  EXPECT_EQ(kernel.cpu_times().total(), 0.0);
  EXPECT_EQ(kernel.meminfo().total_bytes, 0u);
  EXPECT_EQ(kernel.net_counters().rx_bytes, 0u);
  EXPECT_EQ(kernel.loadavg1(), 0.0);
}

TEST(ProcKernelTest, RealMachineThroughRealStack) {
  // Nothing simulated: this machine's /proc, shipped over real TCP sockets
  // through the router into the DB, queried back via InfluxQL.
  tsdb::Storage storage;
  util::WallClock& clock = util::WallClock::instance();
  tsdb::HttpApi db_api(storage, clock);
  net::TcpHttpServer db_server(db_api.handler());
  ASSERT_TRUE(db_server.start().ok());
  net::TcpHttpClient db_client;
  core::MetricsRouter::Options ropts;
  ropts.db_url = db_server.url();
  core::MetricsRouter router(db_client, clock, ropts);
  net::TcpHttpServer router_server(router.handler());
  ASSERT_TRUE(router_server.start().ok());

  ProcKernel kernel;
  net::TcpHttpClient agent_client;
  collector::HostAgent::Options aopts;
  aopts.router_url = router_server.url();
  aopts.flush_interval = 0;  // flush on every tick
  collector::HostAgent agent(agent_client, aopts);
  agent.add_plugin(std::make_unique<collector::MemoryPlugin>(kernel, "thishost"), 0);
  agent.tick(clock.now());
  agent.flush(clock.now());
  ASSERT_EQ(agent.stats().send_failures, 0u);

  tsdb::Engine engine(storage);
  auto result = engine.query(
      "lms", "SELECT last(total_bytes) FROM memory WHERE hostname='thishost'", clock.now());
  ASSERT_TRUE(result.ok()) << result.message();
  ASSERT_EQ(result->series.size(), 1u);
  EXPECT_GT(result->series[0].values[0][1].as_double(), 100.0 * (1 << 20));
  router_server.stop();
  db_server.stop();
}

TEST(ProcKernelTest, LiveProcSanity) {
  // We run on Linux: the real /proc must parse and look sane.
  ProcKernel kernel;
  EXPECT_GE(kernel.cpu_count(), 1);
  EXPECT_GT(kernel.cpu_times().total(), 0.0);
  const auto mem = kernel.meminfo();
  EXPECT_GT(mem.total_bytes, 100ULL << 20);  // >100 MB of RAM
  EXPECT_LE(mem.used_bytes, mem.total_bytes);
  EXPECT_GE(kernel.loadavg1(), 0.0);
}

}  // namespace
}  // namespace lms::sysmon
