// Tests for the batch scheduler simulator and its router integration: FCFS
// allocation, EASY backfill, walltime enforcement, cancellation, and the
// prolog/epilog job notifier signals.

#include <gtest/gtest.h>

#include "lms/core/router.hpp"
#include "lms/sched/scheduler.hpp"
#include "lms/tsdb/http_api.hpp"

namespace lms::sched {
namespace {

using util::kNanosPerMinute;
using util::kNanosPerSecond;

constexpr util::TimeNs kMin = kNanosPerMinute;

JobSpec spec(const std::string& user, int nodes, util::TimeNs walltime) {
  JobSpec s;
  s.name = "job-" + user;
  s.user = user;
  s.nodes = nodes;
  s.walltime_limit = walltime;
  return s;
}

std::vector<std::string> four_nodes() { return {"h1", "h2", "h3", "h4"}; }

TEST(SchedulerTest, FcfsStartsWhenNodesFree) {
  Scheduler sched(four_nodes());
  const int a = sched.submit(spec("alice", 2, 60 * kMin), 10 * kMin, 0);
  const int b = sched.submit(spec("bob", 2, 60 * kMin), 10 * kMin, 0);
  const int c = sched.submit(spec("carol", 2, 60 * kMin), 10 * kMin, 0);
  sched.tick(0);
  EXPECT_EQ(sched.find(a)->state, JobState::kRunning);
  EXPECT_EQ(sched.find(b)->state, JobState::kRunning);
  EXPECT_EQ(sched.find(c)->state, JobState::kPending);  // no nodes left
  EXPECT_EQ(sched.free_node_count(), 0u);
  // When a finishes, c starts.
  sched.tick(10 * kMin);
  EXPECT_EQ(sched.find(a)->state, JobState::kCompleted);
  EXPECT_EQ(sched.find(c)->state, JobState::kRunning);
}

TEST(SchedulerTest, AssignsDistinctNodes) {
  Scheduler sched(four_nodes());
  const int a = sched.submit(spec("alice", 3, 60 * kMin), 10 * kMin, 0);
  sched.tick(0);
  const Job* job = sched.find(a);
  ASSERT_EQ(job->assigned_nodes.size(), 3u);
  std::set<std::string> unique(job->assigned_nodes.begin(), job->assigned_nodes.end());
  EXPECT_EQ(unique.size(), 3u);
  EXPECT_EQ(sched.free_node_count(), 1u);
}

TEST(SchedulerTest, WalltimeTimeout) {
  Scheduler sched(four_nodes());
  const int a = sched.submit(spec("alice", 1, 5 * kMin), 60 * kMin, 0);  // runs long
  sched.tick(0);
  sched.tick(4 * kMin);
  EXPECT_EQ(sched.find(a)->state, JobState::kRunning);
  sched.tick(5 * kMin);
  EXPECT_EQ(sched.find(a)->state, JobState::kTimeout);
  EXPECT_EQ(sched.free_node_count(), 4u);
}

TEST(SchedulerTest, EasyBackfillRunsSmallJobAhead) {
  Scheduler sched(four_nodes());
  // A occupies 3 nodes for up to 30 min.
  sched.submit(spec("alice", 3, 30 * kMin), 30 * kMin, 0);
  sched.tick(0);
  // B needs all 4 -> must wait for A (shadow time = 30 min).
  const int b = sched.submit(spec("bob", 4, 30 * kMin), 10 * kMin, 0);
  // C fits in the 1 spare node and its walltime (10 min) ends before the
  // shadow time -> backfilled.
  const int c = sched.submit(spec("carol", 1, 10 * kMin), 5 * kMin, 0);
  sched.tick(1 * kMin);
  EXPECT_EQ(sched.find(b)->state, JobState::kPending);
  EXPECT_EQ(sched.find(c)->state, JobState::kRunning);
  // D would fit the spare node but would outlive the shadow time AND it
  // needs the node B reserves -> no backfill.
  const int d = sched.submit(spec("dave", 1, 60 * kMin), 50 * kMin, 0);
  sched.tick(2 * kMin);
  EXPECT_EQ(sched.find(d)->state, JobState::kPending);
}

TEST(SchedulerTest, BackfillSparesReservedNodes) {
  std::vector<std::string> nodes{"h1", "h2", "h3", "h4", "h5", "h6"};
  Scheduler sched(nodes);
  // A: 4 nodes, 30 min walltime.
  sched.submit(spec("alice", 4, 30 * kMin), 30 * kMin, 0);
  sched.tick(0);
  // B (head): needs 4 -> shadow time 30 min, at which point 4+2 free, so
  // 2 nodes are spare even when B starts.
  sched.submit(spec("bob", 4, 30 * kMin), 10 * kMin, 0);
  // C: 2 nodes, long walltime — fits the spare-noded backfill.
  const int c = sched.submit(spec("carol", 2, 120 * kMin), 100 * kMin, 0);
  sched.tick(1 * kMin);
  EXPECT_EQ(sched.find(c)->state, JobState::kRunning);
}

TEST(SchedulerTest, PriorityOrdersQueue) {
  Scheduler sched(four_nodes());
  // Fill the machine so everything below queues.
  sched.submit(spec("running", 4, 60 * kMin), 10 * kMin, 0);
  sched.tick(0);
  JobSpec low = spec("low", 4, 60 * kMin);
  low.priority = 0;
  JobSpec high = spec("high", 4, 60 * kMin);
  high.priority = 10;
  const int low_id = sched.submit(low, 5 * kMin, 1 * kMin);
  const int high_id = sched.submit(high, 5 * kMin, 2 * kMin);  // submitted later
  sched.tick(10 * kMin);  // first job done: high priority starts first
  EXPECT_EQ(sched.find(high_id)->state, JobState::kRunning);
  EXPECT_EQ(sched.find(low_id)->state, JobState::kPending);
  sched.tick(15 * kMin);
  EXPECT_EQ(sched.find(low_id)->state, JobState::kRunning);
}

TEST(SchedulerTest, EqualPriorityKeepsFcfs) {
  Scheduler sched(four_nodes());
  sched.submit(spec("running", 4, 60 * kMin), 10 * kMin, 0);
  sched.tick(0);
  const int first = sched.submit(spec("first", 4, 60 * kMin), 5 * kMin, 1 * kMin);
  const int second = sched.submit(spec("second", 4, 60 * kMin), 5 * kMin, 2 * kMin);
  sched.tick(10 * kMin);
  EXPECT_EQ(sched.find(first)->state, JobState::kRunning);
  EXPECT_EQ(sched.find(second)->state, JobState::kPending);
}

TEST(SchedulerTest, CancelPendingAndRunning) {
  Scheduler sched(four_nodes());
  const int a = sched.submit(spec("alice", 4, 60 * kMin), 30 * kMin, 0);
  const int b = sched.submit(spec("bob", 1, 60 * kMin), 30 * kMin, 0);
  sched.tick(0);
  EXPECT_EQ(sched.find(b)->state, JobState::kPending);
  EXPECT_TRUE(sched.cancel(b, kMin));
  EXPECT_EQ(sched.find(b)->state, JobState::kCancelled);
  EXPECT_TRUE(sched.cancel(a, 2 * kMin));
  EXPECT_EQ(sched.find(a)->state, JobState::kCancelled);
  EXPECT_EQ(sched.free_node_count(), 4u);
  EXPECT_FALSE(sched.cancel(a, 3 * kMin));  // already finished
  EXPECT_FALSE(sched.cancel(999, 0));
}

TEST(SchedulerTest, CallbacksFire) {
  Scheduler sched(four_nodes());
  std::vector<std::string> events;
  sched.set_on_start([&](const Job& j) { events.push_back("start " + j.job_id_string()); });
  sched.set_on_end([&](const Job& j) {
    events.push_back("end " + j.job_id_string() + " " + std::string(job_state_name(j.state)));
  });
  sched.submit(spec("alice", 2, 60 * kMin), 5 * kMin, 0);
  sched.tick(0);
  sched.tick(5 * kMin);
  EXPECT_EQ(events, (std::vector<std::string>{"start 1", "end 1 completed"}));
}

TEST(SchedulerTest, QueueAccessors) {
  Scheduler sched(four_nodes());
  sched.submit(spec("a", 4, 60 * kMin), 30 * kMin, 0);
  sched.submit(spec("b", 4, 60 * kMin), 30 * kMin, 0);
  sched.tick(0);
  EXPECT_EQ(sched.running().size(), 1u);
  EXPECT_EQ(sched.pending().size(), 1u);
  EXPECT_EQ(sched.finished().size(), 0u);
  sched.tick(30 * kMin);
  sched.tick(60 * kMin);
  EXPECT_EQ(sched.finished().size(), 2u);
}

// ---------------------------------------------------------------- notifier

TEST(NotifierTest, SignalsReachRouter) {
  tsdb::Storage storage;
  util::SimClock clock(0);
  tsdb::HttpApi db(storage, clock);
  net::InprocNetwork network;
  network.bind("tsdb", db.handler());
  net::InprocHttpClient client(network);
  core::MetricsRouter::Options opts;
  opts.db_url = "inproc://tsdb";
  core::MetricsRouter router(client, clock, opts);
  network.bind("router", router.handler());

  Scheduler sched({"h1", "h2"});
  JobNotifier notifier(client, "inproc://router");
  notifier.attach(sched);

  const int a = sched.submit(spec("alice", 2, 60 * kMin), 10 * kMin, 0);
  sched.tick(0);
  // Router now tracks the job with the scheduler's id and node list.
  auto job = router.find_job(std::to_string(a));
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->user, "alice");
  EXPECT_EQ(job->nodes.size(), 2u);
  // Extra tags carried the job name.
  EXPECT_EQ(job->extra_tags.size(), 1u);
  EXPECT_EQ(job->extra_tags[0].first, "jobname");

  sched.tick(10 * kMin);
  EXPECT_FALSE(router.find_job(std::to_string(a)).has_value());
  EXPECT_EQ(notifier.failures(), 0u);
}

TEST(NotifierTest, CountsFailures) {
  net::InprocNetwork network;  // nothing bound
  net::InprocHttpClient client(network);
  JobNotifier notifier(client, "inproc://router");
  Job job;
  job.id = 1;
  EXPECT_FALSE(notifier.notify_start(job).ok());
  EXPECT_FALSE(notifier.notify_end(job).ok());
  EXPECT_EQ(notifier.failures(), 2u);
}

}  // namespace
}  // namespace lms::sched
