// Cross-cutting property tests:
//   - formula evaluator vs. an independent reference interpreter on random
//     expressions,
//   - query engine invariants on random data (aggregator algebra, ordering,
//     limit/desc semantics),
//   - HTTP and line-protocol parser robustness against mutated input
//     (never crash; either parse or reject),
//   - tag-store enrichment idempotence.

#include <gtest/gtest.h>

#include <cmath>

#include "lms/core/tagstore.hpp"
#include "lms/hpm/formula.hpp"
#include "lms/lineproto/codec.hpp"
#include "lms/net/http.hpp"
#include "lms/tsdb/query.hpp"
#include "lms/util/rng.hpp"
#include "lms/util/strings.hpp"

namespace lms {
namespace {

using util::Rng;

// --------------------------------------------------- formula differential

/// Independent reference: build a random expression tree, render it to text
/// for the production compiler, and evaluate the tree directly.
struct ExprNode {
  enum Kind { kConst, kVar, kAdd, kSub, kMul, kDiv, kNeg } kind;
  double value = 0;
  std::string var;
  std::unique_ptr<ExprNode> lhs, rhs;

  double eval(const hpm::VarMap& vars) const {
    switch (kind) {
      case kConst:
        return value;
      case kVar:
        return vars.at(var);
      case kAdd:
        return lhs->eval(vars) + rhs->eval(vars);
      case kSub:
        return lhs->eval(vars) - rhs->eval(vars);
      case kMul:
        return lhs->eval(vars) * rhs->eval(vars);
      case kDiv: {
        const double d = rhs->eval(vars);
        return d == 0.0 ? 0.0 : lhs->eval(vars) / d;  // production semantics
      }
      case kNeg:
        return -lhs->eval(vars);
    }
    return 0;
  }

  std::string render() const {
    switch (kind) {
      case kConst:
        return util::format_double(value);
      case kVar:
        return var;
      case kAdd:
        return "(" + lhs->render() + "+" + rhs->render() + ")";
      case kSub:
        return "(" + lhs->render() + "-" + rhs->render() + ")";
      case kMul:
        return "(" + lhs->render() + "*" + rhs->render() + ")";
      case kDiv:
        return "(" + lhs->render() + "/" + rhs->render() + ")";
      case kNeg:
        return "(-" + lhs->render() + ")";
    }
    return "0";
  }
};

std::unique_ptr<ExprNode> random_expr(Rng& rng, int depth) {
  auto node = std::make_unique<ExprNode>();
  const int kind = depth <= 0 ? static_cast<int>(rng.uniform_int(0, 1))
                              : static_cast<int>(rng.uniform_int(0, 6));
  switch (kind) {
    case 0:
      node->kind = ExprNode::kConst;
      node->value = std::round(rng.uniform(-100, 100) * 4.0) / 4.0;
      break;
    case 1:
      node->kind = ExprNode::kVar;
      node->var = "V" + std::to_string(rng.uniform_int(0, 3));
      break;
    case 2:
    case 3:
    case 4:
    case 5: {
      node->kind = static_cast<ExprNode::Kind>(ExprNode::kAdd + (kind - 2));
      node->lhs = random_expr(rng, depth - 1);
      node->rhs = random_expr(rng, depth - 1);
      break;
    }
    default:
      node->kind = ExprNode::kNeg;
      node->lhs = random_expr(rng, depth - 1);
      break;
  }
  return node;
}

class FormulaDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FormulaDifferential, MatchesReferenceInterpreter) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const hpm::VarMap vars{{"V0", 2.5}, {"V1", -3.0}, {"V2", 0.0}, {"V3", 1e6}};
  for (int i = 0; i < 200; ++i) {
    const auto tree = random_expr(rng, 4);
    const std::string text = tree->render();
    auto compiled = hpm::Formula::compile(text);
    ASSERT_TRUE(compiled.ok()) << text << ": " << compiled.message();
    auto got = compiled->evaluate(vars);
    ASSERT_TRUE(got.ok()) << text;
    const double want = tree->eval(vars);
    if (std::isfinite(want) && std::fabs(want) < 1e300) {
      EXPECT_NEAR(*got, want, std::max(1e-9, std::fabs(want) * 1e-12)) << text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormulaDifferential, ::testing::Range(1, 7));

// ------------------------------------------------------- query invariants

class QueryInvariants : public ::testing::TestWithParam<int> {
 protected:
  QueryInvariants() : db_("prop") {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
    n_ = 200 + static_cast<int>(rng.uniform_int(0, 300));
    for (int i = 0; i < n_; ++i) {
      const std::string host = "h" + std::to_string(rng.uniform_int(1, 4));
      db_.write(lineproto::make_point("m", "v", rng.normal(50, 20),
                                      rng.uniform_int(1, 1000) * util::kNanosPerSecond,
                                      {{"hostname", host}}),
                0);
    }
  }

  tsdb::QueryResult run(const std::string& q) {
    auto stmt = tsdb::parse_query(q, 0);
    EXPECT_TRUE(stmt.ok()) << q << ": " << stmt.message();
    auto r = tsdb::execute(db_, *stmt);
    EXPECT_TRUE(r.ok()) << q;
    return r.take();
  }

  tsdb::Database db_;
  int n_ = 0;
};

TEST_P(QueryInvariants, AggregatorAlgebra) {
  // sum == mean * count; min <= mean <= max; count equals written points.
  const auto r = run("SELECT sum(v), mean(v), count(v), min(v), max(v) FROM m");
  ASSERT_EQ(r.series.size(), 1u);
  const auto& row = r.series[0].values[0];
  const double sum = row[1].as_double();
  const double mean = row[2].as_double();
  const auto count = row[3].as_int();
  const double mn = row[4].as_double();
  const double mx = row[5].as_double();
  EXPECT_EQ(count, n_);
  EXPECT_NEAR(sum, mean * static_cast<double>(count), std::fabs(sum) * 1e-9 + 1e-9);
  EXPECT_LE(mn, mean);
  EXPECT_LE(mean, mx);
}

TEST_P(QueryInvariants, GroupByTagPartitionsCount) {
  const auto total = run("SELECT count(v) FROM m");
  const auto grouped = run("SELECT count(v) FROM m GROUP BY hostname");
  std::int64_t sum = 0;
  for (const auto& s : grouped.series) sum += s.values[0][1].as_int();
  EXPECT_EQ(sum, total.series[0].values[0][1].as_int());
}

TEST_P(QueryInvariants, RawRowsSortedAndLimited) {
  const auto r = run("SELECT v FROM m WHERE hostname='h1'");
  for (const auto& series : r.series) {
    for (std::size_t i = 1; i < series.values.size(); ++i) {
      EXPECT_LE(series.values[i - 1][0].as_int(), series.values[i][0].as_int());
    }
  }
  const auto desc = run("SELECT v FROM m WHERE hostname='h1' ORDER BY time DESC LIMIT 7");
  for (const auto& series : desc.series) {
    EXPECT_LE(series.values.size(), 7u);
    for (std::size_t i = 1; i < series.values.size(); ++i) {
      EXPECT_GE(series.values[i - 1][0].as_int(), series.values[i][0].as_int());
    }
  }
}

TEST_P(QueryInvariants, PercentileBounds) {
  const auto r = run("SELECT percentile(v, 1), median(v), percentile(v, 99), min(v), max(v) "
                     "FROM m");
  const auto& row = r.series[0].values[0];
  const double p1 = row[1].as_double();
  const double med = row[2].as_double();
  const double p99 = row[3].as_double();
  const double mn = row[4].as_double();
  const double mx = row[5].as_double();
  EXPECT_LE(mn, p1);
  EXPECT_LE(p1, med);
  EXPECT_LE(med, p99);
  EXPECT_LE(p99, mx);
}

TEST_P(QueryInvariants, WindowMeansBoundedByGlobalExtrema) {
  const auto bounds = run("SELECT min(v), max(v) FROM m");
  const double mn = bounds.series[0].values[0][1].as_double();
  const double mx = bounds.series[0].values[0][2].as_double();
  const auto windows = run("SELECT mean(v) FROM m GROUP BY time(100s)");
  for (const auto& series : windows.series) {
    for (const auto& row : series.values) {
      EXPECT_GE(row[1].as_double(), mn - 1e-9);
      EXPECT_LE(row[1].as_double(), mx + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryInvariants, ::testing::Range(1, 6));

// ------------------------------------------------------ parser robustness

class ParserRobustness : public ::testing::TestWithParam<int> {};

TEST_P(ParserRobustness, MutatedHttpNeverCrashes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  const std::string base =
      net::HttpRequest::post("/write?db=lms", "cpu,hostname=h1 v=1 100\n", "text/plain")
          .serialize();
  for (int i = 0; i < 300; ++i) {
    std::string mutated = base;
    const int mutations = 1 + static_cast<int>(rng.uniform_int(0, 4));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.uniform_int(0, 255));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(rng.uniform_int(32, 126)));
          break;
      }
    }
    std::size_t consumed = 0;
    auto req = net::parse_request(mutated, &consumed);  // must not crash
    if (req.ok()) {
      EXPECT_LE(consumed, mutated.size());
    }
    auto resp = net::parse_response(mutated, &consumed);
    (void)resp;
  }
}

TEST_P(ParserRobustness, MutatedLineProtocolNeverCrashes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537);
  const std::string base =
      R"(cpu,hostname=h1,jobid=7 user=42.5,s="text \" here",n=3i,b=true 1500000000)";
  for (int i = 0; i < 500; ++i) {
    std::string mutated = base;
    for (int m = 0; m < 3; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.uniform_int(1, 255));
    }
    auto p = lineproto::parse_line(mutated);  // must not crash
    if (p.ok()) {
      // Whatever parsed must re-serialize and re-parse to the same point.
      auto again = lineproto::parse_line(lineproto::serialize(*p));
      ASSERT_TRUE(again.ok()) << mutated;
      EXPECT_EQ(*again, *p);
    }
  }
}

TEST_P(ParserRobustness, MutatedQueriesNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 49921);
  tsdb::Database db("fuzz");
  db.write(lineproto::make_point("m", "v", 1.0, 100, {{"hostname", "h1"}}), 0);
  const std::string base =
      "SELECT mean(v) FROM m WHERE hostname='h1' AND time >= 0 GROUP BY time(10s) "
      "fill(previous) ORDER BY time DESC LIMIT 3";
  for (int i = 0; i < 300; ++i) {
    std::string mutated = base;
    for (int m = 0; m < 2; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
    }
    auto stmt = tsdb::parse_query(mutated, 0);
    if (stmt.ok()) {
      auto r = tsdb::execute(db, *stmt);  // must not crash either way
      (void)r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness, ::testing::Range(1, 5));

// ------------------------------------------------------------- tag store

TEST(TagStoreProperty, EnrichmentIsIdempotent) {
  Rng rng(11);
  core::TagStore store;
  store.set_tags("h1", {{"jobid", "7"}, {"user", "alice"}, {"queue", "batch"}});
  for (int i = 0; i < 100; ++i) {
    lineproto::Point p = lineproto::make_point(
        "m", "v", rng.uniform(0, 1), 1, {{"hostname", "h1"}, {"extra", "x"}});
    store.enrich(p);
    lineproto::Point once = p;
    store.enrich(p);
    EXPECT_EQ(p, once);  // enriching twice changes nothing
  }
}

}  // namespace
}  // namespace lms
