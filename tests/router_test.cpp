// Tests for the paper's core component: the metrics router — tag store,
// enrichment keyed by the hostname tag, job start/end signals, per-user
// duplication, PUB/SUB publication — plus the Ganglia pulling proxy.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "lms/core/pullproxy.hpp"
#include "lms/core/router.hpp"
#include "lms/json/json.hpp"
#include "lms/lineproto/codec.hpp"
#include "lms/tsdb/http_api.hpp"
#include "lms/util/strings.hpp"

namespace lms::core {
namespace {

using lineproto::Point;
using util::kNanosPerSecond;

constexpr util::TimeNs kSec = kNanosPerSecond;

// ---------------------------------------------------------------- tagstore

TEST(TagStoreTest, SetClearLookup) {
  TagStore store;
  store.set_tags("h1", {{"jobid", "7"}, {"user", "alice"}});
  EXPECT_EQ(store.host_count(), 1u);
  EXPECT_EQ(store.tags_for("h1").size(), 2u);
  EXPECT_TRUE(store.tags_for("h2").empty());
  store.clear_tags("h1");
  EXPECT_EQ(store.host_count(), 0u);
}

TEST(TagStoreTest, EnrichAppendsWithoutOverwriting) {
  TagStore store;
  store.set_tags("h1", {{"jobid", "7"}, {"user", "alice"}});
  Point p = lineproto::make_point("cpu", "v", 1.0, 10,
                                  {{"hostname", "h1"}, {"user", "produceruser"}});
  EXPECT_EQ(store.enrich(p), 1u);  // only jobid added; user kept
  EXPECT_EQ(p.tag("jobid"), "7");
  EXPECT_EQ(p.tag("user"), "produceruser");
  // Tags stay sorted after enrichment (canonical form).
  for (std::size_t i = 1; i < p.tags.size(); ++i) {
    EXPECT_LE(p.tags[i - 1].first, p.tags[i].first);
  }
}

TEST(TagStoreTest, EnrichWithoutHostnameIsNoop) {
  TagStore store;
  store.set_tags("h1", {{"jobid", "7"}});
  Point p = lineproto::make_point("cpu", "v", 1.0, 10);
  EXPECT_EQ(store.enrich(p), 0u);
  EXPECT_TRUE(p.tags.empty());
}

// ---------------------------------------------------------------- fixture

class RouterTest : public ::testing::Test {
 protected:
  RouterTest()
      : clock_(100 * kSec),
        db_api_(storage_, clock_),
        client_(network_) {
    network_.bind("tsdb", db_api_.handler());
    MetricsRouter::Options opts;
    opts.db_url = "inproc://tsdb";
    opts.database = "lms";
    opts.duplicate_per_user = true;
    router_ = std::make_unique<MetricsRouter>(client_, clock_, opts, &broker_);
    network_.bind("router", router_->handler());
  }

  JobSignal signal(const std::string& id, const std::string& user,
                   std::vector<std::string> nodes) {
    JobSignal s;
    s.job_id = id;
    s.user = user;
    s.nodes = std::move(nodes);
    s.extra_tags = {{"queue", "batch"}};
    return s;
  }

  /// Options for a router with async ingest that only flushes on demand
  /// (the interval is an hour, so the background flusher never interferes
  /// with deterministic assertions).
  MetricsRouter::Options async_opts() {
    MetricsRouter::Options opts;
    opts.db_url = "inproc://tsdb";
    opts.database = "lms";
    opts.async_ingest = true;
    opts.ingest_flush_interval = util::kNanosPerHour;
    return opts;
  }

  net::HttpResponse post_write(MetricsRouter& router, const std::string& body,
                               const std::string& db = {}, const std::string& precision = {}) {
    net::HttpRequest req = net::HttpRequest::post("/write", body, "text/plain");
    if (!db.empty()) req.query.set("db", db);
    if (!precision.empty()) req.query.set("precision", precision);
    return router.handler()(req);
  }

  tsdb::Storage storage_;
  util::SimClock clock_;
  net::InprocNetwork network_;
  tsdb::HttpApi db_api_;
  net::InprocHttpClient client_;
  net::PubSubBroker broker_;
  std::unique_ptr<MetricsRouter> router_;
};

TEST_F(RouterTest, ForwardsPointsToDatabase) {
  auto n = router_->write_lines("cpu,hostname=h1 user=42 1000\n");
  ASSERT_TRUE(n.ok()) << n.message();
  EXPECT_EQ(*n, 1u);
  tsdb::Database* db = storage_.find_database("lms");
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(db->sample_count(), 1u);
}

TEST_F(RouterTest, EnrichesWithJobTags) {
  ASSERT_TRUE(router_->job_start(signal("42", "alice", {"h1", "h2"})).ok());
  router_->write_lines("cpu,hostname=h1 v=1 1000\ncpu,hostname=h3 v=2 1000\n");
  tsdb::Database* db = storage_.find_database("lms");
  // h1 point got jobid/user/queue tags, h3 (not in job) did not.
  EXPECT_EQ(db->series_matching("cpu", {{"jobid", "42"}, {"user", "alice"}}).size(), 1u);
  EXPECT_EQ(db->series_matching("cpu", {{"hostname", "h3"}, {"jobid", "42"}}).size(), 0u);
  EXPECT_EQ(db->series_matching("cpu", {{"queue", "batch"}}).size(), 1u);
}

TEST_F(RouterTest, JobEndStopsTagging) {
  router_->job_start(signal("42", "alice", {"h1"}));
  ASSERT_TRUE(router_->job_end("42").ok());
  router_->write_lines("cpu,hostname=h1 v=1 2000\n");
  tsdb::Database* db = storage_.find_database("lms");
  EXPECT_EQ(db->series_matching("cpu", {{"jobid", "42"}}).size(), 0u);
  EXPECT_FALSE(router_->job_end("42").ok());  // second end: unknown job
}

TEST_F(RouterTest, JobSignalsBecomeAnnotationEvents) {
  router_->job_start(signal("42", "alice", {"h1", "h2"}));
  clock_.advance(10 * kSec);
  router_->job_end("42");
  tsdb::Database* db = storage_.find_database("lms");
  const auto series = db->series_matching("events", {{"jobid", "42"}});
  ASSERT_EQ(series.size(), 1u);
  const auto& col = series[0]->columns.at("type");
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(col.values()[0].as_string(), "job_start");
  EXPECT_EQ(col.values()[1].as_string(), "job_end");
  EXPECT_EQ(col.times()[1] - col.times()[0], 10 * kSec);
}

TEST_F(RouterTest, PerUserDuplication) {
  router_->job_start(signal("42", "alice", {"h1"}));
  router_->write_lines("cpu,hostname=h1 v=1 1000\ncpu,hostname=h9 v=2 1000\n");
  // h1's point lands in lms AND user_alice; h9's only in lms.
  tsdb::Database* user_db = storage_.find_database("user_alice");
  ASSERT_NE(user_db, nullptr);
  EXPECT_EQ(user_db->sample_count(), 1u);
  EXPECT_EQ(storage_.find_database("lms")->series_of("cpu").size(), 2u);
  EXPECT_EQ(router_->stats().points_duplicated, 1u);
}

TEST_F(RouterTest, PublishesMetricsAndJobMeta) {
  auto metrics_sub = broker_.subscribe("metrics");
  auto jobs_sub = broker_.subscribe("jobs");
  router_->job_start(signal("42", "alice", {"h1"}));
  router_->write_lines("cpu,hostname=h1 v=1 1000\n");

  const auto job_msg = jobs_sub->try_receive();
  ASSERT_TRUE(job_msg.has_value());
  const auto meta = json::parse(job_msg->payload);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ((*meta)["type"].as_string(), "job_start");
  EXPECT_EQ((*meta)["nodes"][0].as_string(), "h1");

  const auto metric_msg = metrics_sub->try_receive();
  ASSERT_TRUE(metric_msg.has_value());
  // Published lines are the *enriched* ones.
  const auto points = lineproto::parse(metric_msg->payload);
  ASSERT_TRUE(points.ok());
  EXPECT_EQ((*points)[0].tag("jobid"), "42");
}

TEST_F(RouterTest, RunningJobsTracked) {
  router_->job_start(signal("1", "alice", {"h1"}));
  router_->job_start(signal("2", "bob", {"h2", "h3"}));
  auto jobs = router_->running_jobs();
  EXPECT_EQ(jobs.size(), 2u);
  auto job = router_->find_job("2");
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->user, "bob");
  EXPECT_EQ(job->nodes.size(), 2u);
  router_->job_end("1");
  EXPECT_EQ(router_->running_jobs().size(), 1u);
  EXPECT_FALSE(router_->find_job("1").has_value());
}

TEST_F(RouterTest, HttpEndpoints) {
  // /ping
  EXPECT_EQ(client_.get("inproc://router/ping")->status, 204);
  // /job/start via HTTP JSON.
  auto resp = client_.post("inproc://router/job/start",
                           R"({"jobid":"9","user":"carol","nodes":["h1"],)"
                           R"("tags":{"account":"proj1"}})",
                           "application/json");
  EXPECT_EQ(resp->status, 204);
  // /write via HTTP.
  resp = client_.post("inproc://router/write?db=lms", "cpu,hostname=h1 v=3 500\n",
                      "text/plain");
  EXPECT_EQ(resp->status, 204);
  EXPECT_EQ(storage_.find_database("lms")
                ->series_matching("cpu", {{"account", "proj1"}})
                .size(),
            1u);
  // /jobs listing.
  resp = client_.get("inproc://router/jobs");
  auto jobs = json::parse(resp->body);
  ASSERT_TRUE(jobs.ok());
  EXPECT_EQ((*jobs)["jobs"][0]["jobid"].as_string(), "9");
  EXPECT_EQ((*jobs)["jobs"][0]["tags"]["account"].as_string(), "proj1");
  // /job/end.
  resp = client_.post("inproc://router/job/end", R"({"jobid":"9"})", "application/json");
  EXPECT_EQ(resp->status, 204);
  // /stats.
  resp = client_.get("inproc://router/stats");
  auto stats = json::parse(resp->body);
  EXPECT_EQ((*stats)["jobs_started"].as_int(), 1);
  EXPECT_EQ((*stats)["jobs_ended"].as_int(), 1);
  // Unknown endpoint.
  EXPECT_EQ(client_.get("inproc://router/nope")->status, 404);
  // Malformed job signal.
  EXPECT_EQ(client_.post("inproc://router/job/start", "{notjson", "application/json")->status,
            400);
  EXPECT_EQ(client_.post("inproc://router/job/start", R"({"user":"x"})",
                         "application/json")
                ->status,
            400);
}

TEST_F(RouterTest, BadLinesCounted) {
  auto n = router_->write_lines("cpu,hostname=h1 v=1\nbroken\n");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  EXPECT_EQ(router_->stats().parse_errors, 1u);
  EXPECT_FALSE(router_->write_lines("completely broken").ok());
}

TEST_F(RouterTest, UnstampedPointsGetRouterTime) {
  router_->write_lines("cpu,hostname=h1 v=1\n");
  tsdb::Database* db = storage_.find_database("lms");
  const auto series = db->series_of("cpu");
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0]->columns.at("v").times()[0], 100 * kSec);
}

TEST_F(RouterTest, PrecisionParameterScalesTimestamps) {
  EXPECT_EQ(post_write(*router_, "cpu,hostname=h1 v=1 5\n", "", "s").status, 204);
  const auto series = storage_.find_database("lms")->series_of("cpu");
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0]->columns.at("v").times()[0], 5 * kSec);
  // And the same invalid-precision rejection as the TSDB façade.
  EXPECT_EQ(post_write(*router_, "cpu,hostname=h1 v=1\n", "", "parsec").status, 400);
}

// ---------------------------------------------------------------- async ingest

TEST_F(RouterTest, AsyncIngestBuffersUntilFlush) {
  router_ = std::make_unique<MetricsRouter>(client_, clock_, async_opts(), &broker_);
  auto n = router_->write_lines("cpu,hostname=h1 v=1 1000\ncpu,hostname=h2 v=2 1000\n");
  ASSERT_TRUE(n.ok()) << n.message();
  EXPECT_EQ(*n, 2u);
  // Accepted but not forwarded yet.
  EXPECT_EQ(router_->ingest_queue_points(), 2u);
  EXPECT_EQ(storage_.totals().samples, 0u);
  EXPECT_EQ(router_->stats().points_out, 0u);

  EXPECT_EQ(router_->flush_ingest(), 2u);
  EXPECT_EQ(router_->ingest_queue_points(), 0u);
  EXPECT_EQ(storage_.totals().samples, 2u);
  const auto s = router_->stats();
  EXPECT_EQ(s.points_out, 2u);
  EXPECT_EQ(s.ingest_flushed, 2u);
}

TEST_F(RouterTest, AsyncIngestBackpressureIs429WithRetryAfter) {
  auto opts = async_opts();
  opts.ingest_queue_capacity = 4;
  router_ = std::make_unique<MetricsRouter>(client_, clock_, opts, &broker_);

  ASSERT_TRUE(router_->write_lines("a,hostname=h1 v=1 1\na,hostname=h2 v=1 1\na,hostname=h3 v=1 1\n").ok());
  const auto resp = post_write(
      *router_, "b,hostname=h1 v=1 1\nb,hostname=h2 v=1 1\nb,hostname=h3 v=1 1\n");
  EXPECT_EQ(resp.status, 429);
  EXPECT_EQ(resp.headers.get_or("Retry-After", ""), "1");
  auto body = json::parse(resp.body);
  ASSERT_TRUE(body.ok()) << resp.body;
  EXPECT_TRUE(util::starts_with((*body)["error"].as_string(), "backpressure"));
  EXPECT_EQ(router_->stats().ingest_rejected, 3u);
  // The rejected batch left no partial residue.
  EXPECT_EQ(router_->ingest_queue_points(), 3u);

  // Draining the queue makes room again.
  EXPECT_EQ(router_->flush_ingest(), 3u);
  EXPECT_EQ(post_write(*router_, "b,hostname=h1 v=1 1\n").status, 204);
}

TEST_F(RouterTest, AsyncIngestRoutesPerUserDuplicates) {
  auto opts = async_opts();
  opts.duplicate_per_user = true;
  router_ = std::make_unique<MetricsRouter>(client_, clock_, opts, &broker_);

  ASSERT_TRUE(router_->write_lines("cpu,hostname=h1,user=alice v=1 1000\n").ok());
  // Primary point + its per-user copy, routed at accept time.
  EXPECT_EQ(router_->ingest_queue_points(), 2u);
  EXPECT_EQ(router_->flush_ingest(), 2u);
  EXPECT_EQ(storage_.find_database("lms")->sample_count(), 1u);
  ASSERT_NE(storage_.find_database("user_alice"), nullptr);
  EXPECT_EQ(storage_.find_database("user_alice")->sample_count(), 1u);
  const auto s = router_->stats();
  EXPECT_EQ(s.points_out, 1u);
  EXPECT_EQ(s.points_duplicated, 1u);
}

TEST_F(RouterTest, AsyncIngestShutdownDrainsQueue) {
  router_ = std::make_unique<MetricsRouter>(client_, clock_, async_opts(), &broker_);
  ASSERT_TRUE(router_->write_lines("cpu,hostname=h1 v=1 1000\n").ok());
  EXPECT_EQ(storage_.totals().samples, 0u);
  router_.reset();  // joins the flusher and drains what is left
  EXPECT_EQ(storage_.totals().samples, 1u);
}

TEST_F(RouterTest, AsyncIngestBackgroundFlusherDelivers) {
  auto opts = async_opts();
  opts.ingest_flush_interval = util::kNanosPerMilli;  // real-time cadence
  router_ = std::make_unique<MetricsRouter>(client_, clock_, opts, &broker_);
  ASSERT_TRUE(router_->write_lines("cpu,hostname=h1 v=1 1000\n").ok());
  // totals() snapshots, so polling concurrently with the flusher is safe.
  for (int i = 0; i < 2000 && storage_.totals().samples == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(storage_.totals().samples, 1u);
  EXPECT_EQ(router_->ingest_queue_points(), 0u);
}

// ---------------------------------------------------------------- shared errors

TEST_F(RouterTest, WriteErrorResponsesMatchTsdbFacade) {
  // The router and the TSDB façade share one parser: a hopeless batch and an
  // invalid precision produce byte-identical error responses on both.
  for (const auto& [body, precision] :
       std::vector<std::pair<std::string, std::string>>{{"completely broken", ""},
                                                        {"cpu,hostname=h1 v=1", "parsec"}}) {
    net::HttpRequest req = net::HttpRequest::post("/write", body, "text/plain");
    req.query.set("db", "lms");
    if (!precision.empty()) req.query.set("precision", precision);
    const auto from_router = router_->handler()(req);
    const auto from_tsdb = db_api_.handler()(req);
    EXPECT_EQ(from_router.status, 400);
    EXPECT_EQ(from_router.status, from_tsdb.status);
    EXPECT_EQ(from_router.body, from_tsdb.body);
  }
}

TEST_F(RouterTest, UnknownDatabasePassesThrough404) {
  // A back-end with auto-creation off rejects unknown databases; the router
  // relays that 404 body unchanged so producers see one error shape.
  tsdb::Storage strict_storage;
  strict_storage.database("lms");
  tsdb::HttpApi::Options api_opts;
  api_opts.auto_create_dbs = false;
  tsdb::HttpApi strict_api(strict_storage, clock_, api_opts);
  network_.bind("strict", strict_api.handler());
  MetricsRouter::Options opts;
  opts.db_url = "inproc://strict";
  opts.database = "lms";
  MetricsRouter router(client_, clock_, opts, &broker_);

  net::HttpRequest req =
      net::HttpRequest::post("/write", "cpu,hostname=h1 v=1 1000\n", "text/plain");
  req.query.set("db", "ghost");
  const auto from_router = router.handler()(req);
  const auto from_tsdb = strict_api.handler()(req);
  EXPECT_EQ(from_router.status, 404);
  EXPECT_EQ(from_tsdb.status, 404);
  EXPECT_EQ(from_router.body, from_tsdb.body);
  // Writes to the known database still pass.
  EXPECT_EQ(router.handler()(net::HttpRequest::post(
                "/write", "cpu,hostname=h1 v=1 1000\n", "text/plain")).status, 204);
}

// ---------------------------------------------------------------- pullproxy

constexpr std::string_view kGmondXml = R"(<?xml version="1.0" encoding="ISO-8859-1"?>
<GANGLIA_XML VERSION="3.7.2" SOURCE="gmond">
<CLUSTER NAME="lms-test" LOCALTIME="1500000000">
<HOST NAME="h1" IP="10.0.0.1">
<METRIC NAME="load_one" VAL="2.5" TYPE="double" UNITS=""/>
<METRIC NAME="mem_free" VAL="1048576" TYPE="uint32" UNITS="KB"/>
<METRIC NAME="os_name" VAL="Linux" TYPE="string" UNITS=""/>
</HOST>
<HOST NAME="h2" IP="10.0.0.2">
<METRIC NAME="load_one" VAL="0.1" TYPE="double" UNITS=""/>
</HOST>
</CLUSTER>
</GANGLIA_XML>)";

TEST(GangliaXml, ParsesHostsAndMetrics) {
  auto points = parse_ganglia_xml(kGmondXml, 123 * kSec);
  ASSERT_TRUE(points.ok()) << points.message();
  ASSERT_EQ(points->size(), 2u);
  const Point& h1 = (*points)[0];
  EXPECT_EQ(h1.measurement, "ganglia");
  EXPECT_EQ(h1.tag("hostname"), "h1");
  EXPECT_EQ(h1.tag("cluster"), "lms-test");
  EXPECT_DOUBLE_EQ(h1.field("load_one")->as_double(), 2.5);
  EXPECT_DOUBLE_EQ(h1.field("mem_free")->as_double(), 1048576.0);
  EXPECT_EQ(h1.field("os_name")->as_string(), "Linux");
  EXPECT_EQ(h1.timestamp, 123 * kSec);
  EXPECT_EQ((*points)[1].tag("hostname"), "h2");
}

TEST(GangliaXml, RejectsWrongRoot) {
  EXPECT_FALSE(parse_ganglia_xml("<OTHER/>", 0).ok());
  EXPECT_FALSE(parse_ganglia_xml("not xml at all <", 0).ok());
}

TEST_F(RouterTest, PullProxyPushesIntoRouter) {
  // A fake gmond endpoint.
  network_.bind("gmond", [](const net::HttpRequest&) {
    return net::HttpResponse::text(200, std::string(kGmondXml));
  });
  router_->job_start(signal("7", "dave", {"h1"}));

  PullProxy proxy(client_, "inproc://router");
  proxy.add_source(std::make_unique<GangliaXmlSource>(client_, "inproc://gmond/"), 30 * kSec);
  EXPECT_EQ(proxy.tick(clock_.now()), 2u);

  tsdb::Database* db = storage_.find_database("lms");
  // Pulled metrics went through enrichment like everything else (§III-B).
  EXPECT_EQ(db->series_matching("ganglia", {{"jobid", "7"}}).size(), 1u);
  EXPECT_EQ(db->series_matching("ganglia", {{"hostname", "h2"}}).size(), 1u);

  // Respect the polling interval: an immediate second tick does nothing.
  EXPECT_EQ(proxy.tick(clock_.now()), 0u);
  EXPECT_EQ(proxy.tick(clock_.now() + 31 * kSec), 2u);
}

TEST_F(RouterTest, PullProxyCountsFailures) {
  PullProxy proxy(client_, "inproc://router");
  proxy.add_source(std::make_unique<GangliaXmlSource>(client_, "inproc://nothere/"), kSec);
  EXPECT_EQ(proxy.tick(clock_.now()), 0u);
  EXPECT_EQ(proxy.pull_failures(), 1u);
}

TEST_F(RouterTest, DebugRuntimeEndpointRanksContention) {
  auto resp = client_.get("inproc://router/debug/runtime");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->headers.get_or("Content-Type", ""), "application/json");
  auto body = json::parse(resp->body);
  ASSERT_TRUE(body.ok()) << resp->body;
  EXPECT_TRUE((*body)["build"].is_object());
  EXPECT_TRUE((*body)["lock_stats"].is_object());
  EXPECT_TRUE((*body)["lock_stats"]["sites"].is_array());
  EXPECT_TRUE((*body)["queues"].is_array());
  EXPECT_TRUE((*body)["loops"].is_array());
  // The contention table is only populated when the process was built with
  // -DLMS_LOCK_STATS=ON; the endpoint itself works either way.
  EXPECT_EQ((*body)["lock_stats"]["compiled"].as_bool(),
            core::sync::kLockStatsEnabled);
}

TEST_F(RouterTest, HealthReportsBuildInfo) {
  auto resp = client_.get("inproc://router/health");
  ASSERT_TRUE(resp.ok());
  auto body = json::parse(resp->body);
  ASSERT_TRUE(body.ok()) << resp->body;
  EXPECT_TRUE((*body)["build"].is_object());
  EXPECT_TRUE((*body)["build"]["type"].is_string());
  EXPECT_TRUE((*body)["build"]["compiler"].is_string());
}

}  // namespace
}  // namespace lms::core
