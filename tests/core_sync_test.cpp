// Lock-rank checker tests. This binary is compiled with
// LMS_SYNC_RANK_CHECKS=1 (see tests/CMakeLists.txt) so the checker is active
// regardless of the build type; core_sync_release_test covers the
// compiled-out configuration. The suite installs a throwing violation
// handler: throwing out of the failed acquisition both captures the message
// and prevents the test from actually deadlocking on the inverted order.

#include "lms/core/sync.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

namespace csync = lms::core::sync;

namespace {

thread_local std::string g_last_violation;

struct RankViolation : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void throwing_handler(const char* message) {
  g_last_violation = message;
  throw RankViolation(message);
}

class CoreSyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_last_violation.clear();
    previous_ = csync::set_rank_violation_handler(&throwing_handler);
  }
  void TearDown() override { csync::set_rank_violation_handler(previous_); }

  csync::RankViolationHandler previous_ = nullptr;
};

TEST_F(CoreSyncTest, CheckerIsEnabledInThisBinary) {
  EXPECT_TRUE(csync::kRankCheckingEnabled);
}

TEST_F(CoreSyncTest, CorrectOrderPasses) {
  csync::Mutex net(csync::Rank::kNet, "net.pubsub");
  csync::Mutex queue(csync::Rank::kQueue, "util.queue");
  {
    csync::LockGuard outer(net);
    csync::LockGuard inner(queue);
    EXPECT_EQ(csync::held_lock_count(), 2u);
  }
  EXPECT_EQ(csync::held_lock_count(), 0u);
  EXPECT_TRUE(g_last_violation.empty());
}

TEST_F(CoreSyncTest, InvertedOrderReportsBothLockNames) {
  csync::Mutex net(csync::Rank::kNet, "net.pubsub");
  csync::Mutex queue(csync::Rank::kQueue, "util.queue");
  csync::LockGuard inner(queue);
  EXPECT_THROW(net.lock(), RankViolation);
  EXPECT_NE(g_last_violation.find("net.pubsub"), std::string::npos) << g_last_violation;
  EXPECT_NE(g_last_violation.find("util.queue"), std::string::npos) << g_last_violation;
  EXPECT_NE(g_last_violation.find("violation"), std::string::npos) << g_last_violation;
}

TEST_F(CoreSyncTest, SameRankInSeqOrderPasses) {
  csync::Mutex shard0(csync::Rank::kTsdbShard, "tsdb.shard", 0);
  csync::Mutex shard1(csync::Rank::kTsdbShard, "tsdb.shard", 1);
  csync::LockGuard first(shard0);
  csync::LockGuard second(shard1);
  EXPECT_TRUE(g_last_violation.empty());
}

TEST_F(CoreSyncTest, SameRankCrossOrderDetected) {
  csync::Mutex shard0(csync::Rank::kTsdbShard, "tsdb.shard", 0);
  csync::Mutex shard1(csync::Rank::kTsdbShard, "tsdb.shard", 1);
  csync::LockGuard first(shard1);
  EXPECT_THROW(shard0.lock(), RankViolation);
  EXPECT_NE(g_last_violation.find("same-rank cross-order"), std::string::npos)
      << g_last_violation;
  EXPECT_NE(g_last_violation.find("tsdb.shard"), std::string::npos) << g_last_violation;
}

TEST_F(CoreSyncTest, ReacquiringHeldLockIsSelfDeadlock) {
  csync::Mutex mu(csync::Rank::kNet, "net.inproc");
  csync::LockGuard guard(mu);
  EXPECT_THROW(mu.lock(), RankViolation);
  EXPECT_NE(g_last_violation.find("self-deadlock"), std::string::npos) << g_last_violation;
  EXPECT_NE(g_last_violation.find("net.inproc"), std::string::npos) << g_last_violation;
}

TEST_F(CoreSyncTest, TryLockIsExemptFromOrdering) {
  // A try-acquisition cannot deadlock, so taking a *lower* rank via
  // try_lock while holding a higher rank is allowed...
  csync::Mutex net(csync::Rank::kNet, "net.pubsub");
  csync::Mutex queue(csync::Rank::kQueue, "util.queue");
  csync::LockGuard inner(queue);
  ASSERT_TRUE(net.try_lock());
  EXPECT_TRUE(g_last_violation.empty());
  // ...but the try-held lock still counts for later blocking acquisitions.
  csync::Mutex tags(csync::Rank::kRouterTags, "core.tagstore");
  EXPECT_THROW(tags.lock(), RankViolation);
  EXPECT_NE(g_last_violation.find("core.tagstore"), std::string::npos) << g_last_violation;
  net.unlock();
}

TEST_F(CoreSyncTest, SharedMutexFollowsTheSameHierarchy) {
  csync::SharedMutex map(csync::Rank::kTsdbMap, "tsdb.storage.map");
  csync::SharedMutex shard(csync::Rank::kTsdbShard, "tsdb.shard", 3);
  {
    csync::SharedLockGuard readers(map);
    csync::SharedLockGuard stripe(shard);
    EXPECT_EQ(csync::held_lock_count(), 2u);
  }
  EXPECT_TRUE(g_last_violation.empty());
  csync::SharedLockGuard stripe(shard);
  EXPECT_THROW(map.lock_shared(), RankViolation);
  EXPECT_NE(g_last_violation.find("tsdb.storage.map"), std::string::npos) << g_last_violation;
  EXPECT_NE(g_last_violation.find("tsdb.shard"), std::string::npos) << g_last_violation;
}

TEST_F(CoreSyncTest, ReleaseOrderDoesNotMatter) {
  // ReadSnapshot releases its stripes front-to-back; the held stack must
  // tolerate non-LIFO releases.
  csync::Mutex a(csync::Rank::kNet, "a");
  csync::Mutex b(csync::Rank::kQueue, "b");
  csync::Mutex c(csync::Rank::kLogging, "c");
  a.lock();
  b.lock();
  c.lock();
  a.unlock();
  b.unlock();
  EXPECT_EQ(csync::held_lock_count(), 1u);
  c.unlock();
  EXPECT_EQ(csync::held_lock_count(), 0u);
  EXPECT_TRUE(g_last_violation.empty());
}

TEST_F(CoreSyncTest, CondVarWaitReplaysHeldBookkeeping) {
  csync::Mutex mu(csync::Rank::kSched, "sched.worker");
  csync::CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    csync::LockGuard lock(mu);
    ready = true;
    cv.notify_all();
  });
  {
    csync::UniqueLock lock(mu);
    while (!ready) cv.wait(lock);
    EXPECT_EQ(csync::held_lock_count(), 1u);  // re-acquired and re-recorded
  }
  waker.join();
  EXPECT_EQ(csync::held_lock_count(), 0u);
  EXPECT_TRUE(g_last_violation.empty());
}

TEST_F(CoreSyncTest, CondVarWaitForTimesOutAndStillOwnsLock) {
  csync::Mutex mu(csync::Rank::kSched, "sched.timers");
  csync::CondVar cv;
  csync::UniqueLock lock(mu);
  const auto status = cv.wait_for(lock, std::chrono::milliseconds(1));
  EXPECT_EQ(status, std::cv_status::timeout);
  EXPECT_TRUE(lock.owns_lock());
  EXPECT_EQ(csync::held_lock_count(), 1u);
}

TEST_F(CoreSyncTest, HierarchyIsPerThread) {
  // A second thread holding a high-rank lock must not constrain this one.
  csync::Mutex queue(csync::Rank::kQueue, "util.queue");
  csync::Mutex net(csync::Rank::kNet, "net.pubsub");
  csync::LockGuard hold(queue);
  std::thread other([&] {
    csync::LockGuard lock(net);  // would be a violation on the first thread
    EXPECT_EQ(csync::held_lock_count(), 1u);
  });
  other.join();
  EXPECT_TRUE(g_last_violation.empty());
}

}  // namespace
