// Tests for the analysis layer: metric fetching, threshold+timeout pathology
// rules (offline and online — the Fig. 4 detection), the performance-pattern
// decision tree, and the Fig. 2 job evaluation report.

#include <gtest/gtest.h>

#include <cmath>

#include "lms/analysis/fetch.hpp"
#include "lms/lineproto/codec.hpp"
#include "lms/analysis/online.hpp"
#include "lms/analysis/patterns.hpp"
#include "lms/analysis/report.hpp"
#include "lms/analysis/rules.hpp"

namespace lms::analysis {
namespace {

using lineproto::make_point;
using util::kNanosPerMinute;
using util::kNanosPerSecond;

constexpr util::TimeNs kSec = kNanosPerSecond;
constexpr util::TimeNs kMin = kNanosPerMinute;

/// Write a series for host/job into the storage: value_fn(t_seconds).
void write_series(tsdb::Storage& storage, const std::string& measurement,
                  const std::string& field, const std::string& host, const std::string& job,
                  util::TimeNs t0, util::TimeNs t1, util::TimeNs step,
                  const std::function<double(double)>& value_fn) {
  std::vector<lineproto::Point> points;
  for (util::TimeNs t = t0; t < t1; t += step) {
    points.push_back(make_point(measurement, field, value_fn(util::ns_to_seconds(t - t0)), t,
                                {{"hostname", host}, {"jobid", job}}));
  }
  storage.write("lms", points, 0);
}

// ---------------------------------------------------------------- fetch

TEST(MetricSeriesTest, Statistics) {
  MetricSeries s;
  s.times = {1, 2, 3, 4};
  s.values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.29099, 1e-4);
  EXPECT_DOUBLE_EQ(s.fraction_below(2.5), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_above(3.5), 0.25);
  MetricSeries empty;
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.stddev(), 0.0);
}

TEST(FetcherTest, FetchFilteredAndWindowed) {
  tsdb::Storage storage;
  write_series(storage, "cpu", "user_percent", "h1", "1", 0, 100 * kSec, 10 * kSec,
               [](double) { return 50.0; });
  write_series(storage, "cpu", "user_percent", "h2", "1", 0, 100 * kSec, 10 * kSec,
               [](double) { return 90.0; });
  MetricFetcher fetcher(storage, "lms");
  auto s = fetcher.fetch_host({"cpu", "user_percent"}, "h1", "1", 0, 100 * kSec);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 10u);
  EXPECT_DOUBLE_EQ(s->mean(), 50.0);
  // Windowed fetch.
  s = fetcher.fetch_host({"cpu", "user_percent"}, "h1", "1", 0, 100 * kSec, 50 * kSec);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 2u);
  // Unknown host -> empty.
  s = fetcher.fetch_host({"cpu", "user_percent"}, "h9", "1", 0, 100 * kSec);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->empty());
  // Unknown database -> error.
  MetricFetcher bad(storage, "missing");
  EXPECT_FALSE(bad.fetch({"cpu", "user_percent"}, {}, 0, 100 * kSec).ok());
}

TEST(FetcherTest, HostsOfJob) {
  tsdb::Storage storage;
  write_series(storage, "cpu", "user_percent", "h1", "1", 0, 10 * kSec, kSec,
               [](double) { return 1.0; });
  write_series(storage, "cpu", "user_percent", "h2", "1", 0, 10 * kSec, kSec,
               [](double) { return 1.0; });
  write_series(storage, "cpu", "user_percent", "h3", "2", 0, 10 * kSec, kSec,
               [](double) { return 1.0; });
  MetricFetcher fetcher(storage, "lms");
  EXPECT_EQ(fetcher.hosts_of_job({"cpu", "user_percent"}, "1"),
            (std::vector<std::string>{"h1", "h2"}));
}

// ---------------------------------------------------------------- rules

/// The Fig. 4 scenario: compute 20 min, break 12 min, compute 20 min.
void write_fig4(tsdb::Storage& storage, const std::string& host, util::TimeNs break_start,
                util::TimeNs break_len) {
  const util::TimeNs end = 52 * kMin;
  auto in_break = [&](double ts) {
    const util::TimeNs t = util::seconds_to_ns(ts);
    return t >= break_start && t < break_start + break_len;
  };
  write_series(storage, "likwid_mem_dp", "dp_mflop_per_s", host, "1", 0, end, 10 * kSec,
               [&](double t) { return in_break(t) ? 5.0 : 2000.0; });
  write_series(storage, "likwid_mem_dp", "memory_bandwidth_mbytes_per_s", host, "1", 0, end,
               10 * kSec, [&](double t) { return in_break(t) ? 20.0 : 8000.0; });
}

TEST(RuleEngineTest, DetectsFig4ComputeBreak) {
  tsdb::Storage storage;
  write_fig4(storage, "h1", 20 * kMin, 12 * kMin);
  MetricFetcher fetcher(storage, "lms");
  RuleEngine engine(fetcher);
  for (auto& r : builtin_rules()) engine.add_rule(std::move(r));

  const auto findings = engine.evaluate_host("h1", "1", 0, 52 * kMin);
  ASSERT_EQ(findings.size(), 1u) << (findings.empty() ? "" : findings[0].to_string());
  const Finding& f = findings[0];
  EXPECT_EQ(f.rule, "compute_break");
  EXPECT_EQ(f.severity, Severity::kCritical);
  EXPECT_EQ(f.hostname, "h1");
  EXPECT_EQ(f.job_id, "1");
  // The detected window matches the injected break (within one resolution).
  EXPECT_NEAR(static_cast<double>(f.start), static_cast<double>(20 * kMin),
              static_cast<double>(30 * kSec));
  EXPECT_NEAR(static_cast<double>(f.duration()), static_cast<double>(12 * kMin),
              static_cast<double>(60 * kSec));
}

TEST(RuleEngineTest, ShortDipDoesNotFire) {
  tsdb::Storage storage;
  write_fig4(storage, "h1", 20 * kMin, 5 * kMin);  // below the 10-min timeout
  MetricFetcher fetcher(storage, "lms");
  RuleEngine engine(fetcher);
  for (auto& r : builtin_rules()) engine.add_rule(std::move(r));
  EXPECT_TRUE(engine.evaluate_host("h1", "1", 0, 52 * kMin).empty());
}

TEST(RuleEngineTest, SingleConditionViolationDoesNotFire) {
  // FP rate drops but bandwidth stays high (e.g. data movement phase):
  // the conjunction must not fire.
  tsdb::Storage storage;
  const util::TimeNs end = 52 * kMin;
  write_series(storage, "likwid_mem_dp", "dp_mflop_per_s", "h1", "1", 0, end, 10 * kSec,
               [](double t) { return t > 1200 && t < 2400 ? 5.0 : 2000.0; });
  write_series(storage, "likwid_mem_dp", "memory_bandwidth_mbytes_per_s", "h1", "1", 0, end,
               10 * kSec, [](double) { return 8000.0; });
  MetricFetcher fetcher(storage, "lms");
  RuleEngine engine(fetcher);
  for (auto& r : builtin_rules()) engine.add_rule(std::move(r));
  EXPECT_TRUE(engine.evaluate_host("h1", "1", 0, end).empty());
}

TEST(RuleEngineTest, MemoryExceededFires) {
  tsdb::Storage storage;
  write_series(storage, "memory", "used_percent", "h1", "1", 0, 10 * kMin, 10 * kSec,
               [](double t) { return t > 120 ? 97.0 : 50.0; });
  MetricFetcher fetcher(storage, "lms");
  RuleEngine engine(fetcher);
  for (auto& r : builtin_rules()) engine.add_rule(std::move(r));
  const auto findings = engine.evaluate_host("h1", "1", 0, 10 * kMin);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "memory_exceeded");
}

TEST(RuleEngineTest, EvaluateJobSortsAcrossHosts) {
  tsdb::Storage storage;
  write_fig4(storage, "h1", 20 * kMin, 12 * kMin);
  write_fig4(storage, "h2", 15 * kMin, 15 * kMin);
  MetricFetcher fetcher(storage, "lms");
  RuleEngine engine(fetcher);
  for (auto& r : builtin_rules()) engine.add_rule(std::move(r));
  const auto findings = engine.evaluate_job({"h1", "h2"}, "1", 0, 52 * kMin);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].hostname, "h2");  // earlier break first
  EXPECT_EQ(findings[1].hostname, "h1");
}

TEST(RuleEngineTest, NoDataNoFinding) {
  tsdb::Storage storage;
  storage.database("lms");
  MetricFetcher fetcher(storage, "lms");
  RuleEngine engine(fetcher);
  for (auto& r : builtin_rules()) engine.add_rule(std::move(r));
  EXPECT_TRUE(engine.evaluate_host("h1", "1", 0, 52 * kMin).empty());
}

// ---------------------------------------------------------------- online

Rule quick_rule() {
  Rule r;
  r.name = "quick_break";
  r.description = "test rule";
  r.conditions.push_back(
      Condition{{"likwid_mem_dp", "dp_mflop_per_s"}, ThresholdOp::kBelow, 100.0});
  r.conditions.push_back(Condition{
      {"likwid_mem_dp", "memory_bandwidth_mbytes_per_s"}, ThresholdOp::kBelow, 500.0});
  r.min_duration = 60 * kSec;
  r.resolution = 10 * kSec;
  r.severity = Severity::kCritical;
  return r;
}

lineproto::Point hpm_point(const std::string& host, double flops, double bw, util::TimeNs t) {
  lineproto::Point p;
  p.measurement = "likwid_mem_dp";
  p.set_tag("hostname", host);
  p.set_tag("jobid", "5");
  p.add_field("dp_mflop_per_s", flops);
  p.add_field("memory_bandwidth_mbytes_per_s", bw);
  p.timestamp = t;
  p.normalize();
  return p;
}

TEST(OnlineEngineTest, FiresAfterMinDuration) {
  OnlineRuleEngine engine({quick_rule()});
  util::TimeNs t = 0;
  // Healthy phase.
  for (int i = 0; i < 5; ++i) {
    engine.observe(hpm_point("h1", 2000, 8000, t));
    t += 10 * kSec;
  }
  EXPECT_TRUE(engine.take_findings().empty());
  // Violation persists: fires once min_duration is covered.
  std::vector<Finding> fired;
  for (int i = 0; i < 8; ++i) {
    engine.observe(hpm_point("h1", 5, 20, t));
    t += 10 * kSec;
    auto f = engine.take_findings();
    fired.insert(fired.end(), f.begin(), f.end());
  }
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, "quick_break");
  EXPECT_EQ(fired[0].hostname, "h1");
  EXPECT_EQ(fired[0].job_id, "5");
  EXPECT_GE(fired[0].duration(), 60 * kSec);
  // Ongoing violation does not re-fire but is visible as active.
  engine.observe(hpm_point("h1", 5, 20, t));
  EXPECT_TRUE(engine.take_findings().empty());
  EXPECT_EQ(engine.active().size(), 1u);
}

TEST(OnlineEngineTest, RecoveryResetsState) {
  OnlineRuleEngine engine({quick_rule()});
  util::TimeNs t = 0;
  // 40 s violation, then recovery, then 40 s violation: never fires.
  for (int phase = 0; phase < 3; ++phase) {
    const bool bad = phase != 1;
    for (int i = 0; i < 4; ++i) {
      engine.observe(hpm_point("h1", bad ? 5 : 2000, bad ? 20 : 8000, t));
      t += 10 * kSec;
    }
  }
  EXPECT_TRUE(engine.take_findings().empty());
  EXPECT_TRUE(engine.active().empty());
}

TEST(OnlineEngineTest, PartialViolationDoesNotFire) {
  OnlineRuleEngine engine({quick_rule()});
  util::TimeNs t = 0;
  for (int i = 0; i < 10; ++i) {
    engine.observe(hpm_point("h1", 5, 8000, t));  // only FP rate low
    t += 10 * kSec;
  }
  EXPECT_TRUE(engine.take_findings().empty());
}

TEST(OnlineEngineTest, TracksHostsIndependently) {
  OnlineRuleEngine engine({quick_rule()});
  util::TimeNs t = 0;
  for (int i = 0; i < 8; ++i) {
    engine.observe(hpm_point("h1", 5, 20, t));      // broken
    engine.observe(hpm_point("h2", 2000, 8000, t)); // healthy
    t += 10 * kSec;
  }
  const auto fired = engine.take_findings();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].hostname, "h1");
}

TEST(OnlineEngineTest, DeallocationResetsHostState) {
  OnlineRuleEngine engine({quick_rule()});
  util::TimeNs t = 0;
  // 40 s of violation while allocated to job 5...
  for (int i = 0; i < 4; ++i) {
    engine.observe(hpm_point("h1", 5, 20, t));
    t += 10 * kSec;
  }
  // ...then the job ends: points arrive without a jobid tag. The host keeps
  // looking "broken" (it idles) but must not be attributed to job 5.
  for (int i = 0; i < 10; ++i) {
    lineproto::Point p = hpm_point("h1", 5, 20, t);
    p.tags.erase(std::remove_if(p.tags.begin(), p.tags.end(),
                                [](const auto& kv) { return kv.first == "jobid"; }),
                 p.tags.end());
    engine.observe(p);
    t += 10 * kSec;
  }
  EXPECT_TRUE(engine.take_findings().empty());
  EXPECT_TRUE(engine.active().empty());
}

TEST(OnlineEngineTest, NewJobOnHostResetsState) {
  OnlineRuleEngine engine({quick_rule()});
  util::TimeNs t = 0;
  // Job 5 violates for 50 s (not yet fired)...
  for (int i = 0; i < 5; ++i) {
    engine.observe(hpm_point("h1", 5, 20, t));
    t += 10 * kSec;
  }
  // ...then job 6 takes the node and also starts out below thresholds
  // (startup); the violation clock must restart.
  lineproto::Point p = hpm_point("h1", 5, 20, t);
  p.set_tag("jobid", "6");
  p.normalize();
  engine.observe(p);
  t += 10 * kSec;
  EXPECT_TRUE(engine.take_findings().empty());
  // Five more bad samples under job 6: now 60 s under job 6 -> fires for 6.
  for (int i = 0; i < 6; ++i) {
    lineproto::Point q = hpm_point("h1", 5, 20, t);
    q.set_tag("jobid", "6");
    q.normalize();
    engine.observe(q);
    t += 10 * kSec;
  }
  const auto fired = engine.take_findings();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].job_id, "6");
}

TEST(OnlineEngineTest, ObserveLinesParsesBatch) {
  OnlineRuleEngine engine({quick_rule()});
  std::string batch;
  util::TimeNs t = 0;
  for (int i = 0; i < 8; ++i) {
    batch += lineproto::serialize(hpm_point("h1", 5, 20, t)) + "\n";
    t += 10 * kSec;
  }
  engine.observe_lines(batch);
  EXPECT_EQ(engine.take_findings().size(), 1u);
}

// ---------------------------------------------------------------- patterns

JobSignature healthy_signature() {
  JobSignature s;
  s.cpu_load = 0.95;
  s.ipc = 2.0;
  s.flops_dp_fraction = 0.3;
  s.mem_bw_fraction = 0.3;
  s.vectorization_ratio = 0.6;
  s.branch_miss_ratio = 0.01;
  s.load_imbalance_cv = 0.05;
  s.nodes = 4;
  return s;
}

TEST(DecisionTreeTest, ClassifiesCanonicalSignatures) {
  const DecisionTree& tree = DecisionTree::default_tree();

  JobSignature idle = healthy_signature();
  idle.cpu_load = 0.02;
  EXPECT_EQ(tree.classify(idle).pattern, Pattern::kIdle);

  JobSignature bw = healthy_signature();
  bw.mem_bw_fraction = 0.85;
  EXPECT_EQ(tree.classify(bw).pattern, Pattern::kBandwidthSaturation);

  JobSignature compute = healthy_signature();
  compute.flops_dp_fraction = 0.7;
  EXPECT_EQ(tree.classify(compute).pattern, Pattern::kComputeBound);

  JobSignature imbalanced = healthy_signature();
  imbalanced.load_imbalance_cv = 0.6;
  EXPECT_EQ(tree.classify(imbalanced).pattern, Pattern::kLoadImbalance);

  JobSignature latency = healthy_signature();
  latency.ipc = 0.2;
  latency.branch_miss_ratio = 0.01;
  EXPECT_EQ(tree.classify(latency).pattern, Pattern::kMemoryLatencyBound);

  JobSignature branchy = healthy_signature();
  branchy.ipc = 0.3;
  branchy.branch_miss_ratio = 0.09;
  EXPECT_EQ(tree.classify(branchy).pattern, Pattern::kBranchMispredict);

  JobSignature scalar = healthy_signature();
  scalar.vectorization_ratio = 0.05;
  EXPECT_EQ(tree.classify(scalar).pattern, Pattern::kScalarCode);

  JobSignature overhead = healthy_signature();
  overhead.flops_dp_fraction = 0.01;
  EXPECT_EQ(tree.classify(overhead).pattern, Pattern::kInstructionOverhead);

  EXPECT_EQ(tree.classify(healthy_signature()).pattern, Pattern::kBalanced);
}

TEST(DecisionTreeTest, PathIsEvidence) {
  const auto c = DecisionTree::default_tree().classify(healthy_signature());
  ASSERT_FALSE(c.path.empty());
  EXPECT_EQ(c.path.front().feature, "cpu_load");
  EXPECT_TRUE(c.path.front().went_high);
  for (const auto& step : c.path) {
    EXPECT_FALSE(step.to_string().empty());
  }
  EXPECT_GE(c.optimization_potential, 0.0);
  EXPECT_LE(c.optimization_potential, 1.0);
}

TEST(DecisionTreeTest, EveryPatternHasNameAndRecommendation) {
  for (const Pattern p :
       {Pattern::kIdle, Pattern::kBandwidthSaturation, Pattern::kComputeBound,
        Pattern::kLoadImbalance, Pattern::kMemoryLatencyBound, Pattern::kBranchMispredict,
        Pattern::kInstructionOverhead, Pattern::kScalarCode, Pattern::kBalanced}) {
    EXPECT_FALSE(pattern_name(p).empty());
    EXPECT_FALSE(pattern_recommendation(p).empty());
  }
}

TEST(SignatureTest, BuiltFromStoredMetrics) {
  tsdb::Storage storage;
  const util::TimeNs end = 10 * kMin;
  for (const std::string host : {"h1", "h2"}) {
    const double flops = host == "h1" ? 20000.0 : 10000.0;  // imbalanced
    write_series(storage, "cpu", "user_percent", host, "1", 0, end, 10 * kSec,
                 [](double) { return 80.0; });
    write_series(storage, "likwid_mem_dp", "cpi", host, "1", 0, end, 10 * kSec,
                 [](double) { return 0.5; });
    write_series(storage, "likwid_mem_dp", "dp_mflop_per_s", host, "1", 0, end, 10 * kSec,
                 [flops](double) { return flops; });
    write_series(storage, "likwid_mem_dp", "memory_bandwidth_mbytes_per_s", host, "1", 0, end,
                 10 * kSec, [](double) { return 20000.0; });
    write_series(storage, "likwid_flops_dp", "vectorization_ratio", host, "1", 0, end,
                 10 * kSec, [](double) { return 70.0; });
    write_series(storage, "likwid_branch", "branch_misprediction_ratio", host, "1", 0, end,
                 10 * kSec, [](double) { return 0.02; });
    write_series(storage, "memory", "used_percent", host, "1", 0, end, 10 * kSec,
                 [](double) { return 40.0; });
  }
  MetricFetcher fetcher(storage, "lms");
  const JobSignature sig =
      signature_from_db(fetcher, {"h1", "h2"}, "1", 0, end, hpm::simx86());
  EXPECT_NEAR(sig.cpu_load, 0.8, 1e-6);
  EXPECT_NEAR(sig.ipc, 2.0, 1e-6);
  EXPECT_NEAR(sig.vectorization_ratio, 0.7, 1e-6);
  EXPECT_NEAR(sig.branch_miss_ratio, 0.02, 1e-6);
  EXPECT_NEAR(sig.mem_used_fraction, 0.4, 1e-6);
  EXPECT_EQ(sig.nodes, 2);
  // 15 GFLOP/s mean vs 2-socket peak; imbalance CV = std/mean of {20,10} GF.
  const double peak = hpm::simx86().peak_dp_flops_per_core * hpm::simx86().total_cores();
  EXPECT_NEAR(sig.flops_dp_fraction, 15e9 / peak, 1e-6);
  EXPECT_NEAR(sig.load_imbalance_cv, std::sqrt(2.0) * 5.0 / 15.0, 1e-6);
}

// ---------------------------------------------------------------- report

TEST(ReportTest, Fig2TablePerNodeColumns) {
  tsdb::Storage storage;
  const util::TimeNs end = 20 * kMin;
  for (const std::string host : {"h1", "h2", "h3", "h4"}) {
    const bool idle = host == "h3";  // one pathological node
    write_series(storage, "cpu", "user_percent", host, "1", 0, end, 10 * kSec,
                 [idle](double) { return idle ? 1.0 : 90.0; });
    write_series(storage, "likwid_mem_dp", "ipc", host, "1", 0, end, 10 * kSec,
                 [idle](double) { return idle ? 0.05 : 1.8; });
    write_series(storage, "likwid_mem_dp", "dp_mflop_per_s", host, "1", 0, end, 10 * kSec,
                 [idle](double) { return idle ? 1.0 : 5000.0; });
    write_series(storage, "memory", "used_percent", host, "1", 0, end, 10 * kSec,
                 [](double) { return 50.0; });
  }
  MetricFetcher fetcher(storage, "lms");
  JobReporter reporter(fetcher, hpm::simx86());
  const JobEvaluation eval = reporter.evaluate("1", {"h1", "h2", "h3", "h4"}, 0, end);

  ASSERT_EQ(eval.hosts.size(), 4u);
  ASSERT_FALSE(eval.rows.empty());
  // Row 0: CPU load. h3 is critical; the row verdict is the worst cell.
  const ReportRow& cpu = eval.rows[0];
  EXPECT_EQ(cpu.check.label, "CPU load");
  ASSERT_EQ(cpu.cells.size(), 4u);
  EXPECT_EQ(cpu.cells[0].verdict, Verdict::kOk);
  EXPECT_EQ(cpu.cells[2].verdict, Verdict::kCritical);
  EXPECT_EQ(cpu.overall, Verdict::kCritical);
  // Rows without data say so.
  bool found_nodata = false;
  for (const auto& row : eval.rows) {
    if (row.check.label == "Network I/O") {
      EXPECT_EQ(row.overall, Verdict::kNoData);
      found_nodata = true;
    }
  }
  EXPECT_TRUE(found_nodata);

  // Text rendering contains the node columns and the pattern line.
  const std::string text = render_text(eval);
  EXPECT_NE(text.find("h1"), std::string::npos);
  EXPECT_NE(text.find("h4"), std::string::npos);
  EXPECT_NE(text.find("CPU load"), std::string::npos);
  EXPECT_NE(text.find("pattern:"), std::string::npos);

  // JSON rendering is valid and mirrors the table.
  const json::Value j = to_json(eval);
  EXPECT_EQ(j["jobid"].as_string(), "1");
  EXPECT_EQ(j["hosts"].get_array().size(), 4u);
  EXPECT_EQ(j["rows"][0]["check"].as_string(), "CPU load");
  EXPECT_EQ(j["rows"][0]["cells"].get_array().size(), 4u);
  EXPECT_EQ(j["rows"][0]["cells"][2]["verdict"].as_string(), "CRIT");
  EXPECT_TRUE(j["classification"]["pattern"].is_string());
}

TEST(ReportTest, CustomChecksAndRules) {
  tsdb::Storage storage;
  write_series(storage, "gpu", "util", "h1", "1", 0, 10 * kMin, 10 * kSec,
               [](double) { return 3.0; });
  MetricFetcher fetcher(storage, "lms");
  JobReporter reporter(fetcher, hpm::simx86());
  reporter.set_checks({{"GPU util", "%", {"gpu", "util"}, CheckDirection::kLowIsBad, 50, 10}});
  reporter.set_rules({});
  const JobEvaluation eval = reporter.evaluate("1", {"h1"}, 0, 10 * kMin);
  ASSERT_EQ(eval.rows.size(), 1u);
  EXPECT_EQ(eval.rows[0].overall, Verdict::kCritical);
  EXPECT_TRUE(eval.findings.empty());
}

}  // namespace
}  // namespace lms::analysis
