// Release-configuration twin of core_sync_test: compiled with
// LMS_SYNC_RANK_CHECKS=0 (tests/CMakeLists.txt), proving the rank checker is
// compiled out entirely — wrappers carry no extra state and inverted
// acquisition orders go unreported (TSan remains the safety net there).

#include "lms/core/sync.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>
#include <string>

namespace csync = lms::core::sync;

namespace {

std::string* g_captured = nullptr;

void capturing_handler(const char* message) {
  if (g_captured != nullptr) *g_captured = message;
}

TEST(CoreSyncReleaseTest, CheckerIsCompiledOut) {
  EXPECT_FALSE(csync::kRankCheckingEnabled);
  // No rank/seq/name bookkeeping fields: the wrapper is exactly the native
  // primitive plus nothing. The contention profiler (-DLMS_LOCK_STATS=ON)
  // is an orthogonal switch that adds its own two fields; only assert the
  // exact layout when it is off too.
  if constexpr (!csync::kLockStatsEnabled) {
    EXPECT_EQ(sizeof(csync::Mutex), sizeof(std::mutex));
    EXPECT_EQ(sizeof(csync::SharedMutex), sizeof(std::shared_mutex));
  }
}

TEST(CoreSyncReleaseTest, InvertedOrderGoesUnreported) {
  std::string captured;
  g_captured = &captured;
  csync::set_rank_violation_handler(&capturing_handler);
  csync::Mutex net(csync::Rank::kNet, "net.pubsub");
  csync::Mutex queue(csync::Rank::kQueue, "util.queue");
  {
    csync::LockGuard inner(queue);
    csync::LockGuard outer(net);  // inversion: silently allowed in release
    EXPECT_EQ(csync::held_lock_count(), 0u);
  }
  EXPECT_TRUE(captured.empty());
  csync::set_rank_violation_handler(nullptr);
  g_captured = nullptr;
}

TEST(CoreSyncReleaseTest, PrimitivesStillLockAndUnlock) {
  csync::Mutex mu(csync::Rank::kNet, "m");
  csync::CondVar cv;
  {
    csync::UniqueLock lock(mu);
    EXPECT_EQ(cv.wait_for(lock, std::chrono::milliseconds(1)), std::cv_status::timeout);
    EXPECT_TRUE(lock.owns_lock());
  }
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
  csync::SharedMutex sm(csync::Rank::kTsdbShard, "s", 0);
  {
    csync::SharedLockGuard r1(sm);
    EXPECT_TRUE(sm.try_lock_shared());
    sm.unlock_shared();
  }
  { csync::WriteLockGuard w(sm); }
}

}  // namespace
