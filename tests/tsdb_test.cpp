// Tests for the time-series database: storage engine, query language,
// aggregators, fill modes, retention, and the InfluxDB-compatible HTTP API.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>

#include "lms/json/json.hpp"
#include "lms/lineproto/codec.hpp"
#include "lms/net/transport.hpp"
#include "lms/obs/trace.hpp"
#include "lms/obs/traceexport.hpp"
#include "lms/tsdb/http_api.hpp"
#include "lms/tsdb/ingest.hpp"
#include "lms/tsdb/query.hpp"
#include "lms/tsdb/storage.hpp"
#include "lms/tsdb/trace_assembly.hpp"
#include "lms/util/logging.hpp"
#include "lms/util/rng.hpp"
#include "lms/util/strings.hpp"

namespace lms::tsdb {
namespace {

using lineproto::Point;
using lineproto::make_point;
using util::kNanosPerSecond;

constexpr TimeNs kSec = kNanosPerSecond;

Point pt(std::string_view meas, std::string_view host, std::string_view field, double v,
         TimeNs t) {
  return make_point(meas, field, v, t, {{"hostname", std::string(host)}});
}

// ---------------------------------------------------------------- duration

TEST(Duration, ParseFormats) {
  EXPECT_EQ(*parse_duration("10s"), 10 * kSec);
  EXPECT_EQ(*parse_duration("5m"), 5 * util::kNanosPerMinute);
  EXPECT_EQ(*parse_duration("2h"), 2 * util::kNanosPerHour);
  EXPECT_EQ(*parse_duration("500ms"), 500 * util::kNanosPerMilli);
  EXPECT_EQ(*parse_duration("250us"), 250 * util::kNanosPerMicro);
  EXPECT_EQ(*parse_duration("7ns"), 7);
  EXPECT_EQ(*parse_duration("1d"), 24 * util::kNanosPerHour);
  EXPECT_EQ(*parse_duration("1h30m"), 90 * util::kNanosPerMinute);
  EXPECT_FALSE(parse_duration("").ok());
  EXPECT_FALSE(parse_duration("10x").ok());
  EXPECT_FALSE(parse_duration("s").ok());
}

TEST(Duration, FormatLiteral) {
  EXPECT_EQ(format_duration_literal(10 * kSec), "10s");
  EXPECT_EQ(format_duration_literal(600 * kSec), "10m");
  EXPECT_EQ(format_duration_literal(90 * kSec), "90s");
  EXPECT_EQ(format_duration_literal(1500), "1500ns");
}

// ---------------------------------------------------------------- storage

TEST(Storage, SeriesIdentityByTagSet) {
  Database db("test");
  db.write(pt("cpu", "h1", "v", 1, 10), 0);
  db.write(pt("cpu", "h1", "v", 2, 20), 0);
  db.write(pt("cpu", "h2", "v", 3, 10), 0);
  EXPECT_EQ(db.series_count(), 2u);
  EXPECT_EQ(db.sample_count(), 3u);
  EXPECT_EQ(db.measurements(), std::vector<std::string>{"cpu"});
  EXPECT_EQ(db.field_keys("cpu"), std::vector<std::string>{"v"});
  EXPECT_EQ(db.tag_keys("cpu"), std::vector<std::string>{"hostname"});
  EXPECT_EQ(db.tag_values("cpu", "hostname"), (std::vector<std::string>{"h1", "h2"}));
}

TEST(Storage, TagIndexIntersection) {
  Database db("test");
  Point p = make_point("m", "v", 1.0, 10,
                       {{"hostname", "h1"}, {"jobid", "7"}, {"user", "alice"}});
  db.write(p, 0);
  Point q = make_point("m", "v", 2.0, 20, {{"hostname", "h1"}, {"jobid", "8"}});
  db.write(q, 0);
  EXPECT_EQ(db.series_matching("m", {{"hostname", "h1"}}).size(), 2u);
  EXPECT_EQ(db.series_matching("m", {{"hostname", "h1"}, {"jobid", "7"}}).size(), 1u);
  EXPECT_EQ(db.series_matching("m", {{"jobid", "9"}}).size(), 0u);
  EXPECT_EQ(db.series_matching("m", {{"nokey", "x"}}).size(), 0u);
}

TEST(Storage, OutOfOrderWritesSorted) {
  Database db("test");
  db.write(pt("m", "h1", "v", 2, 200), 0);
  db.write(pt("m", "h1", "v", 1, 100), 0);
  db.write(pt("m", "h1", "v", 3, 300), 0);
  const auto series = db.series_of("m");
  ASSERT_EQ(series.size(), 1u);
  const Column& col = series[0]->columns.at("v");
  EXPECT_EQ(col.times(), (std::vector<TimeNs>{100, 200, 300}));
}

TEST(Storage, UnstampedPointsGetDefaultTime) {
  Database db("test");
  Point p = make_point("m", "v", 1.0, 0);
  db.write(p, 555);
  EXPECT_EQ(db.series_of("m")[0]->columns.at("v").times()[0], 555);
}

TEST(Storage, RetentionDropsOldAndEmptySeries) {
  Database db("test");
  db.write(pt("m", "h1", "v", 1, 100), 0);
  db.write(pt("m", "h1", "v", 2, 200), 0);
  db.write(pt("old", "h2", "v", 3, 50), 0);
  EXPECT_EQ(db.drop_before(150), 2u);
  EXPECT_EQ(db.sample_count(), 1u);
  EXPECT_EQ(db.series_count(), 1u);  // "old" series removed entirely
  EXPECT_TRUE(db.series_of("old").empty());
  EXPECT_TRUE(db.tag_values("old", "hostname").empty());
}

TEST(Storage, MultiDatabase) {
  Storage storage;
  storage.write("a", {pt("m", "h1", "v", 1, 10)}, 0);
  storage.write("b", {pt("m", "h1", "v", 2, 10)}, 0);
  EXPECT_EQ(storage.databases(), (std::vector<std::string>{"a", "b"}));
  EXPECT_NE(storage.find_database("a"), nullptr);
  EXPECT_EQ(storage.find_database("c"), nullptr);
}

// ---------------------------------------------------------------- parsing

TEST(QueryParse, SelectFull) {
  const auto stmt = parse_query(
      "SELECT mean(\"user\") AS u, max(idle) FROM cpu WHERE hostname='h1' AND jobid != 'x' "
      "AND time >= 100 AND time < 200 GROUP BY time(10s), hostname fill(0) "
      "ORDER BY time DESC LIMIT 5",
      0);
  ASSERT_TRUE(stmt.ok()) << stmt.message();
  const SelectStatement& s = stmt->select;
  ASSERT_EQ(s.fields.size(), 2u);
  EXPECT_EQ(s.fields[0].agg, Aggregator::kMean);
  EXPECT_EQ(s.fields[0].field, "user");
  EXPECT_EQ(s.fields[0].alias, "u");
  EXPECT_EQ(s.fields[1].alias, "max");
  EXPECT_EQ(s.measurement, "cpu");
  ASSERT_EQ(s.tag_conditions.size(), 2u);
  EXPECT_FALSE(s.tag_conditions[0].negated);
  EXPECT_TRUE(s.tag_conditions[1].negated);
  EXPECT_EQ(s.time_min, 100);
  EXPECT_EQ(s.time_max, 200);
  EXPECT_EQ(s.group_by_time, 10 * kSec);
  EXPECT_EQ(s.group_by_tags, std::vector<std::string>{"hostname"});
  EXPECT_EQ(s.fill, FillMode::kZero);
  EXPECT_TRUE(s.order_desc);
  EXPECT_EQ(s.limit, 5u);
}

TEST(QueryParse, NowArithmetic) {
  const TimeNs now = 1000 * kSec;
  const auto stmt = parse_query("SELECT v FROM m WHERE time >= now() - 10m", now);
  ASSERT_TRUE(stmt.ok()) << stmt.message();
  EXPECT_EQ(stmt->select.time_min, now - 10 * util::kNanosPerMinute);
}

TEST(QueryParse, PercentileAndDerivative) {
  auto stmt = parse_query("SELECT percentile(v, 99) FROM m", 0);
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select.fields[0].agg, Aggregator::kPercentile);
  EXPECT_DOUBLE_EQ(stmt->select.fields[0].param, 99.0);
  stmt = parse_query("SELECT derivative(v, 1s) FROM m", 0);
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select.fields[0].unit, kSec);
}

TEST(QueryParse, ShowStatements) {
  EXPECT_EQ(parse_query("SHOW DATABASES", 0)->kind, StatementKind::kShowDatabases);
  EXPECT_EQ(parse_query("SHOW MEASUREMENTS", 0)->kind, StatementKind::kShowMeasurements);
  auto stmt = parse_query("SHOW FIELD KEYS FROM cpu", 0);
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, StatementKind::kShowFieldKeys);
  EXPECT_EQ(stmt->measurement, "cpu");
  stmt = parse_query("SHOW TAG VALUES FROM cpu WITH KEY = \"hostname\"", 0);
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, StatementKind::kShowTagValues);
  EXPECT_EQ(stmt->with_key, "hostname");
}

TEST(QueryParse, Rejections) {
  EXPECT_FALSE(parse_query("", 0).ok());
  EXPECT_FALSE(parse_query("DELETE FROM m", 0).ok());
  EXPECT_FALSE(parse_query("SELECT FROM m", 0).ok());
  EXPECT_FALSE(parse_query("SELECT v", 0).ok());
  EXPECT_FALSE(parse_query("SELECT v FROM m WHERE tag = noquotes", 0).ok());
  EXPECT_FALSE(parse_query("SELECT bogus(v) FROM m", 0).ok());
  EXPECT_FALSE(parse_query("SELECT v FROM m GROUP BY time(0s)", 0).ok());
  EXPECT_FALSE(parse_query("SELECT v FROM m trailing", 0).ok());
  EXPECT_FALSE(parse_query("SELECT percentile(v) FROM m", 0).ok());
}

// ---------------------------------------------------------------- executor

class QueryExec : public ::testing::Test {
 protected:
  QueryExec() : db_("test") {
    // h1: v = 1,2,3,4 at t = 10s,20s,30s,40s; h2: v = 10 at 10s.
    for (int i = 1; i <= 4; ++i) {
      db_.write(pt("m", "h1", "v", i, i * 10 * kSec), 0);
    }
    db_.write(pt("m", "h2", "v", 10, 10 * kSec), 0);
  }

  QueryResult run(const std::string& q) {
    auto stmt = parse_query(q, 0);
    EXPECT_TRUE(stmt.ok()) << stmt.message();
    auto r = execute(db_, *stmt);
    EXPECT_TRUE(r.ok()) << r.message();
    return r.take();
  }

  Database db_;
};

TEST_F(QueryExec, RawSelect) {
  const auto r = run("SELECT v FROM m WHERE hostname='h1'");
  ASSERT_EQ(r.series.size(), 1u);
  EXPECT_EQ(r.series[0].name, "m");
  EXPECT_EQ(r.series[0].columns, (std::vector<std::string>{"time", "v"}));
  ASSERT_EQ(r.series[0].values.size(), 4u);
  EXPECT_EQ(r.series[0].values[0][0].as_int(), 10 * kSec);
  EXPECT_DOUBLE_EQ(r.series[0].values[3][1].as_double(), 4.0);
}

TEST_F(QueryExec, WholeRangeAggregates) {
  const auto r = run("SELECT mean(v), sum(v), min(v), max(v), count(v) FROM m WHERE "
                     "hostname='h1'");
  ASSERT_EQ(r.series.size(), 1u);
  ASSERT_EQ(r.series[0].values.size(), 1u);
  const auto& row = r.series[0].values[0];
  EXPECT_DOUBLE_EQ(row[1].as_double(), 2.5);
  EXPECT_DOUBLE_EQ(row[2].as_double(), 10.0);
  EXPECT_DOUBLE_EQ(row[3].as_double(), 1.0);
  EXPECT_DOUBLE_EQ(row[4].as_double(), 4.0);
  EXPECT_EQ(row[5].as_int(), 4);
}

TEST_F(QueryExec, StatsAggregates) {
  const auto r =
      run("SELECT stddev(v), median(v), spread(v), first(v), last(v) FROM m WHERE hostname='h1'");
  const auto& row = r.series[0].values[0];
  EXPECT_NEAR(row[1].as_double(), 1.29099, 1e-4);  // stddev of 1,2,3,4
  EXPECT_DOUBLE_EQ(row[2].as_double(), 2.5);
  EXPECT_DOUBLE_EQ(row[3].as_double(), 3.0);
  EXPECT_DOUBLE_EQ(row[4].as_double(), 1.0);
  EXPECT_DOUBLE_EQ(row[5].as_double(), 4.0);
}

TEST_F(QueryExec, Percentile) {
  const auto r = run("SELECT percentile(v, 50), percentile(v, 100) FROM m WHERE hostname='h1'");
  const auto& row = r.series[0].values[0];
  EXPECT_DOUBLE_EQ(row[1].as_double(), 2.0);  // nearest-rank 50% of {1,2,3,4}
  EXPECT_DOUBLE_EQ(row[2].as_double(), 4.0);
}

TEST_F(QueryExec, GroupByTimeWindows) {
  const auto r = run("SELECT mean(v) FROM m WHERE hostname='h1' AND time >= 0 AND time < 50s "
                     "GROUP BY time(20s)");
  ASSERT_EQ(r.series.size(), 1u);
  // Windows: [0,20)={1}, [20,40)={2,3}, [40,60)={4}.
  ASSERT_EQ(r.series[0].values.size(), 3u);
  EXPECT_EQ(r.series[0].values[0][0].as_int(), 0);
  EXPECT_DOUBLE_EQ(r.series[0].values[0][1].as_double(), 1.0);
  EXPECT_EQ(r.series[0].values[1][0].as_int(), 20 * kSec);
  EXPECT_DOUBLE_EQ(r.series[0].values[1][1].as_double(), 2.5);
  EXPECT_DOUBLE_EQ(r.series[0].values[2][1].as_double(), 4.0);
}

TEST_F(QueryExec, GroupByTag) {
  const auto r = run("SELECT mean(v) FROM m GROUP BY hostname");
  ASSERT_EQ(r.series.size(), 2u);
  // Ordered by tag value: h1 then h2.
  EXPECT_EQ(r.series[0].tags, (std::vector<lineproto::Tag>{{"hostname", "h1"}}));
  EXPECT_DOUBLE_EQ(r.series[0].values[0][1].as_double(), 2.5);
  EXPECT_EQ(r.series[1].tags, (std::vector<lineproto::Tag>{{"hostname", "h2"}}));
  EXPECT_DOUBLE_EQ(r.series[1].values[0][1].as_double(), 10.0);
}

TEST_F(QueryExec, NegatedTagCondition) {
  const auto r = run("SELECT count(v) FROM m WHERE hostname != 'h2'");
  ASSERT_EQ(r.series.size(), 1u);
  EXPECT_EQ(r.series[0].values[0][1].as_int(), 4);
}

TEST_F(QueryExec, FillModes) {
  // h1 has no sample in [50,60) window; with bounds + fill the grid is full.
  auto r = run("SELECT mean(v) FROM m WHERE hostname='h1' AND time >= 0 AND time < 60s "
               "GROUP BY time(10s) fill(0)");
  ASSERT_EQ(r.series[0].values.size(), 6u);
  EXPECT_DOUBLE_EQ(r.series[0].values[0][1].as_double(), 0.0);  // [0,10) empty
  EXPECT_DOUBLE_EQ(r.series[0].values[5][1].as_double(), 0.0);  // [50,60) empty

  r = run("SELECT mean(v) FROM m WHERE hostname='h1' AND time >= 0 AND time < 60s "
          "GROUP BY time(10s) fill(previous)");
  EXPECT_DOUBLE_EQ(r.series[0].values[5][1].as_double(), 4.0);

  r = run("SELECT mean(v) FROM m WHERE hostname='h1' AND time >= 0 AND time < 60s "
          "GROUP BY time(10s) fill(null)");
  EXPECT_TRUE(is_null_cell(r.series[0].values[0][1]));

  // fill(none): empty windows dropped.
  r = run("SELECT mean(v) FROM m WHERE hostname='h1' AND time >= 0 AND time < 60s "
          "GROUP BY time(10s)");
  EXPECT_EQ(r.series[0].values.size(), 4u);
}

TEST_F(QueryExec, OrderDescAndLimit) {
  const auto r = run("SELECT v FROM m WHERE hostname='h1' ORDER BY time DESC LIMIT 2");
  ASSERT_EQ(r.series[0].values.size(), 2u);
  EXPECT_DOUBLE_EQ(r.series[0].values[0][1].as_double(), 4.0);
  EXPECT_DOUBLE_EQ(r.series[0].values[1][1].as_double(), 3.0);
}

TEST_F(QueryExec, Derivative) {
  // v goes 1,2,3,4 at 10s spacing -> derivative 0.1/s.
  const auto r = run("SELECT derivative(v, 1s) FROM m WHERE hostname='h1'");
  ASSERT_EQ(r.series[0].values.size(), 3u);
  for (const auto& row : r.series[0].values) {
    EXPECT_NEAR(row[1].as_double(), 0.1, 1e-12);
  }
}

TEST_F(QueryExec, RateClampsNegative) {
  Database db("t2");
  db.write(pt("c", "h", "v", 100, 10 * kSec), 0);
  db.write(pt("c", "h", "v", 50, 20 * kSec), 0);  // counter reset
  db.write(pt("c", "h", "v", 80, 30 * kSec), 0);
  auto stmt = parse_query("SELECT rate(v, 1s) FROM c", 0);
  auto r = execute(db, *stmt);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->series[0].values.size(), 2u);
  EXPECT_DOUBLE_EQ(r->series[0].values[0][1].as_double(), 0.0);  // clamped
  EXPECT_DOUBLE_EQ(r->series[0].values[1][1].as_double(), 3.0);
}

TEST_F(QueryExec, EmptyResultForUnknownMeasurement) {
  const auto r = run("SELECT v FROM nothere");
  EXPECT_TRUE(r.series.empty());
}

TEST_F(QueryExec, TimeEquality) {
  const auto r = run("SELECT v FROM m WHERE hostname='h1' AND time = 20s");
  ASSERT_EQ(r.series.size(), 1u);
  ASSERT_EQ(r.series[0].values.size(), 1u);
  EXPECT_DOUBLE_EQ(r.series[0].values[0][1].as_double(), 2.0);
}

TEST_F(QueryExec, TagGlobMatching) {
  db_.write(pt("m", "node17", "v", 7, 10 * kSec), 0);
  auto r = run("SELECT count(v) FROM m WHERE hostname =~ 'h*'");
  ASSERT_EQ(r.series.size(), 1u);
  EXPECT_EQ(r.series[0].values[0][1].as_int(), 5);  // h1 (4 samples) + h2 (1)
  r = run("SELECT count(v) FROM m WHERE hostname !~ 'h?'");
  EXPECT_EQ(r.series[0].values[0][1].as_int(), 1);  // only node17
  // Glob combined with an indexed equality.
  r = run("SELECT count(v) FROM m WHERE hostname =~ '*' AND hostname = 'h1'");
  EXPECT_EQ(r.series[0].values[0][1].as_int(), 4);
}

TEST_F(QueryExec, ShowSeries) {
  auto stmt = parse_query("SHOW SERIES FROM m", 0);
  ASSERT_TRUE(stmt.ok());
  auto r = execute(db_, *stmt);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->series.size(), 1u);
  ASSERT_EQ(r->series[0].values.size(), 2u);
  EXPECT_EQ(r->series[0].values[0][0].as_string(), "m,hostname=h1");
  EXPECT_EQ(r->series[0].values[1][0].as_string(), "m,hostname=h2");
  // Without FROM: all measurements.
  stmt = parse_query("SHOW SERIES", 0);
  ASSERT_TRUE(stmt.ok());
  r = execute(db_, *stmt);
  EXPECT_EQ(r->series[0].values.size(), 2u);
}

TEST_F(QueryExec, MeasurementGlob) {
  db_.write(pt("likwid_mem", "h1", "v", 7, 10 * kSec), 0);
  db_.write(pt("likwid_l2", "h1", "v", 8, 10 * kSec), 0);
  // Bare trailing star form.
  auto r = run("SELECT mean(v) FROM likwid_* ");
  ASSERT_EQ(r.series.size(), 2u);
  EXPECT_EQ(r.series[0].name, "likwid_l2");
  EXPECT_EQ(r.series[1].name, "likwid_mem");
  // Quoted arbitrary glob.
  r = run("SELECT mean(v) FROM \"likwid_m*\"");
  ASSERT_EQ(r.series.size(), 1u);
  EXPECT_EQ(r.series[0].name, "likwid_mem");
  // Glob with no match: empty result.
  r = run("SELECT v FROM zz_*");
  EXPECT_TRUE(r.series.empty());
}

TEST_F(QueryExec, StringFieldsSelectable) {
  db_.write(make_point("events", "text", std::string("job start"), 5 * kSec,
                       {{"jobid", "7"}}),
            0);
  const auto r = run("SELECT text FROM events WHERE jobid='7'");
  ASSERT_EQ(r.series.size(), 1u);
  EXPECT_EQ(r.series[0].values[0][1].as_string(), "job start");
}

// Property: windowed counts partition the total count.
class WindowPartition : public ::testing::TestWithParam<int> {};

TEST_P(WindowPartition, CountsSumToTotal) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  Database db("prop");
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    db.write(pt("m", "h1", "v", rng.normal(0, 1),
                rng.uniform_int(0, 1000) * kSec),
             0);
  }
  for (const TimeNs window : {7 * kSec, 10 * kSec, 33 * kSec, 100 * kSec}) {
    Statement stmt;
    stmt.select.fields.push_back(FieldExpr{Aggregator::kCount, "v", "count", 0, 0});
    stmt.select.measurement = "m";
    stmt.select.time_min = 0;
    stmt.select.time_max = 1001 * kSec;
    stmt.select.group_by_time = window;
    auto r = execute(db, stmt);
    ASSERT_TRUE(r.ok());
    std::int64_t total = 0;
    for (const auto& row : r->series[0].values) total += row[1].as_int();
    EXPECT_EQ(total, n) << "window " << window;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowPartition, ::testing::Range(1, 6));

// ---------------------------------------------------------------- engine+api

TEST(HttpApiTest, WriteQueryPingStats) {
  Storage storage;
  util::SimClock clock(1000 * kSec);
  HttpApi api(storage, clock);
  net::InprocNetwork net;
  net.bind("db", api.handler());
  net::InprocHttpClient client(net);

  // Write a batch.
  auto resp = client.post("inproc://db/write?db=lms",
                          "cpu,hostname=h1 user=42 " + std::to_string(990 * kSec) +
                              "\ncpu,hostname=h1 user=44 " + std::to_string(995 * kSec) + "\n",
                          "text/plain");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 204);
  EXPECT_EQ(api.points_written(), 2u);

  // Ping.
  EXPECT_EQ(client.get("inproc://db/ping")->status, 204);

  // Query through the API.
  resp = client.get("inproc://db/query?db=lms&q=" +
                    util::url_encode("SELECT mean(user) FROM cpu"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  auto body = json::parse(resp->body);
  ASSERT_TRUE(body.ok()) << resp->body;
  EXPECT_DOUBLE_EQ(
      (*body)["results"][0]["series"][0]["values"][0][1].as_double(), 43.0);

  // Unstamped write gets the clock's now.
  client.post("inproc://db/write?db=lms", "mem,hostname=h1 used=1", "text/plain");
  resp = client.get("inproc://db/query?db=lms&q=" + util::url_encode("SELECT used FROM mem"));
  body = json::parse(resp->body);
  EXPECT_EQ((*body)["results"][0]["series"][0]["values"][0][0].as_int(), 1000 * kSec);

  // Stats endpoint.
  resp = client.get("inproc://db/stats");
  body = json::parse(resp->body);
  EXPECT_EQ((*body)["points_written"].as_int(), 3);
}

TEST(HttpApiTest, ErrorsAreInfluxJson) {
  Storage storage;
  util::SimClock clock(0);
  HttpApi api(storage, clock);
  net::InprocNetwork net;
  net.bind("db", api.handler());
  net::InprocHttpClient client(net);

  auto resp = client.get("inproc://db/query?db=lms&q=" + util::url_encode("BOGUS"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 400);
  EXPECT_TRUE((*json::parse(resp->body))["error"].is_string());

  resp = client.get("inproc://db/query?db=lms");
  EXPECT_EQ(resp->status, 400);

  resp = client.post("inproc://db/write?db=lms", "totally broken", "text/plain");
  EXPECT_EQ(resp->status, 400);
  EXPECT_EQ(api.parse_errors(), 1u);
}

TEST(HttpApiTest, LenientWriteKeepsGoodLines) {
  Storage storage;
  util::SimClock clock(0);
  HttpApi api(storage, clock);
  net::InprocNetwork net;
  net.bind("db", api.handler());
  net::InprocHttpClient client(net);
  auto resp = client.post("inproc://db/write?db=lms", "cpu u=1\nbroken\ncpu u=2", "text/plain");
  EXPECT_EQ(resp->status, 204);  // good lines stored
  EXPECT_EQ(api.points_written(), 2u);
  EXPECT_EQ(api.parse_errors(), 1u);
}

TEST(HttpApiTest, RetentionEnforcement) {
  Storage storage;
  util::SimClock clock(1000 * kSec);
  HttpApi::Options opts;
  opts.retention = 100 * kSec;
  HttpApi api(storage, clock, opts);
  storage.write("lms", {pt("m", "h1", "v", 1, 800 * kSec), pt("m", "h1", "v", 2, 950 * kSec)},
                0);
  EXPECT_EQ(api.enforce_retention(), 1u);  // 800s is older than 1000-100
  EXPECT_EQ(storage.find_database("lms")->sample_count(), 1u);
}

TEST(HttpApiTest, DumpEndpointReturnsLineProtocol) {
  Storage storage;
  util::SimClock clock(0);
  HttpApi api(storage, clock);
  net::InprocNetwork net;
  net.bind("db", api.handler());
  net::InprocHttpClient client(net);
  client.post("inproc://db/write?db=lms", "cpu,hostname=h1 user=42 1000\n", "text/plain");
  auto resp = client.get("inproc://db/dump?db=lms");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "cpu,hostname=h1 user=42 1000\n");
  // The dump re-imports cleanly.
  EXPECT_TRUE(lineproto::parse(resp->body).ok());
  EXPECT_EQ(client.get("inproc://db/dump?db=missing")->status, 404);
}

TEST(EngineTest, ShowDatabasesAndMissingDb) {
  Storage storage;
  storage.write("alpha", {pt("m", "h", "v", 1, 10)}, 0);
  Engine engine(storage);
  auto r = engine.query("ignored", "SHOW DATABASES", 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->series[0].values[0][0].as_string(), "alpha");
  EXPECT_FALSE(engine.query("missing", "SELECT v FROM m", 0).ok());
}

TEST(InfluxJson, SerializesTagsAndNulls) {
  QueryResult qr;
  ResultSeries rs;
  rs.name = "m";
  rs.tags = {{"hostname", "h1"}};
  rs.columns = {"time", "mean"};
  rs.values.push_back({FieldValue(std::int64_t{10}), null_cell()});
  qr.series.push_back(rs);
  const auto parsed = json::parse(to_influx_json(qr));
  ASSERT_TRUE(parsed.ok());
  const auto& series = (*parsed)["results"][0]["series"][0];
  EXPECT_EQ(series["tags"]["hostname"].as_string(), "h1");
  EXPECT_TRUE(series["values"][0][1].is_null());
}

// ------------------------------------------------- sharding & snapshots

TEST(Storage, SnapshotProvidesStableView) {
  Storage storage;
  EXPECT_FALSE(storage.snapshot("nope"));
  storage.write("lms", {pt("cpu", "h1", "v", 1, 10), pt("cpu", "h2", "v", 2, 20)}, 0);
  ReadSnapshot snap = storage.snapshot("lms");
  ASSERT_TRUE(snap);
  EXPECT_EQ(snap->sample_count(), 2u);
  EXPECT_EQ(snap->series_count(), 2u);
  const auto series = snap->series_matching("cpu", {{"hostname", "h1"}});
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0]->columns.at("v").size(), 1u);
  snap.release();
  EXPECT_FALSE(snap);
}

TEST(Storage, ShardedDatabaseKeepsGlobalViewsSorted) {
  Database db("t", 8);
  EXPECT_EQ(db.shard_count(), 8u);
  for (int i = 0; i < 64; ++i) {
    db.write(pt("cpu", "h" + std::to_string(i), "v", 1, 10 + i), 0);
    db.write(pt("mem", "h" + std::to_string(i), "used", 1, 10 + i), 0);
  }
  EXPECT_EQ(db.series_count(), 128u);
  EXPECT_EQ(db.sample_count(), 128u);
  // Cross-shard merges stay sorted and duplicate-free.
  EXPECT_EQ(db.measurements(), (std::vector<std::string>{"cpu", "mem"}));
  EXPECT_EQ(db.tag_values("cpu", "hostname").size(), 64u);
  const auto hosts = db.tag_values("cpu", "hostname");
  EXPECT_TRUE(std::is_sorted(hosts.begin(), hosts.end()));
  EXPECT_EQ(db.field_keys("mem"), (std::vector<std::string>{"used"}));
  // Retention sweeps every stripe.
  EXPECT_EQ(db.drop_before(10 + 32), 64u);
  EXPECT_EQ(db.series_count(), 64u);
}

TEST(Storage, WriteBatchAppliesPrecisionScaleAndDefaultTime) {
  Storage storage;
  WriteBatch batch;
  batch.db = "lms";
  batch.default_time = 777;
  batch.timestamp_scale = kSec;  // precision=s
  batch.points = {pt("cpu", "h1", "v", 1, 5), pt("cpu", "h1", "v", 2, 0)};
  storage.write(batch);
  const ReadSnapshot snap = storage.snapshot("lms");
  ASSERT_TRUE(snap);
  const auto series = snap->series_of("cpu");
  ASSERT_EQ(series.size(), 1u);
  const auto& times = series[0]->columns.at("v").times();
  // 5s scaled to ns; the unstamped point gets default_time unscaled.
  EXPECT_EQ(times, (std::vector<TimeNs>{777, 5 * kSec}));
}

TEST(Storage, SingleStripeConfigStillWorks) {
  Storage storage(1);  // the pre-sharding global-lock layout
  storage.write("lms", {pt("cpu", "h1", "v", 1, 10), pt("cpu", "h2", "v", 2, 20)}, 0);
  EXPECT_EQ(storage.find_database("lms")->shard_count(), 1u);
  EXPECT_EQ(storage.totals().series, 2u);
  Engine engine(storage);
  auto r = engine.query("lms", "SELECT count(v) FROM cpu", 0);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->series.size(), 1u);
  EXPECT_EQ(r->series[0].values[0][1].as_int(), 2);
}

// Concurrent writers + queries + retention on one sharded database. Sized to
// finish quickly under tsan (which also runs this suite via ci/sanitize.sh);
// the point is the interleaving, not the volume.
TEST(Storage, ConcurrentWritersQueriesRetention) {
  Storage storage;
  storage.database("lms");  // pre-create so readers never miss the db
  Engine engine(storage);
  constexpr int kWriters = 4;
  constexpr int kPointsPerWriter = 400;
  std::atomic<bool> stop{false};
  std::atomic<int> queries_ok{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&storage, w] {
      for (int i = 0; i < kPointsPerWriter; ++i) {
        const TimeNs t = TimeNs(i + 1) * kSec;
        storage.write("lms",
                      {pt("cpu", "h" + std::to_string(w * 7 + i % 13), "v", i, t)}, 0);
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load()) {
      const ReadSnapshot snap = storage.snapshot("lms");
      ASSERT_TRUE(snap);
      // Sum over whatever is visible; must never crash or race.
      auto r = execute(snap, *parse_query("SELECT count(v) FROM cpu", 0));
      if (r.ok()) queries_ok.fetch_add(1);
      (void)snap->sample_count();
    }
  });
  std::thread sweeper([&] {
    while (!stop.load()) {
      storage.drop_before(50 * kSec);
      std::this_thread::yield();
    }
  });

  for (auto& t : writers) t.join();
  // Under load (parallel ctest, 1-core CI) the reader may not have won a
  // snapshot while writers ran; let it finish at least one uncontended query
  // before stopping so the queries_ok assertion is deterministic.
  while (queries_ok.load() == 0) std::this_thread::yield();
  stop.store(true);
  reader.join();
  sweeper.join();

  // Retention may have swept anything older than 50s; everything newer must
  // have survived all interleavings.
  storage.drop_before(50 * kSec);
  const ReadSnapshot snap = storage.snapshot("lms");
  ASSERT_TRUE(snap);
  std::size_t expect = 0;
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kPointsPerWriter; ++i) {
      if (TimeNs(i + 1) * kSec >= 50 * kSec) ++expect;
    }
  }
  EXPECT_EQ(snap->sample_count(), expect);
  EXPECT_GT(queries_ok.load(), 0);
}

// ------------------------------------------------- shared write parsing

TEST(IngestParse, PrecisionTable) {
  EXPECT_EQ(*parse_precision(""), 1);
  EXPECT_EQ(*parse_precision("ns"), 1);
  EXPECT_EQ(*parse_precision("u"), util::kNanosPerMicro);
  EXPECT_EQ(*parse_precision("us"), util::kNanosPerMicro);
  EXPECT_EQ(*parse_precision("ms"), util::kNanosPerMilli);
  EXPECT_EQ(*parse_precision("s"), kSec);
  EXPECT_EQ(*parse_precision("m"), util::kNanosPerMinute);
  EXPECT_EQ(*parse_precision("h"), util::kNanosPerHour);
  EXPECT_FALSE(parse_precision("fortnight").ok());
}

TEST(IngestParse, WriteRequestCarriesDbPrecisionAndErrors) {
  net::HttpRequest req =
      net::HttpRequest::post("/write", "cpu,hostname=h1 v=1 5\nbroken\n", "text/plain");
  req.query.set("db", "mydb");
  req.query.set("precision", "s");
  auto parsed = parse_write_request(req, "lms", 123);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->batch.db, "mydb");
  EXPECT_EQ(parsed->batch.timestamp_scale, kSec);
  EXPECT_EQ(parsed->batch.default_time, 123);
  EXPECT_EQ(parsed->batch.points.size(), 1u);
  EXPECT_EQ(parsed->errors.size(), 1u);

  net::HttpRequest bad = net::HttpRequest::post("/write", "nothing parses", "text/plain");
  EXPECT_FALSE(parse_write_request(bad, "lms", 0).ok());
  net::HttpRequest badp = net::HttpRequest::post("/write", "cpu v=1", "text/plain");
  badp.query.set("precision", "parsec");
  EXPECT_FALSE(parse_write_request(badp, "lms", 0).ok());
}

TEST(HttpApiTest, UnknownDatabase404WhenAutoCreateOff) {
  Storage storage;
  storage.database("lms");  // the one pre-created database
  util::SimClock clock(0);
  HttpApi::Options opts;
  opts.auto_create_dbs = false;
  HttpApi api(storage, clock, opts);
  net::InprocNetwork net;
  net.bind("db", api.handler());
  net::InprocHttpClient client(net);

  auto resp = client.post("inproc://db/write?db=ghost", "cpu v=1 10", "text/plain");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 404);
  EXPECT_EQ(resp->body, influx_error_json("database not found: \"ghost\""));
  EXPECT_EQ(storage.databases(), (std::vector<std::string>{"lms"}));

  EXPECT_EQ(client.post("inproc://db/write?db=lms", "cpu v=1 10", "text/plain")->status, 204);
  EXPECT_EQ(api.points_written(), 1u);
}

// ----------------------------------------------- query-engine introspection

TEST(QueryStatsTest, GroundTruthCountsAndExplainParity) {
  Storage storage;
  // Known shape: cpu has 3 series x 10 points, mem has 1 series x 5 points.
  std::vector<Point> points;
  for (const char* host : {"h1", "h2", "h3"}) {
    for (int i = 1; i <= 10; ++i) points.push_back(pt("cpu", host, "v", i, i * kSec));
  }
  for (int i = 1; i <= 5; ++i) points.push_back(pt("mem", "h1", "v", i, i * kSec));
  storage.write("lms", points, 0);
  Engine engine(storage);

  QueryStats stats;
  auto r = engine.query("lms", "SELECT mean(v) FROM cpu", 1000 * kSec, &stats);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->series.empty());
  EXPECT_EQ(stats.measurements_scanned, 1u);
  EXPECT_EQ(stats.series_scanned, 3u);
  EXPECT_EQ(stats.points_examined, 30u);
  EXPECT_GE(stats.shards_touched, 1u);
  EXPECT_LE(stats.shards_touched, 3u);

  // Tag filtering prunes via the index before any points are gathered.
  QueryStats filtered;
  r = engine.query("lms", "SELECT mean(v) FROM cpu WHERE hostname='h1'", 1000 * kSec,
                   &filtered);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(filtered.series_scanned, 1u);
  EXPECT_EQ(filtered.points_examined, 10u);
  EXPECT_EQ(filtered.shards_touched, 1u);

  // A measurement glob scans both measurements.
  QueryStats globbed;
  r = engine.query("lms", "SELECT mean(v) FROM \"*\"", 1000 * kSec, &globbed);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(globbed.measurements_scanned, 2u);
  EXPECT_EQ(globbed.series_scanned, 4u);
  EXPECT_EQ(globbed.points_examined, 35u);

  // EXPLAIN walks exactly the same series and counts exactly the same
  // points, but materializes nothing.
  QueryStats explained;
  r = engine.query("lms", "EXPLAIN SELECT mean(v) FROM cpu", 1000 * kSec, &explained);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->series.empty());
  EXPECT_EQ(explained.measurements_scanned, stats.measurements_scanned);
  EXPECT_EQ(explained.series_scanned, stats.series_scanned);
  EXPECT_EQ(explained.points_examined, stats.points_examined);
  EXPECT_EQ(explained.shards_touched, stats.shards_touched);
}

TEST(HttpApiTest, ExplainEndpointReturnsStatsNotRows) {
  Storage storage;
  util::SimClock clock(1000 * kSec);
  HttpApi api(storage, clock);
  net::InprocNetwork net;
  net.bind("db", api.handler());
  net::InprocHttpClient client(net);
  client.post("inproc://db/write?db=lms",
              "cpu,hostname=h1 v=1 " + std::to_string(990 * kSec) + "\ncpu,hostname=h2 v=2 " +
                  std::to_string(995 * kSec) + "\n",
              "text/plain");

  auto resp = client.get("inproc://db/query?db=lms&q=" +
                         util::url_encode("EXPLAIN SELECT mean(v) FROM cpu"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  auto body = json::parse(resp->body);
  ASSERT_TRUE(body.ok()) << resp->body;
  const json::Value& series = (*body)["results"][0]["series"][0];
  EXPECT_EQ(series["name"].as_string(), "explain");
  ASSERT_EQ(series["values"].get_array().size(), 1u);
  // columns: measurements_scanned, series_scanned, points_examined, shards.
  EXPECT_EQ(series["columns"][0].as_string(), "measurements_scanned");
  EXPECT_EQ(series["values"][0][0].as_int(), 1);
  EXPECT_EQ(series["values"][0][1].as_int(), 2);  // two cpu series
  EXPECT_EQ(series["values"][0][2].as_int(), 2);  // two points examined
  EXPECT_GE(series["values"][0][3].as_int(), 1);

  // Case-insensitive keyword; "explainx" is not EXPLAIN.
  resp = client.get("inproc://db/query?db=lms&q=" +
                    util::url_encode("explain SELECT mean(v) FROM cpu"));
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("\"explain\""), std::string::npos);
  resp = client.get("inproc://db/query?db=lms&q=" +
                    util::url_encode("explainx SELECT mean(v) FROM cpu"));
  EXPECT_EQ(resp->status, 400);
}

TEST(HttpApiTest, SlowQueryRingCapturesStatsAndEvicts) {
  Storage storage;
  util::SimClock clock(1000 * kSec);
  HttpApi::Options opts;
  opts.slow_query_threshold = 1;  // every real query is slower than 1ns
  opts.slow_query_capacity = 2;
  HttpApi api(storage, clock, opts);
  net::InprocNetwork net;
  net.bind("db", api.handler());
  net::InprocHttpClient client(net);
  client.post("inproc://db/write?db=lms", "cpu,hostname=h1 v=1 " + std::to_string(990 * kSec),
              "text/plain");

  for (const char* q : {"SELECT mean(v) FROM cpu", "SELECT max(v) FROM cpu",
                        "SELECT min(v) FROM cpu"}) {
    ASSERT_EQ(client.get("inproc://db/query?db=lms&q=" + util::url_encode(q))->status, 200);
  }

  // Capacity 2: the oldest entry was evicted; newest first.
  const auto ring = api.slow_query_ring();
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring[0].query, "SELECT min(v) FROM cpu");
  EXPECT_EQ(ring[1].query, "SELECT max(v) FROM cpu");
  EXPECT_EQ(ring[0].db, "lms");
  EXPECT_GE(ring[0].duration_ns, 1);
  EXPECT_EQ(ring[0].stats.series_scanned, 1u);
  EXPECT_EQ(ring[0].stats.points_examined, 1u);
  EXPECT_EQ(ring[0].wall_ns, 1000 * kSec);
  EXPECT_EQ(api.slow_queries(), 3u);

  auto resp = client.get("inproc://db/debug/slow_queries");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  auto body = json::parse(resp->body);
  ASSERT_TRUE(body.ok()) << resp->body;
  EXPECT_EQ((*body)["threshold_ns"].as_int(), 1);
  ASSERT_EQ((*body)["slow_queries"].get_array().size(), 2u);
  EXPECT_EQ((*body)["slow_queries"][0]["query"].as_string(), "SELECT min(v) FROM cpu");
  EXPECT_EQ((*body)["slow_queries"][0]["stats"]["points_examined"].as_int(), 1);
}

TEST(HttpApiTest, SlowQueryRingDisabledByZeroThreshold) {
  Storage storage;
  util::SimClock clock(0);
  HttpApi::Options opts;
  opts.slow_query_threshold = 0;
  HttpApi api(storage, clock, opts);
  net::InprocNetwork net;
  net.bind("db", api.handler());
  net::InprocHttpClient client(net);
  client.post("inproc://db/write?db=lms", "cpu v=1 10", "text/plain");
  ASSERT_EQ(client.get("inproc://db/query?db=lms&q=" +
                       util::url_encode("SELECT mean(v) FROM cpu"))
                ->status,
            200);
  EXPECT_TRUE(api.slow_query_ring().empty());
  EXPECT_EQ(api.slow_queries(), 0u);
}

TEST(HttpApiTest, DebugLogsServedWhenRingWired) {
  Storage storage;
  util::SimClock clock(0);
  util::LogRing ring(8);
  HttpApi::Options opts;
  opts.log_ring = &ring;
  HttpApi api(storage, clock, opts);
  net::InprocNetwork net;
  net.bind("db", api.handler());
  net::InprocHttpClient client(net);

  ring.sink()(util::LogLevel::kWarn, "tsdb", "compaction behind", 0xabcULL);
  auto resp = client.get("inproc://db/debug/logs");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  auto body = json::parse(resp->body);
  ASSERT_TRUE(body.ok()) << resp->body;
  ASSERT_EQ((*body)["entries"].get_array().size(), 1u);
  EXPECT_EQ((*body)["entries"][0]["message"].as_string(), "compaction behind");
  EXPECT_EQ((*body)["entries"][0]["trace_id"].as_string(), "0000000000000abc");

  // Filter by trace: a match, a non-match, and a malformed id.
  EXPECT_NE(client.get("inproc://db/debug/logs?trace=0000000000000abc")
                ->body.find("compaction behind"),
            std::string::npos);
  auto miss = client.get("inproc://db/debug/logs?trace=0000000000000fff");
  EXPECT_EQ((*json::parse(miss->body))["entries"].get_array().size(), 0u);
  EXPECT_EQ(client.get("inproc://db/debug/logs?trace=xyz")->status, 400);

  // No ring wired: the endpoint does not exist.
  HttpApi bare(storage, clock);
  net::InprocNetwork net2;
  net2.bind("db", bare.handler());
  net::InprocHttpClient client2(net2);
  EXPECT_EQ(client2.get("inproc://db/debug/logs")->status, 404);
}

// ------------------------------------------------------------ trace assembly

/// Store one exported span (as the TraceExporter would write it) directly.
void store_span(Storage& storage, std::uint64_t trace_id, std::uint64_t span_id,
                std::uint64_t parent, const char* name, TimeNs start, std::int64_t duration,
                bool ok = true, const char* note = "", const char* component = "test",
                const char* host = "h1") {
  obs::SpanRecord rec;
  rec.trace_id = trace_id;
  rec.span_id = span_id;
  rec.parent_span_id = parent;
  rec.name = name;
  rec.component = component;
  rec.start_wall_ns = start;
  rec.duration_ns = duration;
  rec.ok = ok;
  rec.note = note;
  storage.write("lms", {obs::span_to_point(rec, obs::kTraceMeasurement, host)}, 0);
}

TEST(TraceAssembly, BuildsOrderedTreeWithGapAnalysis) {
  Storage storage;
  constexpr std::uint64_t kTrace = 0xfeedULL;
  // root [1000, 1100); children c1 [1010, 1060) and c2 [1040, 1080) overlap:
  // merged coverage 70ns -> self 30ns; gaps 10ns (before c1) and 20ns (after
  // c2) -> largest 20ns.
  store_span(storage, kTrace, 1, 0, "root", 1000, 100);
  store_span(storage, kTrace, 3, 1, "late_child", 1040, 40);
  store_span(storage, kTrace, 2, 1, "early_child", 1010, 50, false, "deadline exceeded");
  store_span(storage, 0xbeefULL, 9, 0, "unrelated", 500, 10);

  const TraceTree tree = assemble_trace(storage.snapshot("lms"), kTrace);
  EXPECT_EQ(tree.trace_id, kTrace);
  EXPECT_EQ(tree.span_count, 3u);
  EXPECT_EQ(tree.malformed_spans, 0u);
  ASSERT_EQ(tree.roots.size(), 1u);
  const TraceNode& root = tree.roots[0];
  EXPECT_EQ(root.name, "root");
  EXPECT_FALSE(root.orphan);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].name, "early_child");  // sorted by start_ns
  EXPECT_EQ(root.children[1].name, "late_child");
  EXPECT_FALSE(root.children[0].ok);
  EXPECT_EQ(root.children[0].note, "deadline exceeded");
  EXPECT_EQ(root.self_ns, 30);
  EXPECT_EQ(root.largest_gap_ns, 20);
  // Leaves: self time is the whole span, no gaps.
  EXPECT_EQ(root.children[0].self_ns, 50);
  EXPECT_EQ(root.children[0].largest_gap_ns, 0);

  const std::string json_text = trace_tree_to_json(tree);
  EXPECT_NE(json_text.find("\"span_count\":3"), std::string::npos);
  EXPECT_NE(json_text.find("\"self_ns\":30"), std::string::npos);

  const std::string waterfall = trace_tree_to_waterfall(tree);
  EXPECT_NE(waterfall.find("3 spans"), std::string::npos);
  EXPECT_NE(waterfall.find("root (test@h1) 100ns self=30ns"), std::string::npos);
  EXPECT_NE(waterfall.find("ERROR [deadline exceeded]"), std::string::npos);
  EXPECT_NE(waterfall.find('#'), std::string::npos);
  // Children are indented one level below the root.
  EXPECT_NE(waterfall.find("|   early_child"), std::string::npos);
}

TEST(TraceAssembly, OrphansCyclesDuplicatesAndMalformedRecords) {
  Storage storage;
  constexpr std::uint64_t kTrace = 0xc0ffeeULL;
  // A span whose parent never got exported: shown as an orphan root.
  store_span(storage, kTrace, 5, 99, "orphaned", 2000, 10);
  // A parent cycle (malformed export): assembly must terminate and keep both.
  store_span(storage, kTrace, 6, 7, "cycle_a", 2100, 10);
  store_span(storage, kTrace, 7, 6, "cycle_b", 2200, 10);
  // A record that is not valid JSON, and one whose span field is not a string.
  Point bad = make_point(std::string(obs::kTraceMeasurement), "span", 123.0, 2300,
                         {{"trace_id", obs::trace_id_hex(kTrace)}, {"component", "test"}});
  storage.write("lms", {bad}, 0);
  Point garbled;
  garbled.measurement = std::string(obs::kTraceMeasurement);
  garbled.set_tag("trace_id", obs::trace_id_hex(kTrace));
  garbled.add_field("span", "this is not json");
  garbled.timestamp = 2400;
  garbled.normalize();
  storage.write("lms", {garbled}, 0);

  const TraceTree tree = assemble_trace(storage.snapshot("lms"), kTrace);
  EXPECT_EQ(tree.span_count, 3u);
  EXPECT_EQ(tree.malformed_spans, 2u);
  ASSERT_GE(tree.roots.size(), 2u);
  EXPECT_EQ(tree.roots[0].name, "orphaned");
  EXPECT_TRUE(tree.roots[0].orphan);
  // The cycle pair surfaced exactly once each (visited-set break).
  std::size_t total = 0;
  std::function<void(const TraceNode&)> count = [&](const TraceNode& n) {
    ++total;
    for (const auto& c : n.children) count(c);
  };
  for (const auto& r : tree.roots) count(r);
  EXPECT_EQ(total, 3u);
  EXPECT_NE(trace_tree_to_json(tree).find("\"malformed_spans\":2"), std::string::npos);
}

TEST(TraceAssembly, EmptyTraceAndMissingSnapshot) {
  Storage storage;
  storage.database("lms");
  const TraceTree empty = assemble_trace(storage.snapshot("lms"), 0x123ULL);
  EXPECT_EQ(empty.span_count, 0u);
  EXPECT_TRUE(empty.roots.empty());
  const TraceTree no_db = assemble_trace(storage.snapshot("ghost"), 0x123ULL);
  EXPECT_EQ(no_db.span_count, 0u);
  EXPECT_NE(trace_tree_to_waterfall(empty).find("0 spans"), std::string::npos);
}

TEST(HttpApiTest, DebugRuntimeEndpointServesContentionReport) {
  Storage storage;
  util::SimClock clock(1000 * kSec);
  HttpApi api(storage, clock);
  net::InprocNetwork net;
  net.bind("db", api.handler());
  net::InprocHttpClient client(net);

  auto resp = client.get("inproc://db/debug/runtime");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->headers.get_or("Content-Type", ""), "application/json");
  auto body = json::parse(resp->body);
  ASSERT_TRUE(body.ok()) << resp->body;
  EXPECT_TRUE((*body)["lock_stats"].is_object());
  EXPECT_TRUE((*body)["lock_stats"]["sites"].is_array());
  EXPECT_TRUE((*body)["queues"].is_array());
  EXPECT_TRUE((*body)["loops"].is_array());
  EXPECT_EQ((*body)["lock_stats"]["compiled"].as_bool(), core::sync::kLockStatsEnabled);
}

}  // namespace
}  // namespace lms::tsdb
