// Tests for the extension components: the stream aggregator (§III-B
// "aggregators"), the MPI tooling-interface profiler (§IV planned feature),
// continuous queries / downsampling, and the router's store-and-forward
// spool.

#include <gtest/gtest.h>

#include "lms/analysis/aggregator.hpp"
#include "lms/core/router.hpp"
#include "lms/lineproto/codec.hpp"
#include "lms/tsdb/continuous.hpp"
#include "lms/tsdb/http_api.hpp"
#include "lms/usermetric/mpi_profiler.hpp"
#include "lms/usermetric/omp_profiler.hpp"
#include "lms/analysis/recorder.hpp"
#include "lms/collector/agent.hpp"
#include "lms/tsdb/persist.hpp"
#include <fstream>

namespace lms {
namespace {

using util::kNanosPerMinute;
using util::kNanosPerSecond;

constexpr util::TimeNs kSec = kNanosPerSecond;
constexpr util::TimeNs kMin = kNanosPerMinute;

// ------------------------------------------------------------- aggregator

class AggregatorTest : public ::testing::Test {
 protected:
  AggregatorTest() : clock_(0), db_api_(storage_, clock_), client_(network_) {
    network_.bind("tsdb", db_api_.handler());
    core::MetricsRouter::Options opts;
    opts.db_url = "inproc://tsdb";
    router_ = std::make_unique<core::MetricsRouter>(client_, clock_, opts, &broker_);
  }

  void write_metric(const std::string& host, const std::string& job, double flops,
                    util::TimeNs t) {
    core::JobSignal signal;
    if (router_->find_job(job) == std::nullopt) {
      signal.job_id = job;
      signal.user = "u";
      signal.nodes = {"h1", "h2", "h3", "h4"};
      (void)router_->job_start(signal);
    }
    lineproto::Point p = lineproto::make_point("likwid_mem_dp", "dp_mflop_per_s", flops, t,
                                               {{"hostname", host}});
    (void)router_->write_lines(lineproto::serialize(p) + "\n");
  }

  tsdb::Storage storage_;
  util::SimClock clock_;
  net::InprocNetwork network_;
  tsdb::HttpApi db_api_;
  net::InprocHttpClient client_;
  net::PubSubBroker broker_;
  std::unique_ptr<core::MetricsRouter> router_;
};

TEST_F(AggregatorTest, EmitsJobLevelWindows) {
  analysis::StreamAggregator::Options opts;
  opts.window = kMin;
  opts.router_url = "inproc://tsdb";  // write straight to the DB for clarity
  analysis::StreamAggregator agg(broker_, client_, opts);

  // Four hosts reporting within the same 1-minute window.
  for (int h = 1; h <= 4; ++h) {
    write_metric("h" + std::to_string(h), "9", 1000.0 * h, 30 * kSec);
  }
  clock_.set(2 * kMin);
  EXPECT_EQ(agg.pump(clock_.now()), 1u);

  tsdb::Database* db = storage_.find_database("lms");
  const auto series = db->series_matching("likwid_mem_dp_job", {{"jobid", "9"}});
  ASSERT_EQ(series.size(), 1u);
  const auto& cols = series[0]->columns;
  EXPECT_DOUBLE_EQ(cols.at("dp_mflop_per_s_sum").values()[0].as_double(), 10000.0);
  EXPECT_DOUBLE_EQ(cols.at("dp_mflop_per_s_mean").values()[0].as_double(), 2500.0);
  EXPECT_DOUBLE_EQ(cols.at("dp_mflop_per_s_min").values()[0].as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(cols.at("dp_mflop_per_s_max").values()[0].as_double(), 4000.0);
  EXPECT_EQ(cols.at("dp_mflop_per_s_nodes").values()[0].as_int(), 4);
  // Window stamped at its end.
  EXPECT_EQ(cols.at("dp_mflop_per_s_sum").times()[0], kMin);
}

TEST_F(AggregatorTest, IncompleteWindowHeldUntilComplete) {
  analysis::StreamAggregator::Options opts;
  opts.window = kMin;
  opts.router_url = "inproc://tsdb";
  analysis::StreamAggregator agg(broker_, client_, opts);
  write_metric("h1", "9", 100.0, 30 * kSec);
  clock_.set(45 * kSec);  // window [0,60s) not over yet
  EXPECT_EQ(agg.pump(clock_.now()), 0u);
  clock_.set(61 * kSec);
  EXPECT_EQ(agg.pump(clock_.now()), 1u);
}

TEST_F(AggregatorTest, FlushForcesOpenWindows) {
  analysis::StreamAggregator::Options opts;
  opts.window = kMin;
  opts.router_url = "inproc://tsdb";
  analysis::StreamAggregator agg(broker_, client_, opts);
  write_metric("h1", "9", 100.0, 30 * kSec);
  clock_.set(40 * kSec);
  EXPECT_EQ(agg.flush(clock_.now()), 1u);
  EXPECT_EQ(agg.stats().points_emitted, 1u);
}

TEST_F(AggregatorTest, SkipsUntaggedAndOwnOutput) {
  analysis::StreamAggregator::Options opts;
  opts.window = kMin;
  opts.router_url = "inproc://tsdb";
  analysis::StreamAggregator agg(broker_, client_, opts);
  // No job tags: point from an unallocated host.
  lineproto::Point p =
      lineproto::make_point("cpu", "user_percent", 5.0, 10 * kSec, {{"hostname", "h9"}});
  (void)router_->write_lines(lineproto::serialize(p) + "\n");
  // An already-aggregated point must not be re-aggregated.
  lineproto::Point a = lineproto::make_point("cpu_job", "user_percent_mean", 5.0, 10 * kSec,
                                             {{"jobid", "9"}});
  (void)router_->write_lines(lineproto::serialize(a) + "\n");
  clock_.set(2 * kMin);
  EXPECT_EQ(agg.pump(clock_.now()), 0u);
}

TEST_F(AggregatorTest, MeasurementGlobFilter) {
  analysis::StreamAggregator::Options opts;
  opts.window = kMin;
  opts.router_url = "inproc://tsdb";
  opts.measurement_globs = {"likwid_*"};
  analysis::StreamAggregator agg(broker_, client_, opts);
  write_metric("h1", "9", 100.0, 30 * kSec);  // likwid_mem_dp: selected
  lineproto::Point p = lineproto::make_point("cpu", "user_percent", 5.0, 30 * kSec,
                                             {{"hostname", "h1"}});
  (void)router_->write_lines(lineproto::serialize(p) + "\n");  // cpu: filtered
  clock_.set(2 * kMin);
  EXPECT_EQ(agg.pump(clock_.now()), 1u);
  EXPECT_TRUE(storage_.find_database("lms")->series_of("cpu_job").empty());
}

// ------------------------------------------------------------ mpi profiler

struct UmCapture {
  net::InprocNetwork network;
  std::vector<lineproto::Point> points;
  UmCapture() {
    network.bind("router", [this](const net::HttpRequest& req) {
      auto pts = lineproto::parse_lenient(req.body, nullptr);
      points.insert(points.end(), pts.begin(), pts.end());
      return net::HttpResponse::no_content();
    });
  }
  const lineproto::FieldValue* field(const std::string& name) const {
    for (const auto& p : points) {
      if (const auto* f = p.field(name)) return f;
    }
    return nullptr;
  }
};

TEST(MpiProfilerTest, ReportsFractions) {
  UmCapture sink;
  util::SimClock clock(0);
  net::InprocHttpClient client(sink.network);
  usermetric::UserMetricClient::Options opts;
  opts.router_url = "inproc://router";
  usermetric::UserMetricClient um(client, clock, opts);
  usermetric::MpiProfiler prof(um, /*rank=*/3, /*interval=*/10 * kSec);

  // 10-second interval: 2 s in Allreduce (sync), 1 s in Send, 1 MB moved.
  prof.record(usermetric::MpiCall::kAllreduce, 1 * kSec, 2 * kSec, 512 * 1024);
  prof.record(usermetric::MpiCall::kSend, 5 * kSec, 1 * kSec, 512 * 1024);
  prof.report(10 * kSec);
  um.flush();

  ASSERT_NE(sink.field("mpi_time_fraction"), nullptr);
  // Interval started at first event (1 s) and ended at 10 s -> 9 s window.
  EXPECT_NEAR(sink.field("mpi_time_fraction")->as_double(), 3.0 / 9.0, 1e-9);
  EXPECT_NEAR(sink.field("mpi_sync_fraction")->as_double(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(sink.field("mpi_calls_per_sec")->as_double(), 2.0 / 9.0, 1e-9);
  EXPECT_NEAR(sink.field("mpi_bytes_per_sec")->as_double(), 1048576.0 / 9.0, 1e-6);
  // Rank tag attached.
  EXPECT_EQ(sink.points[0].tag("rank"), "3");
  EXPECT_EQ(prof.total_calls(), 2u);
  EXPECT_EQ(prof.total_mpi_time(), 3 * kSec);
}

TEST(MpiProfilerTest, AutoReportsAtInterval) {
  UmCapture sink;
  util::SimClock clock(0);
  net::InprocHttpClient client(sink.network);
  usermetric::UserMetricClient::Options opts;
  opts.router_url = "inproc://router";
  usermetric::UserMetricClient um(client, clock, opts);
  usermetric::MpiProfiler prof(um, 0, 10 * kSec);
  // Calls spanning 25 s: reports at >=10 s and >=20 s boundaries.
  for (int i = 0; i < 25; ++i) {
    prof.record(usermetric::MpiCall::kBarrier, i * kSec, kSec / 10);
  }
  um.flush();
  int reports = 0;
  for (const auto& p : sink.points) {
    if (p.field("mpi_time_fraction") != nullptr) ++reports;
  }
  EXPECT_EQ(reports, 2);
}

TEST(MpiProfilerTest, CallClassification) {
  using usermetric::MpiCall;
  EXPECT_TRUE(usermetric::mpi_call_is_synchronizing(MpiCall::kBarrier));
  EXPECT_TRUE(usermetric::mpi_call_is_synchronizing(MpiCall::kWait));
  EXPECT_TRUE(usermetric::mpi_call_is_synchronizing(MpiCall::kAllreduce));
  EXPECT_FALSE(usermetric::mpi_call_is_synchronizing(MpiCall::kIsend));
  EXPECT_FALSE(usermetric::mpi_call_is_synchronizing(MpiCall::kBcast));
  EXPECT_EQ(usermetric::mpi_call_name(MpiCall::kAllreduce), "MPI_Allreduce");
}

// ------------------------------------------------------------ omp profiler

TEST(OmpProfilerTest, ReportsParallelMetrics) {
  UmCapture sink;
  util::SimClock clock(0);
  net::InprocHttpClient client(sink.network);
  usermetric::UserMetricClient::Options opts;
  opts.router_url = "inproc://router";
  usermetric::UserMetricClient um(client, clock, opts);
  usermetric::OmpProfiler prof(um, 10 * kSec);

  // 10 s interval: two 2-second regions on 4 threads — one balanced, one
  // where a single thread does double the work of the others.
  prof.record_region(1 * kSec, 2 * kSec, {2 * kSec, 2 * kSec, 2 * kSec, 2 * kSec});
  prof.record_region(5 * kSec, 2 * kSec, {2 * kSec, 1 * kSec, 1 * kSec, 1 * kSec});
  prof.report(11 * kSec);
  um.flush();

  ASSERT_NE(sink.field("omp_parallel_fraction"), nullptr);
  EXPECT_NEAR(sink.field("omp_parallel_fraction")->as_double(), 4.0 / 10.0, 1e-9);
  EXPECT_NEAR(sink.field("omp_regions_per_sec")->as_double(), 0.2, 1e-9);
  // Efficiencies: 1.0 and 5/8; duration-weighted mean = (1.0 + 0.625)/2.
  EXPECT_NEAR(sink.field("omp_load_efficiency")->as_double(), 0.8125, 1e-9);
  EXPECT_NEAR(sink.field("omp_avg_threads")->as_double(), 4.0, 1e-9);
  EXPECT_EQ(prof.total_regions(), 2u);
}

TEST(OmpProfilerTest, AutoReportsWhenIntervalCovered) {
  UmCapture sink;
  util::SimClock clock(0);
  net::InprocHttpClient client(sink.network);
  usermetric::UserMetricClient::Options opts;
  opts.router_url = "inproc://router";
  usermetric::UserMetricClient um(client, clock, opts);
  usermetric::OmpProfiler prof(um, 5 * kSec);
  for (int i = 0; i < 12; ++i) {
    prof.record_region(i * kSec, kSec / 2, {kSec / 2, kSec / 2});
  }
  um.flush();
  int reports = 0;
  for (const auto& p : sink.points) {
    if (p.field("omp_parallel_fraction") != nullptr) ++reports;
  }
  EXPECT_GE(reports, 2);
}

// --------------------------------------------------------- finding recorder

TEST(FindingRecorderTest, WritesAlertsAsEvents) {
  tsdb::Storage storage;
  util::SimClock clock(0);
  tsdb::HttpApi api(storage, clock);
  net::InprocNetwork network;
  network.bind("tsdb", api.handler());
  net::InprocHttpClient client(network);
  analysis::FindingRecorder recorder(client, "inproc://tsdb");

  analysis::Finding f;
  f.rule = "compute_break";
  f.description = "break in computation";
  f.hostname = "h3";
  f.job_id = "42";
  f.severity = analysis::Severity::kCritical;
  f.start = 10 * kMin;
  f.end = 22 * kMin;
  EXPECT_EQ(recorder.record({f}), 1u);
  EXPECT_EQ(recorder.recorded(), 1u);

  tsdb::Database* db = storage.find_database("lms");
  const auto series = db->series_matching(
      "alerts", {{"jobid", "42"}, {"rule", "compute_break"}, {"severity", "critical"}});
  ASSERT_EQ(series.size(), 1u);
  const auto& text = series[0]->columns.at("text");
  EXPECT_NE(text.values()[0].as_string().find("compute_break on h3"), std::string::npos);
  EXPECT_DOUBLE_EQ(series[0]->columns.at("duration_s").values()[0].as_double(), 720.0);
  EXPECT_EQ(text.times()[0], 22 * kMin);
  // Empty input is a no-op.
  EXPECT_EQ(recorder.record({}), 0u);
}

TEST(FindingRecorderTest, CountsFailures) {
  net::InprocNetwork network;  // no endpoint bound
  net::InprocHttpClient client(network);
  analysis::FindingRecorder recorder(client, "inproc://tsdb");
  analysis::Finding f;
  f.rule = "x";
  EXPECT_EQ(recorder.record({f}), 0u);
  EXPECT_EQ(recorder.failures(), 1u);
}

// ------------------------------------------------------------- continuous

TEST(ContinuousQueryTest, DownsamplesIntoRollup) {
  tsdb::Storage storage;
  // 30 minutes of 10 s data for two hosts.
  std::vector<lineproto::Point> points;
  for (int h = 1; h <= 2; ++h) {
    for (util::TimeNs t = 0; t < 30 * kMin; t += 10 * kSec) {
      points.push_back(lineproto::make_point(
          "cpu", "user_percent", h * 10.0, t,
          {{"hostname", "h" + std::to_string(h)}, {"jobid", "1"}}));
    }
  }
  storage.write("lms", points, 0);

  tsdb::CqRunner runner(storage, "lms");
  tsdb::ContinuousQuery cq;
  cq.name = "cpu_5m";
  cq.source_measurement = "cpu";
  cq.target_measurement = "cpu_5m";
  cq.fields = {{"user_percent", tsdb::Aggregator::kMean},
               {"user_percent", tsdb::Aggregator::kMax}};
  cq.window = 5 * kMin;
  runner.add(cq);

  const std::size_t written = runner.run(30 * kMin + kMin);
  // 2 hosts x 6 windows of 5 minutes.
  EXPECT_EQ(written, 12u);
  tsdb::Database* db = storage.find_database("lms");
  const auto series = db->series_matching("cpu_5m", {{"hostname", "h2"}});
  ASSERT_EQ(series.size(), 1u);
  const auto& mean_col = series[0]->columns.at("user_percent_mean");
  ASSERT_EQ(mean_col.size(), 6u);
  EXPECT_DOUBLE_EQ(mean_col.values()[0].as_double(), 20.0);
  EXPECT_DOUBLE_EQ(series[0]->columns.at("user_percent_max").values()[0].as_double(), 20.0);
  // jobid preserved on the rollup.
  EXPECT_EQ(series[0]->tag("jobid"), "1");
}

TEST(ContinuousQueryTest, WatermarkAvoidsReprocessing) {
  tsdb::Storage storage;
  std::vector<lineproto::Point> points;
  for (util::TimeNs t = 0; t < 10 * kMin; t += 10 * kSec) {
    points.push_back(
        lineproto::make_point("cpu", "user_percent", 50.0, t, {{"hostname", "h1"}}));
  }
  storage.write("lms", points, 0);
  tsdb::CqRunner runner(storage, "lms");
  tsdb::ContinuousQuery cq;
  cq.name = "cpu_5m";
  cq.source_measurement = "cpu";
  cq.target_measurement = "cpu_5m";
  cq.fields = {{"user_percent", tsdb::Aggregator::kMean}};
  cq.window = 5 * kMin;
  cq.group_tags = {"hostname"};
  runner.add(cq);

  EXPECT_EQ(runner.run(11 * kMin), 2u);
  // Immediate re-run: nothing new.
  EXPECT_EQ(runner.run(11 * kMin), 0u);
  // More data arrives; only the new window is processed.
  std::vector<lineproto::Point> more;
  for (util::TimeNs t = 10 * kMin; t < 15 * kMin; t += 10 * kSec) {
    more.push_back(
        lineproto::make_point("cpu", "user_percent", 80.0, t, {{"hostname", "h1"}}));
  }
  storage.write("lms", more, 0);
  EXPECT_EQ(runner.run(16 * kMin), 1u);
  const auto series = storage.find_database("lms")->series_of("cpu_5m");
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0]->columns.at("user_percent_mean").size(), 3u);
}

TEST(ContinuousQueryTest, LagHoldsBackRecentWindow) {
  tsdb::Storage storage;
  storage.write("lms",
                {lineproto::make_point("cpu", "user_percent", 50.0, 4 * kMin + 50 * kSec,
                                       {{"hostname", "h1"}})},
                0);
  tsdb::CqRunner::Options opts;
  opts.lag = kMin;
  tsdb::CqRunner runner(storage, "lms", opts);
  tsdb::ContinuousQuery cq;
  cq.name = "cpu_5m";
  cq.source_measurement = "cpu";
  cq.target_measurement = "cpu_5m";
  cq.fields = {{"user_percent", tsdb::Aggregator::kMean}};
  cq.window = 5 * kMin;
  runner.add(cq);
  // At 5m30s the [0,5m) window ended 30 s ago — still inside the lag.
  EXPECT_EQ(runner.run(5 * kMin + 30 * kSec), 0u);
  EXPECT_EQ(runner.run(6 * kMin + 10 * kSec), 1u);
}

TEST(ContinuousQueryTest, RetentionPlusRollupKeepsHistory) {
  // The §II data-volume story: raw expires, rollups survive.
  tsdb::Storage storage;
  std::vector<lineproto::Point> points;
  for (util::TimeNs t = 0; t < 60 * kMin; t += 10 * kSec) {
    points.push_back(
        lineproto::make_point("cpu", "user_percent", 42.0, t, {{"hostname", "h1"}}));
  }
  storage.write("lms", points, 0);
  tsdb::CqRunner runner(storage, "lms");
  tsdb::ContinuousQuery cq;
  cq.name = "cpu_5m";
  cq.source_measurement = "cpu";
  cq.target_measurement = "cpu_rollup";
  cq.fields = {{"user_percent", tsdb::Aggregator::kMean}};
  cq.window = 5 * kMin;
  cq.group_tags = {"hostname"};
  runner.add(cq);
  runner.run(61 * kMin);

  // Expire raw data older than 10 minutes... which also hits old rollups;
  // real deployments put rollups in a separate database/retention policy —
  // emulate by checking the rollup count before expiry covers the hour.
  tsdb::Database* db = storage.find_database("lms");
  ASSERT_EQ(db->series_of("cpu_rollup").size(), 1u);
  EXPECT_EQ(db->series_of("cpu_rollup")[0]->columns.at("user_percent_mean").size(), 12u);
  const std::size_t dropped = db->drop_before(50 * kMin);
  EXPECT_GT(dropped, 0u);
  // Raw thinned out, rollup series still holds the tail.
  EXPECT_FALSE(db->series_of("cpu_rollup").empty());
}

// ------------------------------------------------------------- persistence

TEST(PersistTest, SnapshotRoundTrip) {
  tsdb::Storage storage;
  storage.write("lms",
                {lineproto::make_point("cpu", "user_percent", 42.5, 1000,
                                       {{"hostname", "h1"}, {"jobid", "7"}}),
                 lineproto::make_point("events", "text", std::string("job start"), 2000,
                                       {{"jobid", "7"}})},
                0);
  storage.write("user_alice", {lineproto::make_point("m", "v", 1.0, 3000)}, 0);

  const std::string path = ::testing::TempDir() + "/lms_snapshot_test.lp";
  ASSERT_TRUE(tsdb::save_snapshot(storage, path).ok());

  tsdb::Storage restored;
  auto loaded = tsdb::load_snapshot(restored, path);
  ASSERT_TRUE(loaded.ok()) << loaded.message();
  EXPECT_EQ(*loaded, 3u);
  EXPECT_EQ(restored.databases(), storage.databases());
  tsdb::Database* db = restored.find_database("lms");
  ASSERT_NE(db, nullptr);
  const auto series = db->series_matching("cpu", {{"hostname", "h1"}, {"jobid", "7"}});
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0]->columns.at("user_percent").values()[0].as_double(), 42.5);
  EXPECT_EQ(series[0]->columns.at("user_percent").times()[0], 1000);
  // String events survive too.
  EXPECT_EQ(db->series_matching("events", {{"jobid", "7"}})[0]
                ->columns.at("text")
                .values()[0]
                .as_string(),
            "job start");
  EXPECT_NE(restored.find_database("user_alice"), nullptr);
}

TEST(PersistTest, MultiFieldPointsStayMerged) {
  tsdb::Storage storage;
  lineproto::Point p;
  p.measurement = "cpu";
  p.set_tag("hostname", "h1");
  p.add_field("user", 1.0);
  p.add_field("system", 2.0);
  p.timestamp = 500;
  p.normalize();
  storage.write("lms", {p}, 0);
  const tsdb::ReadSnapshot snap = storage.snapshot("lms");
  ASSERT_TRUE(snap);
  const std::string dump = tsdb::dump_database(*snap);
  // Both fields on one line: the dump re-merges columns by timestamp.
  EXPECT_EQ(dump, "cpu,hostname=h1 system=2,user=1 500\n");
}

TEST(PersistTest, LoadRejectsGarbage) {
  tsdb::Storage storage;
  EXPECT_FALSE(tsdb::load_snapshot(storage, "/nonexistent/path").ok());
  const std::string path = ::testing::TempDir() + "/not_a_snapshot.lp";
  {
    std::ofstream f(path);
    f << "cpu v=1 100\n";  // valid lines but no header
  }
  EXPECT_FALSE(tsdb::load_snapshot(storage, path).ok());
}

// ---------------------------------------------------------- rules from ini

TEST(RulesFromConfig, ParsesFullRule) {
  const auto cfg = util::Config::parse(R"(
[rule:gpu_idle]
description = GPU allocated but idle
severity = critical
min_duration = 5m
resolution = 15s
condition = gpu.utilization < 5
condition2 = gpu.power_watts < 50
)");
  ASSERT_TRUE(cfg.ok());
  auto rules = analysis::rules_from_config(*cfg);
  ASSERT_TRUE(rules.ok()) << rules.message();
  ASSERT_EQ(rules->size(), 1u);
  const analysis::Rule& r = (*rules)[0];
  EXPECT_EQ(r.name, "gpu_idle");
  EXPECT_EQ(r.severity, analysis::Severity::kCritical);
  EXPECT_EQ(r.min_duration, 5 * kMin);
  EXPECT_EQ(r.resolution, 15 * kSec);
  ASSERT_EQ(r.conditions.size(), 2u);
  EXPECT_EQ(r.conditions[0].metric.measurement, "gpu");
  EXPECT_EQ(r.conditions[0].metric.field, "utilization");
  EXPECT_EQ(r.conditions[0].op, analysis::ThresholdOp::kBelow);
  EXPECT_DOUBLE_EQ(r.conditions[0].threshold, 5.0);
  EXPECT_EQ(r.conditions[1].op, analysis::ThresholdOp::kBelow);
}

TEST(RulesFromConfig, DefaultsAndAboveOperator) {
  const auto cfg = util::Config::parse(R"(
[rule:hot]
condition = memory.used_percent > 95
[other_section]
ignored = yes
)");
  auto rules = analysis::rules_from_config(*cfg);
  ASSERT_TRUE(rules.ok()) << rules.message();
  ASSERT_EQ(rules->size(), 1u);
  EXPECT_EQ((*rules)[0].severity, analysis::Severity::kWarning);  // default
  EXPECT_EQ((*rules)[0].conditions[0].op, analysis::ThresholdOp::kAbove);
  EXPECT_EQ((*rules)[0].description, "hot");  // defaults to the name
}

TEST(RulesFromConfig, Rejections) {
  auto check_fails = [](std::string_view ini) {
    const auto cfg = util::Config::parse(ini);
    ASSERT_TRUE(cfg.ok());
    EXPECT_FALSE(analysis::rules_from_config(*cfg).ok()) << ini;
  };
  check_fails("[rule:x]\ndescription = no conditions\n");
  check_fails("[rule:x]\ncondition = malformed\n");
  check_fails("[rule:x]\ncondition = a.b < notanumber\n");
  check_fails("[rule:x]\ncondition = a.b < 1 > 2\n");
  check_fails("[rule:x]\ncondition = a.b < 1\nseverity = fatal\n");
  check_fails("[rule:x]\ncondition = a.b < 1\nmin_duration = 10parsecs\n");
  check_fails("[rule:x]\ncondition = nofield < 1\n");
}

TEST(RulesFromConfig, ConfiguredRuleDetects) {
  // A config-defined rule drives the same engine as the built-ins.
  tsdb::Storage storage;
  std::vector<lineproto::Point> points;
  for (util::TimeNs t = 0; t < 20 * kMin; t += 10 * kSec) {
    points.push_back(lineproto::make_point("gpu", "utilization", t > 5 * kMin ? 1.0 : 80.0,
                                           t, {{"hostname", "h1"}, {"jobid", "1"}}));
  }
  storage.write("lms", points, 0);
  const auto cfg = util::Config::parse(
      "[rule:gpu_idle]\nseverity = warning\nmin_duration = 5m\ncondition = gpu.utilization "
      "< 5\n");
  auto rules = analysis::rules_from_config(*cfg);
  ASSERT_TRUE(rules.ok());
  analysis::MetricFetcher fetcher(storage, "lms");
  analysis::RuleEngine engine(fetcher);
  for (auto& r : *rules) engine.add_rule(std::move(r));
  const auto findings = engine.evaluate_host("h1", "1", 0, 20 * kMin);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "gpu_idle");
}

// ------------------------------------------------------ agent self-monitor

TEST(AgentSelfMonitor, EmitsOwnCounters) {
  tsdb::Storage storage;
  util::SimClock clock(0);
  tsdb::HttpApi api(storage, clock);
  net::InprocNetwork network;
  network.bind("router", api.handler());
  net::InprocHttpClient client(network);

  collector::HostAgent::Options opts;
  opts.router_url = "inproc://router";
  opts.flush_interval = 10 * kSec;
  opts.self_monitor_interval = 30 * kSec;
  opts.hostname = "h1";
  collector::HostAgent agent(client, opts);
  for (int t = 0; t <= 70; t += 10) {
    agent.tick(static_cast<util::TimeNs>(t) * kSec);
  }
  tsdb::Database* db = storage.find_database("lms");
  ASSERT_NE(db, nullptr);
  const auto series = db->series_matching("agent", {{"hostname", "h1"}});
  ASSERT_EQ(series.size(), 1u);
  // Self-monitor points at t=0,30,60.
  EXPECT_EQ(series[0]->columns.at("points_sent").size(), 3u);
  // The last report reflects earlier sends.
  EXPECT_GT(series[0]->columns.at("points_sent").values()[2].as_int(), 0);
}

// ------------------------------------------------------------ router spool

struct FlakyDb {
  net::InprocNetwork network;
  tsdb::Storage storage;
  util::SimClock clock{0};
  tsdb::HttpApi api{storage, clock};
  bool down = false;

  FlakyDb() {
    network.bind("tsdb", [this](const net::HttpRequest& req) {
      if (down) return net::HttpResponse::text(503, "db down");
      return api.handler()(req);
    });
  }
};

TEST(RouterSpoolTest, SpoolsWhileDbDownAndDrains) {
  FlakyDb db;
  net::InprocHttpClient client(db.network);
  core::MetricsRouter::Options opts;
  opts.db_url = "inproc://tsdb";
  opts.spool_capacity = 100;
  core::MetricsRouter router(client, db.clock, opts);

  db.down = true;
  for (int i = 0; i < 5; ++i) {
    auto r = router.write_lines("cpu,hostname=h1 v=" + std::to_string(i) + " " +
                                std::to_string((i + 1) * 1000) + "\n");
    ASSERT_TRUE(r.ok());  // acknowledged despite the outage
  }
  EXPECT_EQ(router.spool_size(), 5u);
  EXPECT_EQ(router.stats().points_spooled, 5u);
  EXPECT_EQ(db.storage.databases().size(), 0u);

  db.down = false;
  // The next write drains the spool first.
  ASSERT_TRUE(router.write_lines("cpu,hostname=h1 v=99 9000\n").ok());
  EXPECT_EQ(router.spool_size(), 0u);
  EXPECT_EQ(db.storage.find_database("lms")->sample_count(), 6u);
  EXPECT_EQ(router.stats().points_out, 6u);
}

TEST(RouterSpoolTest, BoundedSpoolDropsOldest) {
  FlakyDb db;
  net::InprocHttpClient client(db.network);
  core::MetricsRouter::Options opts;
  opts.db_url = "inproc://tsdb";
  opts.spool_capacity = 3;
  core::MetricsRouter router(client, db.clock, opts);
  db.down = true;
  for (int i = 0; i < 10; ++i) {
    (void)router.write_lines("cpu,hostname=h1 v=" + std::to_string(i) + " " +
                             std::to_string((i + 1) * 1000) + "\n");
  }
  EXPECT_EQ(router.spool_size(), 3u);
  EXPECT_EQ(router.stats().spool_dropped, 7u);
  db.down = false;
  EXPECT_EQ(router.flush_spool(), 3u);
  // The three newest survived.
  const auto* col = &db.storage.find_database("lms")->series_of("cpu")[0]->columns.at("v");
  EXPECT_DOUBLE_EQ(col->values()[0].as_double(), 7.0);
}

TEST(RouterSpoolTest, DisabledSpoolReportsErrors) {
  FlakyDb db;
  net::InprocHttpClient client(db.network);
  core::MetricsRouter::Options opts;
  opts.db_url = "inproc://tsdb";
  core::MetricsRouter router(client, db.clock, opts);
  db.down = true;
  EXPECT_FALSE(router.write_lines("cpu,hostname=h1 v=1 1000\n").ok());
  EXPECT_EQ(router.spool_size(), 0u);
}

}  // namespace
}  // namespace lms
