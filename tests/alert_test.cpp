// Tests for the lms::alert subsystem: rule state machine, evaluator over
// the TSDB (threshold / absence / rate-of-change), deadman detection for
// collector agents, notifier sinks, and the /health + /ready probes across
// the stack.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lms/alert/evaluator.hpp"
#include "lms/alert/rule.hpp"
#include "lms/cluster/harness.hpp"
#include "lms/json/json.hpp"
#include "lms/net/transport.hpp"
#include "lms/obs/metrics.hpp"
#include "lms/tsdb/storage.hpp"
#include "lms/util/clock.hpp"

namespace lms::alert {
namespace {

constexpr util::TimeNs kSec = util::kNanosPerSecond;
constexpr util::TimeNs kT0 = 1'500'000'000LL * kSec;

lineproto::Point make_point(const std::string& measurement, const std::string& host,
                            const std::string& field, double value, util::TimeNs t) {
  lineproto::Point p;
  p.measurement = measurement;
  p.set_tag("hostname", host);
  p.add_field(field, value);
  p.timestamp = t;
  p.normalize();
  return p;
}

// ------------------------------------------------------------ state machine

TEST(StateMachine, PendingThenFiringThenResolved) {
  AlertRule rule;
  rule.name = "hot";
  rule.for_duration = 20 * kSec;
  AlertInstance inst;
  inst.rule = rule.name;

  // First breach: inactive -> pending.
  auto ev = step_instance(rule, inst, true, 95, "hot", kT0);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->transition_name(), "pending");
  EXPECT_EQ(inst.state, AlertState::kPending);

  // Still breaching but for_duration not yet met: no transition.
  ev = step_instance(rule, inst, true, 95, "hot", kT0 + 10 * kSec);
  EXPECT_FALSE(ev.has_value());

  // Breach persisted long enough: pending -> firing.
  ev = step_instance(rule, inst, true, 96, "hot", kT0 + 20 * kSec);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->transition_name(), "firing");

  // Clear: firing -> inactive, announced as "resolved".
  ev = step_instance(rule, inst, false, 50, "ok", kT0 + 30 * kSec);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->transition_name(), "resolved");
  EXPECT_EQ(ev->from, AlertState::kFiring);
  EXPECT_EQ(inst.state, AlertState::kInactive);
}

TEST(StateMachine, PendingEpisodeCancelsSilently) {
  AlertRule rule;
  rule.name = "blip";
  rule.for_duration = 60 * kSec;
  AlertInstance inst;
  inst.rule = rule.name;
  ASSERT_TRUE(step_instance(rule, inst, true, 99, "up", kT0).has_value());
  // One-sample blip clears before for_duration: no "resolved" noise.
  const auto ev = step_instance(rule, inst, false, 10, "down", kT0 + 10 * kSec);
  EXPECT_FALSE(ev.has_value());
  EXPECT_EQ(inst.state, AlertState::kInactive);
}

TEST(StateMachine, ZeroForDurationFiresImmediately) {
  AlertRule rule;
  rule.name = "now";
  AlertInstance inst;
  inst.rule = rule.name;
  const auto ev = step_instance(rule, inst, true, 1, "x", kT0);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->transition_name(), "firing");
}

TEST(StateMachine, KeepFiringForDampensFlapping) {
  AlertRule damped;
  damped.name = "flappy";
  damped.keep_firing_for = 90 * kSec;  // 3 evaluation intervals of 30s

  AlertInstance inst;
  inst.rule = damped.name;
  int transitions = 0;
  // A series oscillating around the threshold every 30s evaluation.
  for (int i = 0; i < 10; ++i) {
    const bool breach = i % 2 == 0;
    if (step_instance(damped, inst, breach, breach ? 99 : 1, "flap",
                      kT0 + i * 30 * kSec)) {
      ++transitions;
    }
  }
  // One firing transition, no resolve while the flapping continues.
  EXPECT_EQ(transitions, 1);
  EXPECT_EQ(inst.state, AlertState::kFiring);
  // Sustained clear finally resolves.
  const auto ev = step_instance(damped, inst, false, 1, "calm", kT0 + 10 * 30 * kSec + 90 * kSec);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->transition_name(), "resolved");

  // Without dampening the same series resolves (and re-fires) every flip.
  AlertRule undamped;
  undamped.name = "flappy2";
  AlertInstance inst2;
  inst2.rule = undamped.name;
  int transitions2 = 0;
  for (int i = 0; i < 10; ++i) {
    const bool breach = i % 2 == 0;
    if (step_instance(undamped, inst2, breach, breach ? 99 : 1, "flap",
                      kT0 + i * 30 * kSec)) {
      ++transitions2;
    }
  }
  EXPECT_EQ(transitions2, 10);
}

// ---------------------------------------------------------------- evaluator

TEST(Evaluator, ThresholdRuleFiresPerHostAndWritesHistory) {
  tsdb::Storage storage;
  Evaluator::Options opts;
  Evaluator eval(storage, opts);

  AlertRule rule;
  rule.name = "cpu_hot";
  rule.measurement = "cpu";
  rule.field = "user_percent";
  rule.cmp = Comparison::kAbove;
  rule.threshold = 90;
  rule.window = 60 * kSec;
  rule.group_by_tags = {"hostname"};
  rule.severity = "critical";
  eval.add(rule);

  for (int i = 0; i < 6; ++i) {
    storage.write("lms",
                  {make_point("cpu", "h1", "user_percent", 95, kT0 + i * 10 * kSec),
                   make_point("cpu", "h2", "user_percent", 20, kT0 + i * 10 * kSec)},
                  kT0);
  }
  const util::TimeNs t1 = kT0 + 60 * kSec;
  EXPECT_EQ(eval.run(t1), 1u);  // only h1 fires

  // The transition is queryable history in the lms_alerts measurement.
  const tsdb::ReadSnapshot snap = storage.snapshot("lms");
  ASSERT_TRUE(snap);
  const auto series = snap->series_matching("lms_alerts", {{"rule", "cpu_hot"}});
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0]->tag("state"), "firing");
  EXPECT_EQ(series[0]->tag("hostname"), "h1");
  EXPECT_EQ(series[0]->tag("severity"), "critical");
}

TEST(Evaluator, EmptyAndNonexistentSeriesAreHandled) {
  tsdb::Storage storage;
  Evaluator eval(storage, Evaluator::Options{});

  // Threshold over a measurement that does not exist (and a database that
  // does not exist yet): no data is not a breach, and nothing crashes.
  AlertRule threshold;
  threshold.name = "ghost";
  threshold.measurement = "no_such_measurement";
  threshold.field = "value";
  threshold.threshold = 1;
  eval.add(threshold);
  EXPECT_EQ(eval.run(kT0), 0u);
  EXPECT_EQ(eval.firing_count(), 0u);

  // An ungrouped absence rule over the same nothing *does* fire: that is
  // the whole point of absence rules.
  AlertRule absent;
  absent.name = "heartbeat_missing";
  absent.measurement = "heartbeat";
  absent.field = "value";
  absent.kind = ConditionKind::kAbsence;
  absent.window = 30 * kSec;
  eval.add(absent);
  EXPECT_EQ(eval.run(kT0 + 30 * kSec), 1u);
  EXPECT_EQ(eval.firing_count(), 1u);

  // Data arriving resolves it.
  storage.write("lms", {make_point("heartbeat", "h1", "value", 1, kT0 + 50 * kSec)}, kT0);
  EXPECT_EQ(eval.run(kT0 + 60 * kSec), 1u);
  EXPECT_EQ(eval.firing_count(), 0u);
}

TEST(Evaluator, RateOfChangeRule) {
  tsdb::Storage storage;
  Evaluator eval(storage, Evaluator::Options{});

  AlertRule rule;
  rule.name = "queue_growth";
  rule.kind = ConditionKind::kRateOfChange;
  rule.measurement = "spool";
  rule.field = "depth";
  rule.cmp = Comparison::kAbove;
  rule.threshold = 5;  // more than 5 points/s of growth
  rule.window = 60 * kSec;
  eval.add(rule);

  // Depth grows by 600 over the 60s window -> rate 10/s -> breach.
  for (int i = 0; i <= 6; ++i) {
    storage.write("lms", {make_point("spool", "h1", "depth", i * 100.0, kT0 + i * 10 * kSec)},
                  kT0);
  }
  EXPECT_EQ(eval.run(kT0 + 60 * kSec), 1u);
  const auto instances = eval.instances();
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].state, AlertState::kFiring);
  EXPECT_NEAR(instances[0].value, 10.0, 0.5);
}

TEST(Evaluator, SelfMetricsRuleOverLmsInternal) {
  // Rules work over the stack's own self-scrape measurement like any other.
  tsdb::Storage storage;
  Evaluator eval(storage, Evaluator::Options{});

  AlertRule rule;
  rule.name = "router_ingest_stalled";
  rule.measurement = "lms_internal";
  rule.field = "value";
  rule.tag_filters = {{"metric", "router_points_in"}};
  rule.cmp = Comparison::kBelow;
  rule.threshold = 1;
  rule.window = 120 * kSec;
  eval.add(rule);

  obs::Registry registry;
  registry.counter("router_points_in").inc(0);  // stalled: stays at 0
  storage.write("lms",
                obs::to_points(registry, "lms_internal", {{"hostname", "lms-stack"}}, kT0),
                kT0);
  EXPECT_EQ(eval.run(kT0 + 10 * kSec), 1u);
  EXPECT_EQ(eval.firing_count(), 1u);
}

TEST(Evaluator, DeadmanFiresAndResolvesOnResume) {
  tsdb::Storage storage;
  Evaluator::Options opts;
  opts.deadman_window = 60 * kSec;
  Evaluator eval(storage, opts);
  eval.register_host("h1");
  eval.register_host("h2");

  // Both hosts writing: nothing fires.
  storage.write("lms",
                {make_point("cpu", "h1", "user_percent", 10, kT0),
                 make_point("cpu", "h2", "user_percent", 10, kT0)},
                kT0);
  EXPECT_EQ(eval.run(kT0 + 10 * kSec), 0u);

  // h2 keeps writing, h1 goes silent.
  storage.write("lms", {make_point("cpu", "h2", "user_percent", 10, kT0 + 70 * kSec)}, kT0);
  EXPECT_EQ(eval.run(kT0 + 70 * kSec), 1u);
  auto firing = eval.instances();
  bool h1_firing = false;
  for (const auto& inst : firing) {
    if (inst.rule == "deadman" && !inst.labels.empty() && inst.labels[0].second == "h1") {
      h1_firing = inst.state == AlertState::kFiring;
    }
  }
  EXPECT_TRUE(h1_firing);

  // h1 resumes: the deadman resolves on the next sweep.
  storage.write("lms", {make_point("cpu", "h1", "user_percent", 10, kT0 + 95 * kSec)}, kT0);
  EXPECT_EQ(eval.run(kT0 + 100 * kSec), 1u);
  EXPECT_EQ(eval.firing_count(), 0u);
}

TEST(Evaluator, DeadmanAutodiscoversHostsFromDatabase) {
  tsdb::Storage storage;
  Evaluator::Options opts;
  opts.deadman_window = 60 * kSec;
  Evaluator eval(storage, opts);  // nothing registered explicitly

  storage.write("lms", {make_point("cpu", "h9", "user_percent", 10, kT0)}, kT0);
  EXPECT_EQ(eval.run(kT0 + 10 * kSec), 0u);  // discovered, still fresh
  EXPECT_EQ(eval.run(kT0 + 90 * kSec), 1u);  // went silent -> fires
}

TEST(Evaluator, SinksReceiveTransitions) {
  tsdb::Storage storage;
  net::InprocNetwork network;
  net::InprocHttpClient client(network);
  std::vector<std::string> hook_bodies;
  network.bind("hook", [&hook_bodies](const net::HttpRequest& req) {
    hook_bodies.push_back(req.body);
    return net::HttpResponse::no_content();
  });
  net::PubSubBroker broker;
  auto sub = broker.subscribe("alerts");

  Evaluator eval(storage, Evaluator::Options{});
  auto& webhook = static_cast<WebhookSink&>(
      eval.add_sink(std::make_unique<WebhookSink>(client, "inproc://hook/alert")));
  eval.add_sink(std::make_unique<PubSubSink>(broker));

  AlertRule rule;
  rule.name = "disk_full";
  rule.measurement = "disk";
  rule.field = "used_percent";
  rule.threshold = 95;
  eval.add(rule);
  storage.write("lms", {make_point("disk", "h1", "used_percent", 99, kT0)}, kT0);
  EXPECT_EQ(eval.run(kT0 + kSec), 1u);

  ASSERT_EQ(hook_bodies.size(), 1u);
  EXPECT_EQ(webhook.delivered(), 1u);
  EXPECT_EQ(webhook.failed(), 0u);
  auto parsed = json::parse(hook_bodies[0]);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)["rule"].as_string(), "disk_full");
  EXPECT_EQ((*parsed)["state"].as_string(), "firing");
  EXPECT_DOUBLE_EQ((*parsed)["value"].as_double(), 99.0);

  const auto msg = sub->try_receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->topic, "alerts");
  EXPECT_NE(msg->payload.find("disk_full"), std::string::npos);
  EXPECT_FALSE(sub->try_receive().has_value());
}

// ------------------------------------------------- full-stack integration

TEST(AlertIntegration, DeadmanFiresWithinOneIntervalAndNotifiesWebhook) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 3;
  opts.enable_alerts = true;
  opts.alert_interval = 30 * kSec;
  opts.deadman_window = 60 * kSec;
  cluster::ClusterHarness harness(opts);

  // Webhook endpoint on the harness network capturing every delivery.
  std::vector<std::string> hook_bodies;
  harness.network().bind("hook", [&hook_bodies](const net::HttpRequest& req) {
    hook_bodies.push_back(req.body);
    return net::HttpResponse::no_content();
  });
  harness.alerts()->add_sink(
      std::make_unique<WebhookSink>(harness.client(), "inproc://hook/alert"));

  harness.run_for(90 * kSec);  // all nodes healthy
  EXPECT_EQ(harness.alerts()->firing_count(), 0u);

  // Kill h2's collector agent and run until the deadman must have fired:
  // one deadman window plus at most one evaluation interval (plus a step).
  const util::TimeNs t_kill = harness.now();
  harness.set_node_active("h2", false);
  harness.run_for(opts.deadman_window + opts.alert_interval + 2 * opts.step);

  ASSERT_GE(harness.alerts()->firing_count(), 1u);
  util::TimeNs fire_time = 0;
  std::string fired_host;
  for (const auto& body : hook_bodies) {
    auto parsed = json::parse(body);
    ASSERT_TRUE(parsed.ok());
    if ((*parsed)["rule"].as_string() == "deadman" &&
        (*parsed)["state"].as_string() == "firing") {
      fire_time = (*parsed)["time"].as_int();
      fired_host = (*parsed)["labels"]["hostname"].as_string();
    }
  }
  ASSERT_NE(fire_time, 0) << "deadman firing was not delivered to the webhook";
  EXPECT_EQ(fired_host, "h2");
  EXPECT_LE(fire_time, t_kill + opts.deadman_window + opts.alert_interval + 2 * opts.step);

  // The transition is queryable from the lms_alerts measurement.
  auto resp = harness.client().get(
      "inproc://tsdb/query?db=lms&q=SELECT%20value%20FROM%20lms_alerts%20WHERE%20"
      "rule%3D%27deadman%27%20AND%20hostname%3D%27h2%27");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("lms_alerts"), std::string::npos);

  // The node comes back: the deadman resolves.
  harness.set_node_active("h2", true);
  harness.run_for(opts.deadman_window);
  EXPECT_EQ(harness.alerts()->firing_count(), 0u);
  bool resolved = false;
  for (const auto& body : hook_bodies) {
    if (body.find("\"deadman\"") != std::string::npos &&
        body.find("\"resolved\"") != std::string::npos) {
      resolved = true;
    }
  }
  EXPECT_TRUE(resolved);
}

TEST(AlertIntegration, HealthAndReadyAcrossTheStack) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 2;
  opts.enable_alerts = true;
  cluster::ClusterHarness harness(opts);
  harness.run_for(30 * kSec);  // create the database, deliver some batches

  // All four components answer /health and /ready with ok JSON.
  for (const std::string target : {"router", "tsdb", "grafana", "agent-h1"}) {
    for (const std::string probe : {"/health", "/ready"}) {
      auto resp = harness.client().get("inproc://" + target + probe);
      ASSERT_TRUE(resp.ok()) << target << probe;
      EXPECT_EQ(resp->status, 200) << target << probe << ": " << resp->body;
      EXPECT_EQ(resp->headers.get_or("Content-Type", ""), "application/json");
      auto parsed = json::parse(resp->body);
      ASSERT_TRUE(parsed.ok()) << target << probe;
      EXPECT_EQ((*parsed)["status"].as_string(), "ok") << target << probe << resp->body;
      EXPECT_FALSE((*parsed)["component"].as_string().empty());
      EXPECT_TRUE((*parsed)["checks"].is_array());
    }
  }

  // Stopping the TSDB flips the router's readiness to degraded (503) while
  // its liveness stays 200.
  harness.network().unbind(cluster::ClusterHarness::kDbEndpoint);
  auto ready = harness.client().get("inproc://router/ready");
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(ready->status, 503);
  EXPECT_NE(ready->body.find("\"degraded\""), std::string::npos);
  EXPECT_NE(ready->body.find("downstream_db"), std::string::npos);
  auto live = harness.client().get("inproc://router/health");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live->status, 200);

  // The collector agents notice too once their next flush fails.
  harness.network().unbind(cluster::ClusterHarness::kRouterEndpoint);
  harness.run_for(30 * kSec);
  auto agent_ready = harness.client().get("inproc://agent-h1/ready");
  ASSERT_TRUE(agent_ready.ok());
  EXPECT_EQ(agent_ready->status, 503);
  EXPECT_NE(agent_ready->body.find("\"degraded\""), std::string::npos);

  // Rebinding the back-ends restores readiness.
  harness.network().bind(cluster::ClusterHarness::kDbEndpoint, harness.db_api().handler());
  harness.network().bind(cluster::ClusterHarness::kRouterEndpoint, harness.router().handler());
  auto ready2 = harness.client().get("inproc://router/ready");
  ASSERT_TRUE(ready2.ok());
  EXPECT_EQ(ready2->status, 200);
}

TEST(AlertIntegration, AlertsDashboardGenerated) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 2;
  opts.enable_alerts = true;
  cluster::ClusterHarness harness(opts);
  harness.run_for(10 * kSec);

  harness.dashboards().generate_alerts_dashboard(harness.now());
  auto resp = harness.client().get("inproc://grafana/api/dashboards/uid/alerts");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("lms_alerts"), std::string::npos);
  EXPECT_NE(resp->body.find("deadman"), std::string::npos);
  EXPECT_NE(resp->body.find("alert_firing"), std::string::npos);
}

TEST(AlertIntegration, ThresholdRuleOverLiveTraffic) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 2;
  opts.enable_alerts = true;
  opts.alert_interval = 30 * kSec;
  cluster::ClusterHarness harness(opts);

  // The simulated idle kernels report ~0.5% user cpu; a > 0 threshold on
  // mean(user_percent) therefore fires for every node.
  AlertRule rule;
  rule.name = "cpu_above_zero";
  rule.measurement = "cpu";
  rule.field = "user_percent";
  rule.cmp = Comparison::kAbove;
  rule.threshold = 0.0;
  rule.window = 60 * kSec;
  rule.group_by_tags = {"hostname"};
  harness.alerts()->add(rule);

  harness.run_for(2 * util::kNanosPerMinute);
  std::size_t firing = 0;
  for (const auto& inst : harness.alerts()->instances()) {
    if (inst.rule == "cpu_above_zero" && inst.state == AlertState::kFiring) ++firing;
  }
  EXPECT_EQ(firing, 2u);
}

}  // namespace
}  // namespace lms::alert
