// Tests for libusermetric: buffering/batching, default tags, events, the
// CLI format, flush policies, and the preload-style hooks.

#include <gtest/gtest.h>

#include "lms/lineproto/codec.hpp"
#include "lms/net/transport.hpp"
#include "lms/usermetric/hooks.hpp"
#include "lms/usermetric/usermetric.hpp"

namespace lms::usermetric {
namespace {

using lineproto::Point;
using util::kNanosPerSecond;

constexpr util::TimeNs kSec = kNanosPerSecond;

/// Captures everything written to the router endpoint.
struct CaptureSink {
  net::InprocNetwork net;
  std::vector<Point> points;
  int batches = 0;
  bool fail = false;

  CaptureSink() {
    net.bind("router", [this](const net::HttpRequest& req) {
      if (fail) return net::HttpResponse::text(500, "down");
      ++batches;
      auto pts = lineproto::parse_lenient(req.body, nullptr);
      points.insert(points.end(), pts.begin(), pts.end());
      return net::HttpResponse::no_content();
    });
  }
};

UserMetricClient::Options options() {
  UserMetricClient::Options o;
  o.router_url = "inproc://router";
  o.default_tags = {{"jobid", "7"}, {"hostname", "h1"}};
  o.buffer_capacity = 10;
  o.flush_interval = 5 * kSec;
  return o;
}

class UserMetricTest : public ::testing::Test {
 protected:
  UserMetricTest() : clock_(100 * kSec), client_(sink_.net) {}
  CaptureSink sink_;
  util::SimClock clock_;
  net::InprocHttpClient client_;
};

TEST_F(UserMetricTest, ValuesBufferedUntilFlush) {
  UserMetricClient um(client_, clock_, options());
  um.value("pressure", 1.5);
  um.value("temperature", 0.7);
  EXPECT_EQ(um.buffered(), 2u);
  EXPECT_TRUE(sink_.points.empty());
  EXPECT_TRUE(um.flush());
  ASSERT_EQ(sink_.points.size(), 2u);
  EXPECT_EQ(sink_.batches, 1);  // batched transmission
  EXPECT_EQ(sink_.points[0].measurement, "usermetric");
  EXPECT_DOUBLE_EQ(sink_.points[0].field("pressure")->as_double(), 1.5);
  // Default tags attached; timestamp from the clock.
  EXPECT_EQ(sink_.points[0].tag("jobid"), "7");
  EXPECT_EQ(sink_.points[0].tag("hostname"), "h1");
  EXPECT_EQ(sink_.points[0].timestamp, 100 * kSec);
}

TEST_F(UserMetricTest, PerMessageTagsOverrideDefaults) {
  UserMetricClient um(client_, clock_, options());
  um.value("x", 1.0, {{"tid", "3"}, {"hostname", "override"}});
  um.flush();
  ASSERT_EQ(sink_.points.size(), 1u);
  EXPECT_EQ(sink_.points[0].tag("tid"), "3");
  EXPECT_EQ(sink_.points[0].tag("hostname"), "override");
  EXPECT_EQ(sink_.points[0].tag("jobid"), "7");
}

TEST_F(UserMetricTest, EventsAreStringPoints) {
  UserMetricClient um(client_, clock_, options());
  um.event("phase", "start of equilibration");
  um.flush();
  ASSERT_EQ(sink_.points.size(), 1u);
  EXPECT_EQ(sink_.points[0].measurement, "userevents");
  EXPECT_EQ(sink_.points[0].tag("event"), "phase");
  EXPECT_EQ(sink_.points[0].field("text")->as_string(), "start of equilibration");
}

TEST_F(UserMetricTest, AutoFlushAtCapacity) {
  UserMetricClient um(client_, clock_, options());
  for (int i = 0; i < 25; ++i) um.value("v", i);
  // Capacity 10: two synchronous flushes happened, 5 still buffered.
  EXPECT_EQ(sink_.points.size(), 20u);
  EXPECT_EQ(um.buffered(), 5u);
  EXPECT_EQ(um.stats().batches_sent, 2u);
}

TEST_F(UserMetricTest, DropWhenFullPolicy) {
  auto opts = options();
  opts.drop_when_full = true;
  opts.buffer_capacity = 5;
  UserMetricClient um(client_, clock_, opts);
  for (int i = 0; i < 8; ++i) um.value("v", i);
  EXPECT_EQ(um.buffered(), 5u);
  EXPECT_EQ(um.stats().points_dropped, 3u);
  EXPECT_TRUE(sink_.points.empty());
}

TEST_F(UserMetricTest, TimedFlushViaTick) {
  UserMetricClient um(client_, clock_, options());
  um.value("v", 1.0);
  um.tick(clock_.now() + 2 * kSec);  // interval (5 s) not reached
  EXPECT_TRUE(sink_.points.empty());
  um.tick(clock_.now() + 6 * kSec);
  EXPECT_EQ(sink_.points.size(), 1u);
}

TEST_F(UserMetricTest, FailedSendKeepsPoints) {
  UserMetricClient um(client_, clock_, options());
  sink_.fail = true;
  um.value("v", 1.0);
  EXPECT_FALSE(um.flush());
  EXPECT_EQ(um.buffered(), 1u);
  EXPECT_EQ(um.stats().send_failures, 1u);
  sink_.fail = false;
  EXPECT_TRUE(um.flush());
  EXPECT_EQ(sink_.points.size(), 1u);
}

TEST_F(UserMetricTest, DestructorFlushes) {
  {
    UserMetricClient um(client_, clock_, options());
    um.value("v", 42.0);
  }
  ASSERT_EQ(sink_.points.size(), 1u);
}

TEST_F(UserMetricTest, ExplicitTimestampKept) {
  UserMetricClient um(client_, clock_, options());
  um.value("v", 1.0, {}, 55 * kSec);
  um.flush();
  EXPECT_EQ(sink_.points[0].timestamp, 55 * kSec);
}

TEST_F(UserMetricTest, StatsCounters) {
  UserMetricClient um(client_, clock_, options());
  um.value("a", 1);
  um.value("b", 2);
  um.event("e", "x");
  um.flush();
  const auto s = um.stats();
  EXPECT_EQ(s.values_reported, 2u);
  EXPECT_EQ(s.events_reported, 1u);
  EXPECT_EQ(s.points_sent, 3u);
}

// ---------------------------------------------------------------- cli

TEST(CliMetric, ValueForm) {
  auto p = parse_cli_metric({"pressure", "1.25", "tid=0", "phase=warmup"}, 99);
  ASSERT_TRUE(p.ok()) << p.message();
  EXPECT_EQ(p->measurement, "usermetric");
  EXPECT_DOUBLE_EQ(p->field("pressure")->as_double(), 1.25);
  EXPECT_EQ(p->tag("tid"), "0");
  EXPECT_EQ(p->tag("phase"), "warmup");
  EXPECT_EQ(p->timestamp, 99);
}

TEST(CliMetric, EventForm) {
  auto p = parse_cli_metric({"--event", "job", "started minimd", "jobid=3"}, 99);
  ASSERT_TRUE(p.ok()) << p.message();
  EXPECT_EQ(p->measurement, "userevents");
  EXPECT_EQ(p->tag("event"), "job");
  EXPECT_EQ(p->field("text")->as_string(), "started minimd");
  EXPECT_EQ(p->tag("jobid"), "3");
}

TEST(CliMetric, Rejections) {
  EXPECT_FALSE(parse_cli_metric({}, 0).ok());
  EXPECT_FALSE(parse_cli_metric({"name"}, 0).ok());
  EXPECT_FALSE(parse_cli_metric({"name", "notanumber"}, 0).ok());
  EXPECT_FALSE(parse_cli_metric({"name", "1.0", "badtag"}, 0).ok());
  EXPECT_FALSE(parse_cli_metric({"--event", "onlyname"}, 0).ok());
}

// ---------------------------------------------------------------- hooks

TEST_F(UserMetricTest, AllocTrackerReportsFootprint) {
  UserMetricClient um(client_, clock_, options());
  AllocTracker tracker(um, 10 * kSec);
  util::TimeNs t = clock_.now();
  tracker.on_allocate(1 << 20, t);  // also triggers the first report
  t += 20 * kSec;
  tracker.on_allocate(3 << 20, t);
  EXPECT_EQ(tracker.current_bytes(), 4 << 20);
  t += 20 * kSec;
  tracker.on_free(1 << 20, t);
  EXPECT_EQ(tracker.current_bytes(), 3 << 20);
  EXPECT_EQ(tracker.total_allocated(), 4u << 20);
  um.flush();
  // Each report emits allocated_bytes/allocated_total_bytes/allocation_calls.
  int footprint_reports = 0;
  for (const auto& p : sink_.points) {
    if (p.field("allocated_bytes") != nullptr) ++footprint_reports;
  }
  EXPECT_EQ(footprint_reports, 3);
}

TEST_F(UserMetricTest, AllocTrackerRespectsInterval) {
  UserMetricClient um(client_, clock_, options());
  AllocTracker tracker(um, 100 * kSec);
  const util::TimeNs t = clock_.now();
  tracker.on_allocate(100, t);       // first report
  tracker.on_allocate(100, t + 1);   // within interval: suppressed
  tracker.on_allocate(100, t + 2);
  um.flush();
  int reports = 0;
  for (const auto& p : sink_.points) {
    if (p.field("allocated_bytes") != nullptr) ++reports;
  }
  EXPECT_EQ(reports, 1);
}

TEST_F(UserMetricTest, AffinityReporterEmitsEvents) {
  UserMetricClient um(client_, clock_, options());
  AffinityReporter reporter(um);
  reporter.on_set_affinity(3, 12, clock_.now());
  um.flush();
  ASSERT_EQ(sink_.points.size(), 1u);
  EXPECT_EQ(sink_.points[0].tag("event"), "set_affinity");
  EXPECT_EQ(sink_.points[0].tag("tid"), "3");
  EXPECT_NE(sink_.points[0].field("text")->as_string().find("cpu 12"), std::string::npos);
}

}  // namespace
}  // namespace lms::usermetric
