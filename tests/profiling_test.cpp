// Tests for the lms::profiling SDK: marker discipline (nesting, recursion,
// unbalanced calls, cross-thread stops, exception unwind), HPM counter
// attribution, concurrent markers, and the end-to-end path through the
// cluster harness into the TSDB and the dashboard's per-region view.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

#include "lms/analysis/roofline.hpp"
#include "lms/cluster/harness.hpp"
#include "lms/cluster/workload.hpp"
#include "lms/hpm/monitor.hpp"
#include "lms/json/json.hpp"
#include "lms/profiling/profiler.hpp"
#include "lms/util/strings.hpp"

namespace lms {
namespace {

using profiling::Profiler;
using profiling::ScopedRegion;

constexpr util::TimeNs kMs = util::kNanosPerSecond / 1000;

// ------------------------------------------------------ marker discipline

TEST(Profiler, NestedRegionsSplitInclusiveAndExclusiveTime) {
  Profiler profiler;
  ASSERT_TRUE(profiler.start("outer", 1 * kMs).ok());
  ASSERT_TRUE(profiler.start("inner", 2 * kMs).ok());
  EXPECT_EQ(profiler.active_regions(), 2u);
  ASSERT_TRUE(profiler.stop("inner", 5 * kMs).ok());
  ASSERT_TRUE(profiler.stop("outer", 10 * kMs).ok());
  EXPECT_EQ(profiler.active_regions(), 0u);

  const auto stats = profiler.stats();
  ASSERT_EQ(stats.size(), 2u);
  const auto& inner = stats[0].region == "inner" ? stats[0] : stats[1];
  const auto& outer = stats[0].region == "outer" ? stats[0] : stats[1];
  EXPECT_EQ(inner.inclusive_ns, 3 * kMs);
  EXPECT_EQ(inner.exclusive_ns, 3 * kMs);
  EXPECT_EQ(outer.inclusive_ns, 9 * kMs);
  EXPECT_EQ(outer.exclusive_ns, 6 * kMs);  // inner's 3 ms subtracted
  EXPECT_EQ(profiler.counters().markers, 2u);
}

TEST(Profiler, RecursiveRegionsAttributePerInstance) {
  Profiler profiler;
  ASSERT_TRUE(profiler.start("fib", 0 * kMs + 1).ok());
  ASSERT_TRUE(profiler.start("fib", 1 * kMs).ok());
  ASSERT_TRUE(profiler.stop("fib", 3 * kMs).ok());
  ASSERT_TRUE(profiler.stop("fib", 6 * kMs).ok());
  const auto stats = profiler.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].count, 2u);
  // Outer instance: ~6 ms inclusive, child 2 ms -> ~4 ms exclusive.
  EXPECT_EQ(stats[0].inclusive_ns, 2 * kMs + (6 * kMs - 1));
  EXPECT_EQ(stats[0].exclusive_ns, 2 * kMs + (6 * kMs - 1) - 2 * kMs);
}

TEST(Profiler, UnbalancedStopsAreCountedAndChangeNothing) {
  Profiler profiler;
  // Stop without any start.
  EXPECT_FALSE(profiler.stop("nothing", 1 * kMs).ok());
  // Stop of the outer region while the inner one is open.
  ASSERT_TRUE(profiler.start("outer", 2 * kMs).ok());
  ASSERT_TRUE(profiler.start("inner", 3 * kMs).ok());
  EXPECT_FALSE(profiler.stop("outer", 4 * kMs).ok());
  EXPECT_EQ(profiler.active_regions(), 2u);  // stacks untouched
  // The well-behaved unwind still works.
  EXPECT_TRUE(profiler.stop("inner", 5 * kMs).ok());
  EXPECT_TRUE(profiler.stop("outer", 6 * kMs).ok());
  EXPECT_EQ(profiler.counters().unbalanced, 2u);
  EXPECT_EQ(profiler.counters().markers, 2u);
}

TEST(Profiler, StopFromAnotherThreadIsUnbalanced) {
  Profiler profiler;
  ASSERT_TRUE(profiler.start("mine", 1 * kMs).ok());
  util::Status other_status;
  std::thread other([&] { other_status = profiler.stop("mine", 2 * kMs); });
  other.join();
  // The other thread has no open region of that name on *its* stack.
  EXPECT_FALSE(other_status.ok());
  EXPECT_EQ(profiler.counters().unbalanced, 1u);
  // The owner still closes it fine.
  EXPECT_TRUE(profiler.stop("mine", 3 * kMs).ok());
}

TEST(Profiler, ScopedRegionClosesOnExceptionUnwind) {
  Profiler profiler;
  try {
    ScopedRegion region(profiler, "risky", 1 * kMs);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(profiler.active_regions(), 0u);
  const auto stats = profiler.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].region, "risky");
  EXPECT_EQ(stats[0].count, 1u);
  EXPECT_EQ(profiler.counters().unbalanced, 0u);
}

TEST(Profiler, ScopedRegionEarlyStopIsIdempotent) {
  Profiler profiler;
  ScopedRegion region(profiler, "r", 1 * kMs);
  EXPECT_TRUE(region.active());
  EXPECT_TRUE(region.stop(2 * kMs).ok());
  EXPECT_FALSE(region.active());
  EXPECT_FALSE(region.stop(3 * kMs).ok());  // already closed
  EXPECT_EQ(profiler.counters().markers, 1u);
}

TEST(Profiler, DepthBoundRejectsRunawayStarts) {
  Profiler::Options options;
  options.max_depth = 3;
  Profiler profiler(std::move(options));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(profiler.start("deep", (i + 1) * kMs).ok());
  }
  EXPECT_FALSE(profiler.start("deep", 4 * kMs).ok());
  EXPECT_EQ(profiler.counters().rejected, 1u);
  EXPECT_EQ(profiler.counters().unbalanced, 0u);
  EXPECT_EQ(profiler.active_regions(), 3u);
  // A ScopedRegion whose start was rejected stops nothing.
  {
    ScopedRegion rejected(profiler, "deep", 5 * kMs);
    EXPECT_FALSE(rejected.active());
  }
  EXPECT_EQ(profiler.active_regions(), 3u);
}

TEST(Profiler, ValueAttributesToInnermostOpenRegion) {
  Profiler profiler;
  EXPECT_FALSE(profiler.value("orphan", 1.0));  // no region open
  ASSERT_TRUE(profiler.start("phase", 1 * kMs).ok());
  EXPECT_TRUE(profiler.value("batch latency", 4.0));
  EXPECT_TRUE(profiler.value("batch latency", 6.0));
  ASSERT_TRUE(profiler.stop("phase", 2 * kMs).ok());
  const auto stats = profiler.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_DOUBLE_EQ(stats[0].fields.at("user_batch_latency"), 10.0);
  EXPECT_DOUBLE_EQ(stats[0].fields.at("user_batch_latency_count"), 2.0);
  EXPECT_EQ(profiler.counters().user_values, 2u);
}

TEST(Profiler, DrainPointsCarriesTagsAndResets) {
  Profiler::Options options;
  options.hostname = "h7";
  Profiler profiler(std::move(options));
  ASSERT_TRUE(profiler.start("force", 1 * kMs).ok());
  ASSERT_TRUE(profiler.stop("force", 4 * kMs).ok());

  const auto points = profiler.drain_points(10 * kMs, {{"jobid", "42"}});
  ASSERT_EQ(points.size(), 1u);
  const auto& p = points[0];
  EXPECT_EQ(p.measurement, profiling::kRegionsMeasurement);
  EXPECT_EQ(p.tag("region"), "force");
  EXPECT_EQ(p.tag("thread"), "0");
  EXPECT_EQ(p.tag("hostname"), "h7");
  EXPECT_EQ(p.tag("jobid"), "42");
  EXPECT_EQ(p.timestamp, 10 * kMs);
  ASSERT_NE(p.field("count"), nullptr);
  EXPECT_EQ(p.field("count")->as_double(), 1.0);
  ASSERT_NE(p.field("inclusive_ns"), nullptr);
  EXPECT_EQ(p.field("inclusive_ns")->as_double(), static_cast<double>(3 * kMs));
  // Drained: the next drain is empty, open regions unaffected.
  EXPECT_TRUE(profiler.drain_points(11 * kMs).empty());
  EXPECT_TRUE(profiler.stats().empty());
}

TEST(Profiler, ConcurrentMarkersFromManyThreads) {
  Profiler profiler;
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&profiler, &failures, t] {
      for (int i = 0; i < kIters; ++i) {
        const util::TimeNs base = (t * kIters + i + 1) * 10 * kMs;
        if (!profiler.start("outer", base).ok()) ++failures;
        if (!profiler.start("inner", base + kMs).ok()) ++failures;
        if (!profiler.value("work", 1.0)) ++failures;
        if (!profiler.stop("inner", base + 2 * kMs).ok()) ++failures;
        if (!profiler.stop("outer", base + 3 * kMs).ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(profiler.counters().markers, 2u * kThreads * kIters);
  EXPECT_EQ(profiler.counters().unbalanced, 0u);
  EXPECT_EQ(profiler.active_regions(), 0u);
  // Every thread has its own (region, thread) aggregate pair.
  EXPECT_EQ(profiler.stats().size(), 2u * kThreads);
}

TEST(Profiler, SelfMetricsInRegistry) {
  obs::Registry registry;
  const auto sample_value = [&registry](std::string_view name) -> double {
    for (const auto& s : registry.collect()) {
      if (s.name == name) return s.value;
    }
    return -1.0;
  };
  {
    Profiler::Options options;
    options.hostname = "h1";
    options.registry = &registry;
    Profiler profiler(std::move(options));
    ASSERT_TRUE(profiler.start("r", 1 * kMs).ok());
    EXPECT_DOUBLE_EQ(sample_value("profiling_active_regions"), 1.0);
    ASSERT_TRUE(profiler.stop("r", 2 * kMs).ok());
    EXPECT_FALSE(profiler.stop("r", 3 * kMs).ok());
    EXPECT_EQ(registry.counter("profiling_markers_total", {{"hostname", "h1"}}).value(), 1u);
    EXPECT_EQ(registry.counter("profiling_unbalanced_markers", {{"hostname", "h1"}}).value(),
              1u);
    const auto& overhead = registry.histogram("profiling_marker_overhead_ns", {{"hostname", "h1"}});
    EXPECT_GE(overhead.count(), 2u);  // one record per marker call
  }
  // The active-regions gauge callback is unregistered with the profiler.
  EXPECT_DOUBLE_EQ(sample_value("profiling_active_regions"), -1.0);
}

// --------------------------------------------------------- HPM collector

TEST(HpmRegionCollector, AttributesCounterDeltasToRegions) {
  const hpm::CounterArchitecture& arch = hpm::simx86();
  hpm::GroupRegistry groups(arch);
  hpm::CounterSimulator sim(arch, 7, 0.0);

  EXPECT_FALSE(profiling::HpmRegionCollector::create(groups, sim, "NO_SUCH_GROUP").ok());

  Profiler profiler;
  auto collector = profiling::HpmRegionCollector::create(groups, sim, "MEM_DP");
  ASSERT_TRUE(collector.ok());
  profiler.add_collector(collector.take());

  util::Rng rng(7);
  // Compute phase: high flop rate. Memory phase: high bandwidth.
  const cluster::NodeActivity compute =
      cluster::make_uniform_activity(arch, 0.98, 2.5, 0.7, 0.95, 0.1, 1e9, rng);
  const cluster::NodeActivity memory =
      cluster::make_uniform_activity(arch, 0.95, 0.7, 0.04, 0.9, 0.8, 1e9, rng);

  util::TimeNs now = util::kNanosPerSecond;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(profiler.start("compute", now).ok());
    sim.advance(compute.hpm, util::kNanosPerSecond);
    now += util::kNanosPerSecond;
    ASSERT_TRUE(profiler.stop("compute", now).ok());

    ASSERT_TRUE(profiler.start("memory", now).ok());
    sim.advance(memory.hpm, util::kNanosPerSecond);
    now += util::kNanosPerSecond;
    ASSERT_TRUE(profiler.stop("memory", now).ok());
  }

  const auto stats = profiler.stats();
  ASSERT_EQ(stats.size(), 2u);
  const auto& compute_stats = stats[0].region == "compute" ? stats[0] : stats[1];
  const auto& memory_stats = stats[0].region == "memory" ? stats[0] : stats[1];
  // Raw slot sums are attributed (additive fields).
  EXPECT_GT(compute_stats.fields.at("cnt_pmc2"), 0.0);  // 256b packed DP
  // Derived metrics come from the accumulated sums over the accumulated
  // time: the compute region's flop rate is far above the memory region's,
  // the bandwidth relation is reversed.
  const double compute_flops = compute_stats.fields.at("dp_mflop_per_s");
  const double memory_flops = memory_stats.fields.at("dp_mflop_per_s");
  const double compute_bw = compute_stats.fields.at("memory_bandwidth_mbytes_per_s");
  const double memory_bw = memory_stats.fields.at("memory_bandwidth_mbytes_per_s");
  EXPECT_GT(compute_flops, 5.0 * memory_flops);
  EXPECT_GT(memory_bw, 5.0 * compute_bw);

  // The group tag rides along in drained points.
  const auto points = profiler.drain_points(now);
  ASSERT_FALSE(points.empty());
  EXPECT_EQ(points[0].tag("group"), "MEM_DP");
}

// ------------------------------------------------- workload phase models

TEST(WorkloadPhases, DefaultIsSingleRegionNamedAfterWorkload) {
  auto workload = cluster::make_workload("dgemm", 1);
  ASSERT_NE(workload, nullptr);
  util::Rng rng(1);
  const auto phases = workload->phases(0, 1, 0, hpm::simx86(), rng);
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].region, "dgemm");
  EXPECT_DOUBLE_EQ(phases[0].fraction, 1.0);
}

TEST(WorkloadPhases, InstrumentedWorkloadsDecomposeIntoNamedPhases) {
  const struct {
    const char* workload;
    std::vector<std::string> regions;
  } kCases[] = {
      {"minimd", {"force", "neighbor", "comm", "integrate"}},
      {"ml_inference", {"preprocess", "matmul", "softmax", "postprocess"}},
      {"stencil2d", {"halo_exchange", "sweep", "reduce"}},
      {"sortmerge", {"partition", "sort", "merge"}},
  };
  for (const auto& c : kCases) {
    auto workload = cluster::make_workload(c.workload, 1);
    ASSERT_NE(workload, nullptr) << c.workload;
    util::Rng rng(1);
    const auto phases = workload->phases(0, 2, util::kNanosPerSecond, hpm::simx86(), rng);
    ASSERT_EQ(phases.size(), c.regions.size()) << c.workload;
    double total = 0.0;
    for (std::size_t i = 0; i < phases.size(); ++i) {
      EXPECT_EQ(phases[i].region, c.regions[i]) << c.workload;
      total += phases[i].fraction;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << c.workload;
  }
}

// ------------------------------------------------ harness + TSDB + views

TEST(ProfilingEndToEnd, RegionsFlowThroughRouterIntoTsdbAndDashboard) {
  cluster::ClusterHarness::Options options;
  options.nodes = 2;
  options.enable_profiling = true;
  options.profiling_flush_interval = 30 * util::kNanosPerSecond;
  options.enable_self_scrape = true;
  cluster::ClusterHarness harness(options);

  const int job = harness.submit("stencil2d", "ada", 2, 3 * util::kNanosPerMinute);
  ASSERT_GE(job, 0);
  ASSERT_TRUE(harness.run_until_done(job, 10 * util::kNanosPerMinute));
  const std::string job_id = std::to_string(job);

  // The per-region series are queryable through the stock TSDB HTTP API.
  auto resp = harness.client().get(
      "inproc://tsdb/query?db=lms&q=" +
      util::url_encode("SELECT mean(dp_mflop_per_s) FROM lms_regions WHERE jobid='" +
                       job_id + "' GROUP BY region"));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, 200);
  for (const char* region : {"halo_exchange", "sweep", "reduce"}) {
    EXPECT_NE(resp->body.find(region), std::string::npos) << resp->body;
  }

  const auto* record = harness.job_record(job);
  ASSERT_NE(record, nullptr);

  // Per-region roofline: the sweep dominates the time share and is
  // memory-bound; the rates of the phases differ by construction.
  auto per_region =
      analysis::roofline_per_region(harness.fetcher(), job_id, record->start_time,
                                    record->end_time + 1, *options.arch);
  ASSERT_TRUE(per_region.ok()) << per_region.message();
  ASSERT_EQ(per_region->size(), 3u);
  EXPECT_EQ((*per_region)[0].region, "sweep");
  EXPECT_GT((*per_region)[0].time_share, 0.5);
  EXPECT_TRUE((*per_region)[0].roofline.memory_bound);
  EXPECT_GT((*per_region)[0].calls, 0u);

  // The dashboard agent serves the same table as JSON.
  auto dash_resp = harness.client().get(
      "inproc://grafana/regions/" + job_id + "?from=" +
      std::to_string(record->start_time) + "&to=" + std::to_string(record->end_time + 1));
  ASSERT_TRUE(dash_resp.ok());
  ASSERT_EQ(dash_resp->status, 200);
  const auto parsed = json::parse(dash_resp->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)["jobid"].as_string(), job_id);
  ASSERT_TRUE((*parsed)["regions"].is_array());
  EXPECT_EQ((*parsed)["regions"].get_array().size(), 3u);

  // In-region usermetric attribution (Phase::values) landed as fields.
  auto user_resp = harness.client().get(
      "inproc://tsdb/query?db=lms&q=" +
      util::url_encode("SELECT mean(user_grid_updates) FROM lms_regions WHERE jobid='" +
                       job_id + "' AND region='sweep'"));
  ASSERT_TRUE(user_resp.ok());
  ASSERT_EQ(user_resp->status, 200);
  // A non-empty result names the series; an empty one has no series at all.
  EXPECT_NE(user_resp->body.find("lms_regions"), std::string::npos) << user_resp->body;

  // The SDK's self-metrics ride the standard lms_internal self-scrape.
  auto internal_resp = harness.client().get(
      "inproc://tsdb/query?db=lms&q=" +
      util::url_encode(
          "SELECT last(value) FROM lms_internal WHERE metric='profiling_markers_total'"));
  ASSERT_TRUE(internal_resp.ok());
  ASSERT_EQ(internal_resp->status, 200);
  EXPECT_NE(internal_resp->body.find("lms_internal"), std::string::npos)
      << internal_resp->body;

  // The internals dashboard charts the profiling instruments.
  const auto internals = harness.dashboards().generate_internals_dashboard(harness.now());
  EXPECT_NE(internals.dump().find("profiling_active_regions"), std::string::npos);
  EXPECT_NE(internals.dump().find("profiling_marker_overhead_ns"), std::string::npos);
}

TEST(ProfilingEndToEnd, AllInstrumentedWorkloadsProduceRegionSeries) {
  cluster::ClusterHarness::Options options;
  options.nodes = 3;
  options.enable_profiling = true;
  cluster::ClusterHarness harness(options);

  const int ml = harness.submit("ml_inference", "ada", 1, 2 * util::kNanosPerMinute);
  const int sort = harness.submit("sortmerge", "bob", 1, 2 * util::kNanosPerMinute);
  const int md = harness.submit("minimd", "cyd", 1, 2 * util::kNanosPerMinute);
  ASSERT_TRUE(harness.run_until_done(ml, 10 * util::kNanosPerMinute));
  ASSERT_TRUE(harness.run_until_done(sort, 10 * util::kNanosPerMinute));
  ASSERT_TRUE(harness.run_until_done(md, 10 * util::kNanosPerMinute));

  const struct {
    int job;
    const char* region;
  } kExpect[] = {{ml, "matmul"}, {sort, "merge"}, {md, "force"}};
  for (const auto& e : kExpect) {
    const auto regions = harness.fetcher().tag_values(
        "lms_regions", "region", {{"jobid", std::to_string(e.job)}});
    EXPECT_NE(std::find(regions.begin(), regions.end(), e.region), regions.end())
        << "job " << e.job << " missing region " << e.region;
  }

  // Distinct phase profiles: the ml_inference matmul runs much hotter in
  // DP flops than its preprocess phase.
  const auto* record = harness.job_record(ml);
  ASSERT_NE(record, nullptr);
  const std::string ml_id = std::to_string(ml);
  auto matmul = harness.fetcher().fetch(
      {"lms_regions", "dp_mflop_per_s"}, {{"jobid", ml_id}, {"region", "matmul"}},
      record->start_time, record->end_time + 1);
  auto preprocess = harness.fetcher().fetch(
      {"lms_regions", "dp_mflop_per_s"}, {{"jobid", ml_id}, {"region", "preprocess"}},
      record->start_time, record->end_time + 1);
  ASSERT_TRUE(matmul.ok());
  ASSERT_TRUE(preprocess.ok());
  ASSERT_FALSE(matmul->empty());
  ASSERT_FALSE(preprocess->empty());
  EXPECT_GT(matmul->mean(), 10.0 * preprocess->mean());
}

TEST(ProfilingEndToEnd, RegionSpansJoinTracesWhenEnabled) {
  cluster::ClusterHarness::Options options;
  options.nodes = 1;
  options.enable_profiling = true;
  options.profiling_spans = true;
  options.enable_tracing = true;
  cluster::ClusterHarness harness(options);

  const int job = harness.submit("sortmerge", "ada", 1, util::kNanosPerMinute);
  ASSERT_TRUE(harness.run_until_done(job, 5 * util::kNanosPerMinute));
  ASSERT_GT(harness.drain_traces(), 0u);

  auto resp = harness.client().get(
      "inproc://tsdb/query?db=lms&q=" +
      util::url_encode("SELECT count(duration_ns) FROM lms_traces WHERE "
                       "component='profiling'"));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("lms_traces"), std::string::npos) << resp->body;
}

}  // namespace
}  // namespace lms
