// Negative-compile probe for the thread-safety-analysis gate: reading an
// LMS_GUARDED_BY field without holding its mutex MUST fail to compile under
// clang -Wthread-safety -Werror. ci/static_analysis.sh compiles this file
// and fails the gate if it *succeeds* — that would mean the annotations have
// silently stopped doing anything (macro gate broken, attribute typo, ...).
//
// Not part of any CMake target; only the CI script touches it.

#include "lms/core/sync.hpp"

namespace {

class Counter {
 public:
  void increment() {
    lms::core::sync::LockGuard lock(mu_);
    ++value_;
  }

  // BUG (deliberate): reads value_ without mu_ — TSA must reject this.
  long read_unlocked() const { return value_; }

 private:
  mutable lms::core::sync::Mutex mu_{lms::core::sync::Rank::kLogging,
                                     "negative.guarded_by"};
  long value_ LMS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.increment();
  return static_cast<int>(c.read_unlocked());
}
