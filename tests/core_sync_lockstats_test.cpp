// Lock-contention statistics tests. This binary pins LMS_SYNC_LOCK_STATS=1
// (see tests/CMakeLists.txt) so the instrumentation is active regardless of
// the build-wide -DLMS_LOCK_STATS setting; like the rank-checker suites it
// is header-only (no lms:: library deps), because the wrapper layout differs
// with the macro and must not mix with library objects compiled without it.
//
// Also covers the core::runtime registry (BoundedQueue watermarks, LoopStats
// duty cycles) — header-only as well, BoundedQueue being a template.

#include "lms/core/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "lms/core/runtime.hpp"
#include "lms/util/queue.hpp"

namespace csync = lms::core::sync;
namespace lockstats = lms::core::sync::lockstats;
namespace runtime = lms::core::runtime;

namespace {

/// Find a site in the ranking by name; nullopt if absent.
std::optional<lockstats::SiteSnapshot> find_site(const char* name) {
  for (const lockstats::SiteSnapshot& s : lockstats::snapshot()) {
    if (s.name != nullptr && std::string(s.name) == name) return s;
  }
  return std::nullopt;
}

void spin_for_ns(std::uint64_t ns) {
  const std::uint64_t start = lockstats::now_ns();
  while (lockstats::now_ns() - start < ns) {
  }
}

class LockStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lockstats::set_enabled(true);
    lockstats::reset();
  }
};

TEST_F(LockStatsTest, StatsAreCompiledInForThisBinary) {
  static_assert(csync::kLockStatsEnabled);
  EXPECT_TRUE(lockstats::enabled());
}

TEST_F(LockStatsTest, UncontendedLockCountsAcquisitionsOnly) {
  csync::Mutex mu(csync::Rank::kQueue, "test.uncontended");
  for (int i = 0; i < 10; ++i) {
    mu.lock();
    spin_for_ns(1000);
    mu.unlock();
  }
  const auto site = find_site("test.uncontended");
  ASSERT_TRUE(site.has_value());
  EXPECT_EQ(site->acquisitions, 10u);
  EXPECT_EQ(site->contended, 0u);
  EXPECT_EQ(site->wait_ns_total, 0u);
  EXPECT_GT(site->hold_ns_total, 0u);
  EXPECT_GE(site->hold_ns_max, 1000u);
}

TEST_F(LockStatsTest, ContendedLockRecordsWaits) {
  // Deterministic contention (robust on single-core runners): the main
  // thread holds the mutex while a second thread blocks in lock().
  csync::Mutex mu(csync::Rank::kQueue, "test.contended");
  mu.lock();
  std::atomic<bool> about_to_lock{false};
  std::thread waiter([&] {
    about_to_lock.store(true);
    const csync::LockGuard lock(mu);
  });
  while (!about_to_lock.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  mu.unlock();
  waiter.join();
  const auto site = find_site("test.contended");
  ASSERT_TRUE(site.has_value());
  EXPECT_EQ(site->acquisitions, 2u);
  EXPECT_EQ(site->contended, 1u);
  EXPECT_GT(site->wait_ns_total, 1'000'000u);  // blocked for most of the 5 ms
  EXPECT_EQ(site->wait_ns_max, site->wait_ns_total);
  std::uint64_t hist_sum = 0;
  for (std::uint64_t c : site->wait_hist) hist_sum += c;
  EXPECT_EQ(hist_sum, site->contended);
  // The single wait dominates every quantile of its own histogram.
  EXPECT_GE(lockstats::wait_quantile_ns(*site, 0.99), site->wait_ns_max);
}

TEST_F(LockStatsTest, TryLockSuccessCountsFailureDoesNot) {
  csync::Mutex mu(csync::Rank::kQueue, "test.trylock");
  ASSERT_TRUE(mu.try_lock());
  std::thread failer([&mu] { EXPECT_FALSE(mu.try_lock()); });
  failer.join();
  mu.unlock();
  const auto site = find_site("test.trylock");
  ASSERT_TRUE(site.has_value());
  EXPECT_EQ(site->acquisitions, 1u);
  EXPECT_EQ(site->contended, 0u);
}

TEST_F(LockStatsTest, SharedMutexTimesExclusiveHoldsOnly) {
  csync::SharedMutex mu(csync::Rank::kTsdbMap, "test.shared");
  {
    mu.lock();
    spin_for_ns(5'000);
    mu.unlock();
  }
  {
    mu.lock_shared();
    spin_for_ns(5'000);
    mu.unlock_shared();
  }
  const auto site = find_site("test.shared");
  ASSERT_TRUE(site.has_value());
  EXPECT_EQ(site->acquisitions, 2u);  // one exclusive + one shared
  EXPECT_GE(site->hold_ns_max, 5'000u);
  // The shared hold is not timed (concurrent readers would race on the
  // owner-side scratch), so the total reflects the exclusive hold alone.
  EXPECT_LT(site->hold_ns_total, 1'000'000'000u);
}

TEST_F(LockStatsTest, SameNameAndRankSharesOneSite) {
  csync::Mutex a(csync::Rank::kTsdbShard, "test.striped", 0);
  csync::Mutex b(csync::Rank::kTsdbShard, "test.striped", 1);
  {
    const csync::LockGuard la(a);
  }
  {
    const csync::LockGuard lb(b);
  }
  std::size_t matching = 0;
  for (const auto& s : lockstats::snapshot()) {
    if (s.name != nullptr && std::string(s.name) == "test.striped") ++matching;
  }
  EXPECT_EQ(matching, 1u);
  const auto site = find_site("test.striped");
  ASSERT_TRUE(site.has_value());
  EXPECT_EQ(site->acquisitions, 2u);
}

TEST_F(LockStatsTest, ConcurrentAggregationLosesNoAcquisitions) {
  constexpr int kThreads = 8;
  constexpr int kMutexes = 4;
  constexpr int kIters = 200;
  std::vector<std::unique_ptr<csync::Mutex>> mus;
  for (int i = 0; i < kMutexes; ++i) {
    mus.push_back(std::make_unique<csync::Mutex>(csync::Rank::kQueue, "test.aggregate",
                                                 static_cast<std::uintptr_t>(i)));
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mus, t] {
      for (int i = 0; i < kIters; ++i) {
        csync::Mutex& mu = *mus[static_cast<std::size_t>((t + i) % kMutexes)];
        const csync::LockGuard lock(mu);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto site = find_site("test.aggregate");
  ASSERT_TRUE(site.has_value());
  EXPECT_EQ(site->acquisitions, static_cast<std::uint64_t>(kThreads * kIters));
}

TEST_F(LockStatsTest, DisablingStopsCounting) {
  csync::Mutex mu(csync::Rank::kQueue, "test.disabled");
  lockstats::set_enabled(false);
  {
    const csync::LockGuard lock(mu);
  }
  lockstats::set_enabled(true);
  const auto site = find_site("test.disabled");
  ASSERT_TRUE(site.has_value());  // the site itself registers at construction
  EXPECT_EQ(site->acquisitions, 0u);
  EXPECT_EQ(site->hold_ns_total, 0u);
}

TEST_F(LockStatsTest, ResetZeroesCountersButKeepsSites) {
  csync::Mutex mu(csync::Rank::kQueue, "test.reset");
  {
    const csync::LockGuard lock(mu);
  }
  ASSERT_TRUE(find_site("test.reset").has_value());
  lockstats::reset();
  const auto site = find_site("test.reset");
  ASSERT_TRUE(site.has_value());
  EXPECT_EQ(site->acquisitions, 0u);
  {
    const csync::LockGuard lock(mu);  // cached SiteStats* still valid
  }
  EXPECT_EQ(find_site("test.reset")->acquisitions, 1u);
}

TEST_F(LockStatsTest, CondVarWaitCountsReacquisition) {
  csync::Mutex mu(csync::Rank::kQueue, "test.condvar");
  csync::CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    csync::UniqueLock lock(mu);
    while (!ready) cv.wait(lock);
  });
  // Let the waiter reach the wait (releasing the mutex) before signaling.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    const csync::LockGuard lock(mu);
    ready = true;
    cv.notify_one();
  }
  waiter.join();
  const auto site = find_site("test.condvar");
  ASSERT_TRUE(site.has_value());
  // Initial acquisitions (waiter + signaler) plus one re-acquire per wakeup.
  EXPECT_GE(site->acquisitions, 3u);
}

TEST_F(LockStatsTest, WaitQuantileReadsHistogram) {
  lockstats::SiteSnapshot s{};
  s.wait_hist.fill(0);
  s.wait_hist[4] = 90;   // waits in [8, 15] ns
  s.wait_hist[10] = 10;  // waits in [512, 1023] ns
  EXPECT_EQ(lockstats::wait_quantile_ns(s, 0.5), lockstats::bucket_upper_ns(4));
  EXPECT_EQ(lockstats::wait_quantile_ns(s, 0.99), lockstats::bucket_upper_ns(10));
  lockstats::SiteSnapshot empty{};
  empty.wait_hist.fill(0);
  EXPECT_EQ(lockstats::wait_quantile_ns(empty, 0.99), 0u);
}

TEST_F(LockStatsTest, SnapshotRanksByTotalWait) {
  csync::Mutex hot(csync::Rank::kQueue, "test.rank.hot");
  csync::Mutex cold(csync::Rank::kQueue, "test.rank.cold");
  {
    const csync::LockGuard lock(cold);
  }
  std::thread holder([&hot] {
    const csync::LockGuard lock(hot);
    spin_for_ns(5'000'000);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  {
    const csync::LockGuard lock(hot);  // forced to wait on the holder
  }
  holder.join();
  const auto ranking = lockstats::snapshot();
  std::size_t hot_idx = ranking.size();
  std::size_t cold_idx = ranking.size();
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    if (ranking[i].name == nullptr) continue;
    if (std::string(ranking[i].name) == "test.rank.hot") hot_idx = i;
    if (std::string(ranking[i].name) == "test.rank.cold") cold_idx = i;
  }
  ASSERT_LT(hot_idx, ranking.size());
  ASSERT_LT(cold_idx, ranking.size());
  EXPECT_LT(hot_idx, cold_idx);  // contended site sorts first
}

// With both features pinned on, the rank checker still fires through the
// instrumented lock() path and the violation is not recorded as a wait.
#if LMS_SYNC_RANK_CHECKS
namespace {
thread_local std::string g_violation;
struct RankViolation : std::runtime_error {
  using std::runtime_error::runtime_error;
};
[[noreturn]] void throwing_handler(const char* message) {
  g_violation = message;
  throw RankViolation(message);
}
}  // namespace

TEST_F(LockStatsTest, RankCheckingInterplay) {
  static_assert(csync::kRankCheckingEnabled);
  const auto previous = csync::set_rank_violation_handler(&throwing_handler);
  csync::Mutex low(csync::Rank::kQueue, "test.interplay.low");
  csync::Mutex high(csync::Rank::kNet, "test.interplay.high");
  {
    const csync::LockGuard outer(high);
    const csync::LockGuard inner(low);
  }
  {
    csync::LockGuard inner(low);
    EXPECT_THROW(high.lock(), RankViolation);
  }
  csync::set_rank_violation_handler(previous);
  const auto low_site = find_site("test.interplay.low");
  const auto high_site = find_site("test.interplay.high");
  ASSERT_TRUE(low_site.has_value());
  ASSERT_TRUE(high_site.has_value());
  EXPECT_EQ(low_site->acquisitions, 2u);
  // The rank check runs before the instrumented acquire, so the rejected
  // lock() never reaches the stats hooks: only the legal acquisition counts.
  EXPECT_EQ(high_site->acquisitions, 1u);
  EXPECT_EQ(high_site->contended, 0u);
}
#endif  // LMS_SYNC_RANK_CHECKS

// ---------------------------------------------------------------------------
// core::runtime — queue watermarks and loop duty cycles
// ---------------------------------------------------------------------------

namespace {

std::optional<runtime::QueueSnapshot> find_queue(const std::string& name) {
  for (auto& q : runtime::queue_snapshot()) {
    if (q.name == name) return q;
  }
  return std::nullopt;
}

std::optional<runtime::LoopSnapshot> find_loop(const std::string& name) {
  for (auto& l : runtime::loop_snapshot()) {
    if (l.name == name) return l;
  }
  return std::nullopt;
}

}  // namespace

TEST(RuntimeQueueStatsTest, NamedQueueRegistersAndTracksWatermark) {
  {
    lms::util::BoundedQueue<int> q(4, "test.queue.watermark");
    ASSERT_TRUE(find_queue("test.queue.watermark").has_value());
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.push(3));
    EXPECT_TRUE(q.try_pop().has_value());
    EXPECT_TRUE(q.push(4));
    const auto s = find_queue("test.queue.watermark");
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->capacity, 4u);
    EXPECT_EQ(s->pushes, 4u);
    EXPECT_EQ(s->pops, 1u);
    EXPECT_EQ(s->depth, 3u);
    EXPECT_EQ(s->high_watermark, 3u);
    EXPECT_EQ(s->blocked_pushes, 0u);
    EXPECT_EQ(s->rejected_pushes, 0u);
  }
  // Destruction unregisters.
  EXPECT_FALSE(find_queue("test.queue.watermark").has_value());
}

TEST(RuntimeQueueStatsTest, RejectedAndBlockedPushesCounted) {
  lms::util::BoundedQueue<int> q(1, "test.queue.full");
  ASSERT_TRUE(q.push(1));
  EXPECT_FALSE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  std::thread blocked([&q] { EXPECT_TRUE(q.push(4)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(q.try_pop().has_value());  // frees the blocked pusher
  blocked.join();
  const auto s = find_queue("test.queue.full");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->rejected_pushes, 2u);
  EXPECT_EQ(s->blocked_pushes, 1u);
  EXPECT_EQ(s->pushes, 2u);
  EXPECT_EQ(s->high_watermark, 1u);
}

TEST(RuntimeQueueStatsTest, UnnamedQueueStaysUnregisteredButCounts) {
  const std::size_t before = runtime::queue_snapshot().size();
  lms::util::BoundedQueue<int> q(2);
  EXPECT_EQ(runtime::queue_snapshot().size(), before);
  ASSERT_TRUE(q.push(1));
  EXPECT_EQ(q.stats().pushes.load(), 1u);
  EXPECT_EQ(q.stats().high_watermark.load(), 1u);
}

TEST(RuntimeLoopStatsTest, DutyCycleReflectsBusyShare) {
  {
    runtime::LoopStats loop("test.loop.duty");
    for (int i = 0; i < 3; ++i) {
      {
        const runtime::BusyScope busy(loop);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const auto s = find_loop("test.loop.duty");
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->iterations, 3u);
    EXPECT_GT(s->busy_ns, 0u);
    EXPECT_GT(s->idle_ns, 0u);  // the sleeps between brackets
    EXPECT_GT(s->duty_pct, 0.0);
    EXPECT_LT(s->duty_pct, 100.0);
  }
  EXPECT_FALSE(find_loop("test.loop.duty").has_value());
}

}  // namespace
