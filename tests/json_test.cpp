// Unit and property tests for the JSON module.

#include <gtest/gtest.h>

#include <cmath>

#include "lms/json/json.hpp"
#include "lms/util/rng.hpp"

namespace lms::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null")->is_null());
  EXPECT_EQ(parse("true")->get_bool(), true);
  EXPECT_EQ(parse("false")->get_bool(), false);
  EXPECT_EQ(parse("42")->get_int(), 42);
  EXPECT_EQ(parse("-7")->get_int(), -7);
  EXPECT_DOUBLE_EQ(parse("2.5")->get_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse("1e3")->get_double(), 1000.0);
  EXPECT_EQ(parse("\"hi\"")->get_string(), "hi");
}

TEST(JsonParse, Structures) {
  const auto v = parse(R"({"a": [1, 2, {"b": "c"}], "d": null})");
  ASSERT_TRUE(v.ok()) << v.message();
  EXPECT_EQ((*v)["a"][2]["b"].as_string(), "c");
  EXPECT_TRUE((*v)["d"].is_null());
  EXPECT_EQ((*v)["a"].get_array().size(), 3u);
}

TEST(JsonParse, StringEscapes) {
  const auto v = parse(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->get_string(), "a\"b\\c\nd\teA");
}

TEST(JsonParse, UnicodeEscapeUtf8) {
  EXPECT_EQ(parse(R"("é")")->get_string(), "\xc3\xa9");      // é
  EXPECT_EQ(parse(R"("€")")->get_string(), "\xe2\x82\xac");  // €
}

TEST(JsonParse, Errors) {
  EXPECT_FALSE(parse("").ok());
  EXPECT_FALSE(parse("{").ok());
  EXPECT_FALSE(parse("[1,]").ok());
  EXPECT_FALSE(parse("{\"a\":}").ok());
  EXPECT_FALSE(parse("tru").ok());
  EXPECT_FALSE(parse("1 2").ok());
  EXPECT_FALSE(parse("\"unterminated").ok());
  EXPECT_FALSE(parse("{\"a\" 1}").ok());
}

TEST(JsonParse, DuplicateKeysKeepLast) {
  const auto v = parse(R"({"a": 1, "a": 2})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ((*v)["a"].as_int(), 2);
  EXPECT_EQ(v->get_object().size(), 1u);
}

TEST(JsonDump, Compact) {
  Object o;
  o["s"] = "x\"y";
  o["n"] = 3;
  o["arr"] = Array{Value(1), Value(true), Value(nullptr)};
  EXPECT_EQ(Value(std::move(o)).dump(), R"({"s":"x\"y","n":3,"arr":[1,true,null]})");
}

TEST(JsonDump, NonFiniteBecomesNull) {
  EXPECT_EQ(Value(std::nan("")).dump(), "null");
  EXPECT_EQ(Value(1.0 / 0.0 * 1.0).dump(), "null");
}

TEST(JsonDump, PrettyIsReparsable) {
  const auto v = parse(R"({"a":[1,{"b":2}],"c":"d"})");
  ASSERT_TRUE(v.ok());
  const auto re = parse(v->dump_pretty());
  ASSERT_TRUE(re.ok()) << re.message();
  EXPECT_EQ(*re, *v);
}

TEST(JsonObject, OrderPreservedAndOps) {
  Object o;
  o["z"] = 1;
  o["a"] = 2;
  o["m"] = 3;
  std::vector<std::string> keys;
  for (const auto& [k, _] : o) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{"z", "a", "m"}));
  EXPECT_TRUE(o.erase("a"));
  EXPECT_FALSE(o.erase("a"));
  EXPECT_EQ(o.size(), 2u);
}

TEST(JsonValue, PathLookupAndFallbacks) {
  const auto v = parse(R"({"a":{"b":{"c":7}}})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->at_path("a.b.c").as_int(), 7);
  EXPECT_TRUE(v->at_path("a.x.c").is_null());
  EXPECT_EQ(v->at_path("a.x.c").as_string("fb"), "fb");
  EXPECT_EQ((*v)["missing"].as_double(1.5), 1.5);
}

TEST(JsonValue, Equality) {
  EXPECT_EQ(*parse("{\"a\":1,\"b\":2}"), *parse("{\"b\":2,\"a\":1}"));  // order-insensitive
  EXPECT_NE(*parse("[1,2]"), *parse("[2,1]"));
  EXPECT_EQ(Value(1), Value(1.0));  // numeric cross-type equality
}

// ------------------------------------------------------ property: roundtrip

Value random_value(util::Rng& rng, int depth) {
  const int kind = static_cast<int>(rng.uniform_int(0, depth <= 0 ? 4 : 6));
  switch (kind) {
    case 0:
      return Value(nullptr);
    case 1:
      return Value(rng.bernoulli(0.5));
    case 2:
      return Value(rng.uniform_int(-1'000'000, 1'000'000));
    case 3:
      return Value(rng.normal(0, 1e6));
    case 4: {
      std::string s;
      const int len = static_cast<int>(rng.uniform_int(0, 12));
      for (int i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng.uniform_int(32, 126)));
      }
      return Value(std::move(s));
    }
    case 5: {
      Array arr;
      const int len = static_cast<int>(rng.uniform_int(0, 4));
      for (int i = 0; i < len; ++i) arr.push_back(random_value(rng, depth - 1));
      return Value(std::move(arr));
    }
    default: {
      Object obj;
      const int len = static_cast<int>(rng.uniform_int(0, 4));
      for (int i = 0; i < len; ++i) {
        obj["k" + std::to_string(i)] = random_value(rng, depth - 1);
      }
      return Value(std::move(obj));
    }
  }
}

class JsonRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(JsonRoundTrip, DumpParseIdentity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 50; ++i) {
    const Value v = random_value(rng, 3);
    const auto reparsed = parse(v.dump());
    ASSERT_TRUE(reparsed.ok()) << v.dump() << " -> " << reparsed.message();
    EXPECT_EQ(*reparsed, v) << v.dump();
    const auto repretty = parse(v.dump_pretty());
    ASSERT_TRUE(repretty.ok());
    EXPECT_EQ(*repretty, v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTrip, ::testing::Range(1, 9));

}  // namespace
}  // namespace lms::json
