// Full-stack integration tests reproducing the paper's scenarios end to end:
//   - Fig. 2: online job evaluation with per-node verdicts,
//   - Fig. 3: miniMD application-level metrics and start/end events,
//   - Fig. 4: >10-minute computation break detected online and offline,
//   - pattern classification of characteristic workloads,
//   - the whole pipeline over real TCP sockets (deployment mode).

#include <gtest/gtest.h>

#include "lms/cluster/harness.hpp"
#include "lms/core/router.hpp"
#include "lms/lineproto/codec.hpp"
#include "lms/net/tcp_http.hpp"
#include "lms/tsdb/http_api.hpp"
#include "lms/util/strings.hpp"

namespace lms {
namespace {

using util::kNanosPerMinute;
using util::kNanosPerSecond;

constexpr util::TimeNs kMin = kNanosPerMinute;

TEST(Integration, Fig4ComputeBreakDetectedOnlineAndOffline) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 4;
  cluster::ClusterHarness harness(opts);
  // compute_break: 10 min compute, 12 min break, then compute again (the
  // Fig. 4 timeline on hosts h1..h4).
  const int job = harness.submit("compute_break", "alice", 4, 40 * kMin);
  ASSERT_TRUE(harness.run_until_done(job, 90 * kMin));
  const auto* record = harness.job_record(job);

  // Online: the stream analyzer saw the break as it happened.
  const auto online = harness.online_engine().take_findings();
  std::set<std::string> hosts_fired;
  for (const auto& f : online) {
    if (f.rule == "compute_break") hosts_fired.insert(f.hostname);
  }
  EXPECT_EQ(hosts_fired.size(), 4u) << "online findings: " << online.size();

  // Offline: the rule engine re-derives the same break from the database.
  analysis::RuleEngine engine(harness.fetcher());
  for (auto& r : analysis::builtin_rules()) engine.add_rule(std::move(r));
  const auto findings = engine.evaluate_job(record->nodes, std::to_string(job),
                                            record->start_time, record->end_time);
  std::size_t breaks = 0;
  for (const auto& f : findings) {
    if (f.rule != "compute_break") continue;
    ++breaks;
    // Break starts ~10 min into the job and lasts ~12 min.
    EXPECT_NEAR(util::ns_to_seconds(f.start - record->start_time), 600.0, 60.0);
    EXPECT_NEAR(util::ns_to_seconds(f.duration()), 720.0, 90.0);
  }
  EXPECT_EQ(breaks, 4u);
}

TEST(Integration, Fig2OnlineEvaluationFlagsIdleJob) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 4;
  cluster::ClusterHarness harness(opts);
  const int job = harness.submit("idle", "bob", 4, 30 * kMin);
  harness.run_for(15 * kMin);

  // Evaluate "from the start of the job until the loading of the Grafana
  // dashboard" (Fig. 2).
  const auto running = harness.router().running_jobs();
  ASSERT_EQ(running.size(), 1u);
  const auto eval = harness.reporter().evaluate(std::to_string(job), running[0].nodes,
                                                running[0].start_time, harness.now());
  ASSERT_EQ(eval.hosts.size(), 4u);
  // CPU load row: critical on every node.
  const auto& cpu_row = eval.rows[0];
  ASSERT_EQ(cpu_row.check.label, "CPU load");
  for (const auto& cell : cpu_row.cells) {
    EXPECT_EQ(cell.verdict, analysis::Verdict::kCritical);
  }
  // The job classifies as idle with maximal optimization potential.
  EXPECT_EQ(eval.classification.pattern, analysis::Pattern::kIdle);
  EXPECT_DOUBLE_EQ(eval.classification.optimization_potential, 1.0);
  // The idle rule fired on every node.
  std::set<std::string> hosts;
  for (const auto& f : eval.findings) {
    if (f.rule == "idle_node") hosts.insert(f.hostname);
  }
  EXPECT_EQ(hosts.size(), 4u);
}

TEST(Integration, Fig3MiniMdAppMetricsAndEvents) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 4;
  cluster::ClusterHarness harness(opts);
  const int job = harness.submit("minimd", "carol", 4, 10 * kMin);
  ASSERT_TRUE(harness.run_until_done(job, 30 * kMin));
  const auto* record = harness.job_record(job);
  const std::string job_str = std::to_string(job);

  // The four Fig. 3 series exist, tagged with the job.
  for (const char* field : {"runtime_100iters", "pressure", "temperature", "energy"}) {
    auto series = harness.fetcher().fetch({"usermetric", field}, {{"jobid", job_str}},
                                          record->start_time, record->end_time + kMin);
    ASSERT_TRUE(series.ok()) << field;
    // 10 min at 50 iters/s = 30000 iters -> ~300 reports per field.
    EXPECT_GT(series->size(), 250u) << field;
    EXPECT_LT(series->size(), 350u) << field;
  }

  // Physically sensible values: temperature equilibrates between 0.2 and 2,
  // runtime per 100 iterations is ~2 s.
  auto temp = harness.fetcher().fetch({"usermetric", "temperature"}, {{"jobid", job_str}},
                                      record->start_time, record->end_time + kMin);
  EXPECT_GT(temp->mean(), 0.2);
  EXPECT_LT(temp->mean(), 2.0);
  auto runtime = harness.fetcher().fetch({"usermetric", "runtime_100iters"},
                                         {{"jobid", job_str}}, record->start_time,
                                         record->end_time + kMin);
  EXPECT_NEAR(runtime->mean(), 2.0, 0.2);

  // Start/end events around the run (dark dashed lines in Fig. 3).
  tsdb::Database* db = harness.storage().find_database("lms");
  const auto ev_series = db->series_matching("userevents", {{"jobid", job_str}});
  ASSERT_FALSE(ev_series.empty());
  std::vector<std::string> texts;
  for (const auto* s : ev_series) {
    const auto it = s->columns.find("text");
    if (it == s->columns.end()) continue;
    for (const auto& v : it->second.values()) texts.push_back(v.as_string());
  }
  EXPECT_NE(std::find(texts.begin(), texts.end(), "start of minimd"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "end of minimd"), texts.end());
}

TEST(Integration, PatternClassificationPerWorkload) {
  struct Case {
    const char* workload;
    analysis::Pattern expected;
  };
  const Case cases[] = {
      {"stream", analysis::Pattern::kBandwidthSaturation},
      {"dgemm", analysis::Pattern::kComputeBound},
      {"idle", analysis::Pattern::kIdle},
      {"imbalanced", analysis::Pattern::kLoadImbalance},
      {"scalar", analysis::Pattern::kScalarCode},
      {"latency", analysis::Pattern::kMemoryLatencyBound},
  };
  for (const auto& c : cases) {
    cluster::ClusterHarness::Options opts;
    opts.nodes = 4;
    // All HPM groups needed by the signature builder.
    opts.hpm_groups = {"MEM_DP", "FLOPS_DP", "BRANCH"};
    cluster::ClusterHarness harness(opts);
    const int job = harness.submit(c.workload, "user", 4, 10 * kMin);
    ASSERT_TRUE(harness.run_until_done(job, 30 * kMin)) << c.workload;
    const auto* record = harness.job_record(job);
    const auto sig = analysis::signature_from_db(harness.fetcher(), record->nodes,
                                                 std::to_string(job), record->start_time,
                                                 record->end_time, *harness.options().arch);
    const auto result = analysis::DecisionTree::default_tree().classify(sig);
    EXPECT_EQ(result.pattern, c.expected)
        << c.workload << " classified as " << analysis::pattern_name(result.pattern);
  }
}

TEST(Integration, MpiToolingDataShowsImbalance) {
  // §IV planned feature, implemented: PMPI-style profiling data flows
  // through libusermetric; the waiting ranks of an imbalanced job show high
  // MPI time fractions while the overloaded rank does not.
  cluster::ClusterHarness::Options opts;
  opts.nodes = 4;
  cluster::ClusterHarness harness(opts);
  const int job = harness.submit("imbalanced", "alice", 4, 10 * kMin);
  ASSERT_TRUE(harness.run_until_done(job, 30 * kMin));
  const std::string job_str = std::to_string(job);
  const auto* record = harness.job_record(job);

  auto heavy = harness.fetcher().fetch({"usermetric", "mpi_time_fraction"},
                                       {{"jobid", job_str}, {"rank", "0"}},
                                       record->start_time, record->end_time + kMin);
  auto light = harness.fetcher().fetch({"usermetric", "mpi_time_fraction"},
                                       {{"jobid", job_str}, {"rank", "2"}},
                                       record->start_time, record->end_time + kMin);
  ASSERT_TRUE(heavy.ok());
  ASSERT_TRUE(light.ok());
  ASSERT_FALSE(heavy->empty());
  ASSERT_FALSE(light->empty());
  EXPECT_LT(heavy->mean(), 0.1);
  EXPECT_GT(light->mean(), 0.5);
  // Waiting happens in synchronizing calls.
  auto sync = harness.fetcher().fetch({"usermetric", "mpi_sync_fraction"},
                                      {{"jobid", job_str}, {"rank", "2"}},
                                      record->start_time, record->end_time + kMin);
  ASSERT_FALSE(sync->empty());
  EXPECT_GT(sync->mean(), 0.8);
}

TEST(Integration, MemleakTriggersMemoryRule) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 1;
  cluster::ClusterHarness harness(opts);
  // 64 GB node, leak starts at 4 GB and grows 120 MB/s -> hits 95% after
  // ~8 minutes; run 15.
  const int job = harness.submit("memleak", "dave", 1, 15 * kMin);
  ASSERT_TRUE(harness.run_until_done(job, 40 * kMin));
  const auto* record = harness.job_record(job);
  analysis::RuleEngine engine(harness.fetcher());
  for (auto& r : analysis::builtin_rules()) engine.add_rule(std::move(r));
  const auto findings = engine.evaluate_job(record->nodes, std::to_string(job),
                                            record->start_time, record->end_time);
  bool found = false;
  for (const auto& f : findings) {
    if (f.rule == "memory_exceeded") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Integration, MultipleJobsIsolatedByTags) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 4;
  cluster::ClusterHarness harness(opts);
  const int a = harness.submit("dgemm", "alice", 2, 5 * kMin);
  const int b = harness.submit("stream", "bob", 2, 5 * kMin);
  harness.run_for(3 * kMin);
  EXPECT_EQ(harness.scheduler().running().size(), 2u);

  // Each job's metrics carry only its own tags.
  tsdb::Database* db = harness.storage().find_database("lms");
  const auto a_series = db->series_matching("likwid_mem_dp", {{"jobid", std::to_string(a)}});
  const auto b_series = db->series_matching("likwid_mem_dp", {{"jobid", std::to_string(b)}});
  ASSERT_FALSE(a_series.empty());
  ASSERT_FALSE(b_series.empty());
  for (const auto* s : a_series) EXPECT_EQ(s->tag("user"), "alice");
  for (const auto* s : b_series) EXPECT_EQ(s->tag("user"), "bob");
  // Node sets are disjoint.
  std::set<std::string> a_hosts, b_hosts;
  for (const auto* s : a_series) a_hosts.emplace(s->tag("hostname"));
  for (const auto* s : b_series) b_hosts.emplace(s->tag("hostname"));
  for (const auto& h : a_hosts) EXPECT_EQ(b_hosts.count(h), 0u);

  // dgemm's flop rate clearly exceeds stream's.
  auto a_flops = harness.fetcher().fetch({"likwid_mem_dp", "dp_mflop_per_s"},
                                         {{"jobid", std::to_string(a)}}, 0, harness.now());
  auto b_flops = harness.fetcher().fetch({"likwid_mem_dp", "dp_mflop_per_s"},
                                         {{"jobid", std::to_string(b)}}, 0, harness.now());
  EXPECT_GT(a_flops->mean(), 5 * b_flops->mean());
}

TEST(Integration, OnlineFindingsRecordedAsAlerts) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 2;
  opts.record_findings = true;
  cluster::ClusterHarness harness(opts);
  const int job = harness.submit("idle", "carol", 2, 20 * kMin);
  ASSERT_TRUE(harness.run_until_done(job, 60 * kMin));
  // Findings landed in the DB as queryable alert events.
  const std::string job_str = std::to_string(job);
  tsdb::Database* db = harness.storage().find_database("lms");
  const auto series = db->series_matching("alerts", {{"jobid", job_str}});
  ASSERT_FALSE(series.empty());
  std::set<std::string> rules;
  for (const auto* s : series) rules.emplace(s->tag("rule"));
  EXPECT_TRUE(rules.count("idle_node"));
}

TEST(Integration, MiniMdReportsOmpToolingData) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 2;
  cluster::ClusterHarness harness(opts);
  const int job = harness.submit("minimd", "alice", 2, 10 * kMin);
  ASSERT_TRUE(harness.run_until_done(job, 30 * kMin));
  const std::string job_str = std::to_string(job);
  auto frac = harness.fetcher().fetch({"usermetric", "omp_parallel_fraction"},
                                      {{"jobid", job_str}}, 0, harness.now());
  auto eff = harness.fetcher().fetch({"usermetric", "omp_load_efficiency"},
                                     {{"jobid", job_str}}, 0, harness.now());
  ASSERT_TRUE(frac.ok());
  ASSERT_FALSE(frac->empty());
  EXPECT_NEAR(frac->mean(), 0.85, 0.1);
  ASSERT_FALSE(eff->empty());
  EXPECT_GT(eff->mean(), 0.9);  // balanced threads
}

TEST(Integration, AggregatorProducesJobLevelSeries) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 4;
  opts.enable_aggregator = true;
  cluster::ClusterHarness harness(opts);
  const int job = harness.submit("dgemm", "alice", 4, 10 * kMin);
  ASSERT_TRUE(harness.run_until_done(job, 30 * kMin));
  const std::string job_str = std::to_string(job);

  // Job-level aggregate series exist: the windowed cross-node mean matches
  // the raw per-host values, and all 4 nodes contributed to each window.
  auto mean = harness.fetcher().fetch({"likwid_mem_dp_job", "dp_mflop_per_s_mean"},
                                      {{"jobid", job_str}}, 0, harness.now());
  auto nodes = harness.fetcher().fetch({"likwid_mem_dp_job", "dp_mflop_per_s_nodes"},
                                       {{"jobid", job_str}}, 0, harness.now());
  auto raw = harness.fetcher().fetch({"likwid_mem_dp", "dp_mflop_per_s"},
                                     {{"jobid", job_str}}, 0, harness.now());
  ASSERT_TRUE(mean.ok());
  ASSERT_FALSE(mean->empty());
  ASSERT_FALSE(nodes->empty());
  EXPECT_NEAR(mean->mean(), raw->mean(), 0.02 * raw->mean());
  EXPECT_NEAR(nodes->mean(), 4.0, 0.01);
  // min <= mean <= max in every window.
  auto mn = harness.fetcher().fetch({"likwid_mem_dp_job", "dp_mflop_per_s_min"},
                                    {{"jobid", job_str}}, 0, harness.now());
  auto mx = harness.fetcher().fetch({"likwid_mem_dp_job", "dp_mflop_per_s_max"},
                                    {{"jobid", job_str}}, 0, harness.now());
  ASSERT_EQ(mn->size(), mean->size());
  ASSERT_EQ(mx->size(), mean->size());
  for (std::size_t i = 0; i < mean->size(); ++i) {
    EXPECT_LE(mn->values[i], mean->values[i] + 1e-9);
    EXPECT_LE(mean->values[i], mx->values[i] + 1e-9);
  }
  EXPECT_GT(harness.aggregator()->stats().points_emitted, 0u);
}

TEST(Integration, RollupsSurviveRetention) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 2;
  opts.enable_rollups = true;
  opts.retention = 15 * kMin;  // raw data lives 15 minutes
  cluster::ClusterHarness harness(opts);
  const int job = harness.submit("dgemm", "alice", 2, 30 * kMin);
  ASSERT_TRUE(harness.run_until_done(job, 60 * kMin));
  harness.run_for(20 * kMin);  // idle on; retention keeps mowing

  tsdb::Database* db = harness.storage().find_database("lms");
  ASSERT_NE(db, nullptr);
  // Raw cpu data older than the retention window is gone...
  const auto* record = harness.job_record(job);
  auto early_raw = harness.fetcher().fetch({"cpu", "user_percent"},
                                           {{"jobid", std::to_string(job)}},
                                           record->start_time, record->start_time + 5 * kMin);
  ASSERT_TRUE(early_raw.ok());
  EXPECT_TRUE(early_raw->empty());
  // ...but the 5-minute rollups still cover the whole job.
  auto rollup = harness.fetcher().fetch({"cpu_rollup", "user_percent_mean"},
                                        {{"jobid", std::to_string(job)}},
                                        record->start_time, record->end_time);
  ASSERT_TRUE(rollup.ok());
  ASSERT_GE(rollup->size(), 5u);
  EXPECT_NEAR(rollup->mean(), 98.0, 3.0);  // dgemm keeps the CPUs busy
  auto hpm_rollup = harness.fetcher().fetch({"likwid_mem_dp_rollup", "dp_mflop_per_s_mean"},
                                            {{"jobid", std::to_string(job)}},
                                            record->start_time, record->end_time);
  ASSERT_FALSE(hpm_rollup->empty());
}

TEST(Integration, FullPipelineOverTcpSockets) {
  // Deployment mode: DB and router as real HTTP servers, collector posting
  // over TCP — the "existing infrastructure" integration path.
  tsdb::Storage storage;
  util::SimClock clock(1000 * kNanosPerSecond);
  tsdb::HttpApi db_api(storage, clock);
  net::TcpHttpServer db_server(db_api.handler());
  ASSERT_TRUE(db_server.start().ok());

  net::TcpHttpClient router_db_client;
  core::MetricsRouter::Options ropts;
  ropts.db_url = db_server.url();
  core::MetricsRouter router(router_db_client, clock, ropts);
  net::TcpHttpServer router_server(router.handler());
  ASSERT_TRUE(router_server.start().ok());

  net::TcpHttpClient client;
  // Job signal, like a scheduler prolog would send with curl.
  auto resp = client.post(router_server.url() + "/job/start",
                          R"({"jobid":"77","user":"eve","nodes":["n1"]})",
                          "application/json");
  ASSERT_TRUE(resp.ok()) << resp.message();
  EXPECT_EQ(resp->status, 204);
  // Metric delivery, like a curl cronjob (paper §III-A).
  resp = client.post(router_server.url() + "/write?db=lms",
                     "cpu,hostname=n1 user_percent=88 999000000000\n", "text/plain");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 204);
  // Query back through the DB's HTTP API; enrichment happened en route.
  resp = client.get(db_server.url() + "/query?db=lms&q=" +
                    util::url_encode("SELECT user_percent FROM cpu WHERE jobid='77'"));
  ASSERT_TRUE(resp.ok());
  EXPECT_NE(resp->body.find("88"), std::string::npos);
  router_server.stop();
  db_server.stop();
}

TEST(Integration, DbOutageLosesNoPoints) {
  // Failure injection: the database endpoint disappears mid-run. Agents
  // keep their batches in the retry queue and deliver once the DB returns —
  // the cpu series ends up gap-free.
  cluster::ClusterHarness::Options opts;
  opts.nodes = 2;
  cluster::ClusterHarness harness(opts);
  const int job = harness.submit("dgemm", "alice", 2, 30 * kMin);
  harness.run_for(5 * kMin);

  // Outage: 10 minutes without a database.
  harness.network().unbind(cluster::ClusterHarness::kDbEndpoint);
  harness.run_for(10 * kMin);
  // Nothing new could land.
  tsdb::Database* db = harness.storage().find_database("lms");
  const auto count_cpu = [&] {
    std::size_t n = 0;
    for (const auto* s : db->series_matching("cpu", {{"hostname", "h1"}})) {
      const auto it = s->columns.find("user_percent");
      if (it != s->columns.end()) n += it->second.size();
    }
    return n;
  };
  const std::size_t during_outage = count_cpu();

  // Recovery.
  harness.network().bind(cluster::ClusterHarness::kDbEndpoint,
                         harness.db_api().handler());
  harness.run_for(10 * kMin);
  const std::size_t after = count_cpu();
  // 25 minutes at 10 s cadence ~ 150 samples; allow slack for baselines.
  EXPECT_GT(after, during_outage + 100);

  // Gap-free: consecutive cpu samples for the job never more than ~2
  // collection intervals apart, despite the outage.
  const auto series = harness.fetcher().fetch_host(
      {"cpu", "user_percent"}, "h1", std::to_string(job), 0, harness.now());
  ASSERT_TRUE(series.ok());
  util::TimeNs max_gap = 0;
  for (std::size_t i = 1; i < series->times.size(); ++i) {
    max_gap = std::max(max_gap, series->times[i] - series->times[i - 1]);
  }
  EXPECT_LE(max_gap, 21 * kNanosPerSecond);
}

TEST(Integration, PortableAcrossArchitectures) {
  // The §II portability claim: swap the simulated CPU; nothing above the
  // HPM layer changes — same pipeline, same classification logic.
  cluster::ClusterHarness::Options opts;
  opts.nodes = 2;
  opts.arch = &hpm::simx86_small();
  cluster::ClusterHarness harness(opts);
  const int job = harness.submit("stream", "alice", 2, 10 * kMin);
  ASSERT_TRUE(harness.run_until_done(job, 30 * kMin));
  const auto* record = harness.job_record(job);
  const auto sig = analysis::signature_from_db(harness.fetcher(), record->nodes,
                                               std::to_string(job), record->start_time,
                                               record->end_time, hpm::simx86_small());
  // Saturation is judged against *this* architecture's peak.
  EXPECT_GT(sig.mem_bw_fraction, 0.7);
  EXPECT_EQ(analysis::DecisionTree::default_tree().classify(sig).pattern,
            analysis::Pattern::kBandwidthSaturation);
}

TEST(Integration, RouterStatsConsistentAfterRun) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 2;
  cluster::ClusterHarness harness(opts);
  const int job = harness.submit("minimd", "alice", 2, 5 * kMin);
  ASSERT_TRUE(harness.run_until_done(job, 20 * kMin));
  const auto stats = harness.router().stats();
  EXPECT_EQ(stats.points_in, stats.points_out);
  EXPECT_EQ(stats.parse_errors, 0u);
  EXPECT_EQ(stats.forward_failures, 0u);
  EXPECT_EQ(stats.jobs_started, 1u);
  EXPECT_EQ(stats.jobs_ended, 1u);
  // Everything the router forwarded is in the DB.
  tsdb::Database* db = harness.storage().find_database("lms");
  EXPECT_EQ(db->sample_count() > 0, true);
  // No host keeps job tags after the job ended.
  EXPECT_EQ(harness.router().tag_store().host_count(), 0u);
}

}  // namespace
}  // namespace lms
