// Tests for the cluster module: the miniMD proxy's physics, the workload
// library's profiles, and the harness's basic lifecycle.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <set>

#include "lms/cluster/harness.hpp"
#include "lms/cluster/minimd.hpp"
#include "lms/cluster/workload.hpp"
#include "lms/tsdb/trace_assembly.hpp"

namespace lms::cluster {
namespace {

using util::kNanosPerMinute;
using util::kNanosPerSecond;

// ---------------------------------------------------------------- minimd

TEST(MiniMdTest, InitialConditions) {
  MiniMd md(MiniMd::Params{}, 1);
  EXPECT_EQ(md.natoms(), 4 * 4 * 4 * 4);  // fcc, 4 cells/side
  // Initial kinetic temperature matches the requested one.
  EXPECT_NEAR(md.temperature(), 1.44, 1e-9);
  // LJ fcc lattice at rho=0.8442 has large negative potential energy.
  EXPECT_LT(md.potential_energy(), -4.0);
  EXPECT_GT(md.box_length(), 0.0);
}

TEST(MiniMdTest, VelocityVerletConservesEnergyApproximately) {
  MiniMd md(MiniMd::Params{}, 2);
  md.step(20);  // settle past the first few steps
  const double e0 = md.total_energy();
  md.step(100);
  const double e1 = md.total_energy();
  // Reduced-unit LJ with dt=0.005: drift well under 1% over 100 steps.
  EXPECT_NEAR(e1, e0, std::abs(e0) * 0.01);
  EXPECT_EQ(md.steps_done(), 120);
}

TEST(MiniMdTest, EquilibratesToPositiveObservables) {
  MiniMd md(MiniMd::Params{}, 3);
  md.step(150);
  // After equilibration half the initial kinetic energy went into potential;
  // temperature stays positive and finite, pressure is finite.
  EXPECT_GT(md.temperature(), 0.2);
  EXPECT_LT(md.temperature(), 2.0);
  EXPECT_TRUE(std::isfinite(md.pressure()));
  EXPECT_TRUE(std::isfinite(md.total_energy()));
}

TEST(MiniMdTest, DeterministicForSeed) {
  MiniMd a(MiniMd::Params{}, 7);
  MiniMd b(MiniMd::Params{}, 7);
  a.step(50);
  b.step(50);
  EXPECT_DOUBLE_EQ(a.total_energy(), b.total_energy());
  EXPECT_DOUBLE_EQ(a.pressure(), b.pressure());
}

// ---------------------------------------------------------------- workloads

TEST(WorkloadFactory, AllNamesConstruct) {
  for (const auto& name : workload_names()) {
    auto w = make_workload(name, 1);
    ASSERT_NE(w, nullptr) << name;
    EXPECT_EQ(w->name(), name);
  }
  EXPECT_EQ(make_workload("not_a_workload", 1), nullptr);
}

TEST(WorkloadProfiles, MatchIntent) {
  const auto& arch = hpm::simx86();
  util::Rng rng(1);
  const util::TimeNs t = kNanosPerMinute;

  auto act = make_workload("dgemm", 1)->activity(0, 1, t, arch, rng);
  // Compute bound: high flops, low membw.
  EXPECT_GT(act.hpm.cores[0].flops_dp_per_sec, 0.5 * arch.peak_dp_flops_per_core);
  EXPECT_LT(act.hpm.sockets[0].mem_read_bw_bytes_per_sec +
                act.hpm.sockets[0].mem_write_bw_bytes_per_sec,
            0.3 * arch.peak_mem_bw_per_socket);

  act = make_workload("stream", 1)->activity(0, 1, t, arch, rng);
  EXPECT_GT(act.hpm.sockets[0].mem_read_bw_bytes_per_sec +
                act.hpm.sockets[0].mem_write_bw_bytes_per_sec,
            0.7 * arch.peak_mem_bw_per_socket);

  act = make_workload("idle", 1)->activity(0, 1, t, arch, rng);
  EXPECT_LT(act.kernel.cpu_user_fraction, 0.05);

  act = make_workload("scalar", 1)->activity(0, 1, t, arch, rng);
  EXPECT_LT(act.hpm.cores[0].dp_simd_fraction, 0.1);

  act = make_workload("latency", 1)->activity(0, 1, t, arch, rng);
  EXPECT_LT(act.hpm.cores[0].ipc, 0.5);
}

TEST(WorkloadProfiles, ComputeBreakPhases) {
  auto w = make_workload("compute_break", 1);
  const auto& arch = hpm::simx86();
  util::Rng rng(1);
  // Break is minutes 10..22.
  auto before = w->activity(0, 4, 5 * kNanosPerMinute, arch, rng);
  auto during = w->activity(0, 4, 15 * kNanosPerMinute, arch, rng);
  auto after = w->activity(0, 4, 30 * kNanosPerMinute, arch, rng);
  EXPECT_GT(before.kernel.cpu_user_fraction, 0.9);
  EXPECT_LT(during.kernel.cpu_user_fraction, 0.1);
  EXPECT_GT(after.kernel.cpu_user_fraction, 0.9);
  EXPECT_LT(during.hpm.cores[0].flops_dp_per_sec, 1.0);
}

TEST(WorkloadProfiles, ImbalancedNodeZeroHeavy) {
  auto w = make_workload("imbalanced", 1);
  const auto& arch = hpm::simx86();
  util::Rng rng(1);
  auto heavy = w->activity(0, 4, kNanosPerMinute, arch, rng);
  auto light = w->activity(2, 4, kNanosPerMinute, arch, rng);
  EXPECT_GT(heavy.hpm.cores[0].flops_dp_per_sec, 3 * light.hpm.cores[0].flops_dp_per_sec);
}

TEST(WorkloadProfiles, MemleakGrowsOverTime) {
  auto w = make_workload("memleak", 1);
  const auto& arch = hpm::simx86();
  util::Rng rng(1);
  auto early = w->activity(0, 1, kNanosPerMinute, arch, rng);
  auto late = w->activity(0, 1, 100 * kNanosPerMinute, arch, rng);
  EXPECT_GT(late.kernel.mem_used_bytes, early.kernel.mem_used_bytes + 1e9);
}

// ---------------------------------------------------------------- harness

TEST(HarnessTest, JobLifecycleAndRecords) {
  ClusterHarness::Options opts;
  opts.nodes = 3;
  ClusterHarness harness(opts);
  EXPECT_EQ(harness.node_names(), (std::vector<std::string>{"h1", "h2", "h3"}));

  const int job = harness.submit("dgemm", "alice", 2, 3 * kNanosPerMinute);
  EXPECT_GT(job, 0);
  EXPECT_EQ(harness.submit("not_a_workload", "x", 1, kNanosPerMinute), -1);

  ASSERT_TRUE(harness.run_until_done(job, 10 * kNanosPerMinute));
  const auto* record = harness.job_record(job);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->workload, "dgemm");
  EXPECT_EQ(record->user, "alice");
  EXPECT_EQ(record->nodes.size(), 2u);
  EXPECT_GT(record->end_time, record->start_time);
  // ~3 simulated minutes.
  EXPECT_NEAR(util::ns_to_seconds(record->end_time - record->start_time), 180.0, 5.0);
}

TEST(HarnessTest, MetricsFlowEndToEnd) {
  ClusterHarness::Options opts;
  opts.nodes = 2;
  ClusterHarness harness(opts);
  const int job = harness.submit("stream", "bob", 2, 5 * kNanosPerMinute);
  harness.run_for(2 * kNanosPerMinute);

  // System + HPM measurements for the job exist and carry the job tags.
  tsdb::Database* db = harness.storage().find_database("lms");
  ASSERT_NE(db, nullptr);
  const std::string job_str = std::to_string(job);
  EXPECT_FALSE(db->series_matching("cpu", {{"jobid", job_str}}).empty());
  EXPECT_FALSE(db->series_matching("memory", {{"jobid", job_str}}).empty());
  EXPECT_FALSE(db->series_matching("likwid_mem_dp", {{"jobid", job_str}}).empty());
  EXPECT_FALSE(
      db->series_matching("likwid_mem_dp", {{"user", "bob"}, {"hostname", "h1"}}).empty());
  // Job start annotation event present.
  EXPECT_FALSE(db->series_matching("events", {{"jobid", job_str}}).empty());

  // The bandwidth measured via the full pipeline matches the stream profile
  // (~85% of peak).
  const auto series =
      harness.fetcher().fetch_host({"likwid_mem_dp", "memory_bandwidth_mbytes_per_s"}, "h1",
                                   job_str, 0, harness.now());
  ASSERT_TRUE(series.ok());
  ASSERT_FALSE(series->empty());
  const auto& arch = *harness.options().arch;
  const double peak_mb = arch.peak_mem_bw_per_socket * arch.sockets / 1e6;
  EXPECT_NEAR(series->mean(), 0.85 * peak_mb, 0.08 * peak_mb);
}

TEST(HarnessTest, QueueingWhenClusterFull) {
  ClusterHarness::Options opts;
  opts.nodes = 2;
  ClusterHarness harness(opts);
  const int a = harness.submit("dgemm", "alice", 2, 2 * kNanosPerMinute);
  const int b = harness.submit("stream", "bob", 2, 2 * kNanosPerMinute);
  harness.run_for(30 * kNanosPerSecond);
  EXPECT_EQ(harness.scheduler().running().size(), 1u);
  EXPECT_EQ(harness.scheduler().pending().size(), 1u);
  ASSERT_TRUE(harness.run_until_done(b, 10 * kNanosPerMinute));
  EXPECT_NE(harness.job_record(a), nullptr);
  EXPECT_NE(harness.job_record(b), nullptr);
  // b started only after a finished.
  EXPECT_GE(harness.job_record(b)->start_time, harness.job_record(a)->end_time);
}

TEST(HarnessTest, IdleNodesStayQuiet) {
  ClusterHarness::Options opts;
  opts.nodes = 2;
  ClusterHarness harness(opts);
  const int job = harness.submit("dgemm", "alice", 1, 5 * kNanosPerMinute);
  harness.run_for(2 * kNanosPerMinute);
  // Node h2 idles: its CPU metric is near zero, and unlike h1 it carries no
  // job tag.
  const auto busy_host = harness.job_record(job)->nodes[0];
  const std::string idle_host = busy_host == "h1" ? "h2" : "h1";
  auto idle_cpu = harness.fetcher().fetch({"cpu", "user_percent"},
                                          {{"hostname", idle_host}}, 0, harness.now());
  ASSERT_TRUE(idle_cpu.ok());
  ASSERT_FALSE(idle_cpu->empty());
  EXPECT_LT(idle_cpu->mean(), 5.0);
  tsdb::Database* db = harness.storage().find_database("lms");
  EXPECT_TRUE(db->series_matching("cpu", {{"hostname", idle_host},
                                          {"jobid", std::to_string(job)}})
                  .empty());
}

TEST(HarnessTest, PerUserDuplicationOption) {
  ClusterHarness::Options opts;
  opts.nodes = 2;
  opts.duplicate_per_user = true;
  ClusterHarness harness(opts);
  harness.submit("minimd", "carol", 2, 3 * kNanosPerMinute);
  harness.run_for(kNanosPerMinute);
  tsdb::Database* user_db = harness.storage().find_database("user_carol");
  ASSERT_NE(user_db, nullptr);
  EXPECT_GT(user_db->sample_count(), 0u);
}

TEST(HarnessTest, SelfScrapeFeedsLmsInternal) {
  ClusterHarness::Options opts;
  opts.nodes = 2;
  opts.enable_self_scrape = true;
  ClusterHarness harness(opts);
  harness.submit("minimd", "alice", 2, 3 * kNanosPerMinute);
  harness.run_for(5 * kNanosPerMinute);

  ASSERT_NE(harness.self_scrape(), nullptr);
  EXPECT_GE(harness.self_scrape()->scrapes(), 4u);
  EXPECT_EQ(harness.self_scrape()->failures(), 0u);

  // The registry snapshots flowed through the router into the lms database
  // and are queryable like any measurement: the router's own ingest counter
  // grows over sim time.
  auto series = tsdb::Engine(harness.storage())
                    .query("lms",
                           "SELECT last(value) FROM lms_internal WHERE "
                           "metric='router_points_in'",
                           harness.now());
  ASSERT_TRUE(series.ok());
  ASSERT_FALSE(series->series.empty());
  ASSERT_FALSE(series->series[0].values.empty());
  EXPECT_GT(series->series[0].values[0][1].as_double(), 0.0);

  // Per-node collector gauges carry the hostname label into tags.
  tsdb::Database* db = harness.storage().find_database("lms");
  ASSERT_NE(db, nullptr);
  EXPECT_FALSE(db->series_matching("lms_internal",
                                   {{"metric", "collector_points_collected"},
                                    {"hostname", "h1"}})
                   .empty());
  // The internals dashboard renders from the same measurement.
  const auto dash = harness.dashboards().generate_internals_dashboard(harness.now());
  EXPECT_NE(harness.dashboards().find_dashboard("internals"), nullptr);
  EXPECT_NE(dash.dump().find("lms_internal"), std::string::npos);
}

TEST(HarnessTest, DistributedTraceCoversCollectorRouterAndTsdb) {
  ClusterHarness::Options opts;
  opts.nodes = 2;
  opts.enable_tracing = true;
  opts.async_ingest = true;  // spans must survive the queued write path
  ClusterHarness harness(opts);
  obs::SpanRecorder::global().clear();

  harness.submit("dgemm", "alice", 2, 5 * kNanosPerMinute);
  harness.run_for(3 * opts.collect_interval);  // a few delivery cycles
  ASSERT_NE(harness.trace_exporter(), nullptr);
  const std::size_t exported = harness.drain_traces();
  EXPECT_GT(exported, 0u);

  // Every collector flush opens a root span; the batch carries its context
  // through the router's async ingest queue into the TSDB append. Find a
  // flush whose trace covers all three processes.
  std::set<std::string> best_components;
  std::uint64_t full_trace = 0;
  {
    // Scoped: the snapshot's shard locks must be released before the HTTP
    // requests below — the inproc handlers run on this thread and take
    // their own snapshot of the same storage (the lock-rank checker flags
    // holding tsdb.shard while entering the transport).
    const tsdb::ReadSnapshot snap = harness.storage().snapshot("lms");
    ASSERT_TRUE(snap);
    for (const tsdb::Series* s : snap->series_matching(std::string(obs::kTraceMeasurement),
                                                       {{"component", "collector"}})) {
      const auto id = obs::parse_trace_id_hex(s->tag("trace_id"));
      if (!id) continue;
      const tsdb::TraceTree tree = tsdb::assemble_trace(snap, *id);
      std::set<std::string> components;
      std::function<void(const tsdb::TraceNode&)> visit = [&](const tsdb::TraceNode& n) {
        components.insert(n.component);
        for (const auto& c : n.children) visit(c);
      };
      for (const auto& r : tree.roots) visit(r);
      if (components.count("collector") != 0u && components.count("router") != 0u &&
          components.count("tsdb") != 0u) {
        best_components = components;
        full_trace = *id;
        break;
      }
    }
  }
  ASSERT_NE(full_trace, 0u) << "no collector flush trace reached the TSDB";
  EXPECT_GE(best_components.size(), 3u);

  // The same story through the HTTP surfaces: the TSDB serves the tree, the
  // dashboard agent renders the waterfall page.
  const std::string hex = obs::trace_id_hex(full_trace);
  auto api = harness.client().get("inproc://tsdb/trace/" + hex);
  ASSERT_TRUE(api.ok());
  EXPECT_EQ(api->status, 200);
  EXPECT_NE(api->body.find("collector.flush"), std::string::npos);
  EXPECT_NE(api->body.find("tsdb.write"), std::string::npos);

  auto page = harness.client().get("inproc://grafana/trace/" + hex);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->status, 200);
  EXPECT_NE(page->headers.get_or("Content-Type", "").find("text/html"), std::string::npos);
  EXPECT_NE(page->body.find("collector.flush"), std::string::npos);
}

TEST(HarnessTest, BackpressuredWriteProducesErrorSpan) {
  // A router with room for a single point rejects a two-point batch with
  // 429 + Retry-After, and the router.write span records the backpressure.
  util::SimClock clock(0);
  net::InprocNetwork network;
  net::InprocHttpClient client(network);
  tsdb::Storage storage;
  tsdb::HttpApi db_api(storage, clock);
  network.bind("tsdb", db_api.handler());
  core::MetricsRouter::Options router_opts;
  router_opts.db_url = "inproc://tsdb";
  router_opts.async_ingest = true;
  router_opts.ingest_queue_capacity = 1;
  core::MetricsRouter router(client, clock, router_opts, nullptr);
  network.bind("router", router.handler());

  obs::SpanRecorder::global().clear();
  auto resp = client.post("inproc://router/write?db=lms",
                          "cpu,hostname=h1 v=1 10\ncpu,hostname=h1 v=2 20\n", "text/plain");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 429);
  EXPECT_FALSE(resp->headers.get_or("Retry-After", "").empty());
  EXPECT_EQ(router.stats().ingest_rejected, 2u);

  bool found = false;
  for (const auto& s : obs::SpanRecorder::global().recent(16)) {
    if (s.name == "router.write" && s.note == "error=backpressure") {
      EXPECT_FALSE(s.ok);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "no router.write span tagged error=backpressure";
}

}  // namespace
}  // namespace lms::cluster
