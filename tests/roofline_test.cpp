// Tests for the roofline analysis, the topology view and the io_heavy
// workload added on top of the core reproduction.

#include <gtest/gtest.h>

#include "lms/analysis/roofline.hpp"
#include "lms/cluster/harness.hpp"
#include "lms/cluster/workload.hpp"

namespace lms::analysis {
namespace {

using util::kNanosPerMinute;

constexpr util::TimeNs kMin = kNanosPerMinute;

TEST(Roofline, MachineModel) {
  const auto& arch = hpm::simx86();
  const RooflineResult r = roofline_evaluate(0.0, 1.0, arch);
  EXPECT_NEAR(r.peak_gflops, 588.8, 0.1);
  EXPECT_NEAR(r.peak_bandwidth_gbs, 153.6, 0.1);
  EXPECT_NEAR(r.ridge_intensity, 588.8 / 153.6, 1e-6);
}

TEST(Roofline, MemoryBoundPoint) {
  const auto& arch = hpm::simx86();
  // 20 GF/s at 100 GB/s -> OI 0.2, attainable 0.2*153.6 = 30.7 GF/s.
  const RooflineResult r = roofline_evaluate(20e9, 100e9, arch);
  EXPECT_NEAR(r.operational_intensity, 0.2, 1e-9);
  EXPECT_TRUE(r.memory_bound);
  EXPECT_NEAR(r.attainable_gflops, 30.72, 0.01);
  EXPECT_NEAR(r.efficiency, 20.0 / 30.72, 1e-3);
}

TEST(Roofline, ComputeBoundPoint) {
  const auto& arch = hpm::simx86();
  // 400 GF/s at 10 GB/s -> OI 40, attainable = compute roof.
  const RooflineResult r = roofline_evaluate(400e9, 10e9, arch);
  EXPECT_FALSE(r.memory_bound);
  EXPECT_NEAR(r.attainable_gflops, r.peak_gflops, 1e-9);
  EXPECT_NEAR(r.efficiency, 400.0 / 588.8, 1e-3);
}

TEST(Roofline, DegenerateInputs) {
  const auto& arch = hpm::simx86();
  const RooflineResult zero = roofline_evaluate(0.0, 0.0, arch);
  EXPECT_EQ(zero.operational_intensity, 0.0);
  EXPECT_EQ(zero.efficiency, 0.0);
  EXPECT_TRUE(zero.memory_bound);
  EXPECT_FALSE(zero.to_string().empty());
}

TEST(Roofline, ChartContainsJobAndRoof) {
  const RooflineResult r = roofline_evaluate(20e9, 100e9, hpm::simx86());
  const std::string chart = roofline_chart(r);
  EXPECT_NE(chart.find('X'), std::string::npos);
  EXPECT_NE(chart.find('_'), std::string::npos);
  EXPECT_NE(chart.find('+'), std::string::npos);
  EXPECT_NE(chart.find("memory-bound"), std::string::npos);
}

TEST(Roofline, FromDbMatchesWorkload) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 2;
  cluster::ClusterHarness harness(opts);
  const int job = harness.submit("stream", "alice", 2, 10 * kMin);
  ASSERT_TRUE(harness.run_until_done(job, 30 * kMin));
  const auto* record = harness.job_record(job);
  auto r = roofline_from_db(harness.fetcher(), record->nodes, std::to_string(job),
                            record->start_time, record->end_time, *harness.options().arch);
  ASSERT_TRUE(r.ok()) << r.message();
  // STREAM: firmly memory bound and close to its attainable roof.
  EXPECT_TRUE(r->memory_bound);
  EXPECT_GT(r->efficiency, 0.7);
  EXPECT_LT(r->operational_intensity, 1.0);
  // No data -> error.
  EXPECT_FALSE(roofline_from_db(harness.fetcher(), {"h9"}, "999", 0, kMin,
                                *harness.options().arch)
                   .ok());
}

TEST(Roofline, InEvaluationReport) {
  cluster::ClusterHarness::Options opts;
  opts.nodes = 2;
  cluster::ClusterHarness harness(opts);
  const int job = harness.submit("dgemm", "alice", 2, 8 * kMin);
  ASSERT_TRUE(harness.run_until_done(job, 30 * kMin));
  const auto* record = harness.job_record(job);
  const auto eval = harness.reporter().evaluate(std::to_string(job), record->nodes,
                                                record->start_time, record->end_time);
  ASSERT_TRUE(eval.roofline.has_value());
  EXPECT_FALSE(eval.roofline->memory_bound);  // dgemm is compute bound
  EXPECT_NE(render_text(eval).find("roofline:"), std::string::npos);
  const json::Value j = to_json(eval);
  EXPECT_TRUE(j["roofline"]["memory_bound"].is_bool());
  EXPECT_GT(j["roofline"]["efficiency"].as_double(), 0.5);
}

TEST(Topology, DescribesBothArchitectures) {
  for (const hpm::CounterArchitecture* arch : {&hpm::simx86(), &hpm::simx86_small()}) {
    const std::string t = hpm::topology_string(*arch);
    EXPECT_NE(t.find(arch->cpu_model), std::string::npos);
    EXPECT_NE(t.find("L3 cache"), std::string::npos);
    EXPECT_NE(t.find("Peak DP"), std::string::npos);
    EXPECT_NE(t.find("Counters"), std::string::npos);
  }
  EXPECT_NE(hpm::topology_string(hpm::simx86()).find("Sockets:        2"),
            std::string::npos);
}

TEST(IoHeavyWorkload, ProfileAndDetection) {
  auto w = cluster::make_workload("io_heavy", 1);
  ASSERT_NE(w, nullptr);
  util::Rng rng(1);
  const auto act = w->activity(0, 1, kMin, hpm::simx86(), rng);
  EXPECT_GT(act.kernel.cpu_iowait_fraction, 0.3);
  EXPECT_GT(act.kernel.disk_write_bytes_per_sec, 1e9);
  EXPECT_LT(act.hpm.cores[0].flops_dp_per_sec, 0.1 * hpm::simx86().peak_dp_flops_per_core);

  // End to end: the File I/O row in the report shows the write rate.
  cluster::ClusterHarness::Options opts;
  opts.nodes = 1;
  cluster::ClusterHarness harness(opts);
  const int job = harness.submit("io_heavy", "alice", 1, 8 * kMin);
  ASSERT_TRUE(harness.run_until_done(job, 30 * kMin));
  const auto* record = harness.job_record(job);
  const auto eval = harness.reporter().evaluate(std::to_string(job), record->nodes,
                                                record->start_time, record->end_time);
  for (const auto& row : eval.rows) {
    if (row.check.label != "File I/O") continue;
    ASSERT_EQ(row.cells.size(), 1u);
    EXPECT_NEAR(row.cells[0].value, 1200.0, 120.0);  // ~1.2 GB/s in MB/s
  }
}

}  // namespace
}  // namespace lms::analysis
