// Tests for the networking substrate: HTTP message model and codec, URL
// parsing, dispatcher, in-process transport, PUB/SUB semantics, and a real
// TCP server/client integration test.

#include <gtest/gtest.h>

#include <thread>

#include "lms/net/http.hpp"
#include "lms/net/pubsub.hpp"
#include "lms/net/tcp_http.hpp"
#include "lms/net/transport.hpp"

namespace lms::net {
namespace {

// ---------------------------------------------------------------- headers

TEST(HeaderMap, CaseInsensitive) {
  HeaderMap h;
  h.set("Content-Type", "text/plain");
  EXPECT_EQ(h.get("content-type"), "text/plain");
  h.set("CONTENT-TYPE", "application/json");
  EXPECT_EQ(h.get("Content-Type"), "application/json");
  EXPECT_EQ(h.items().size(), 1u);
  EXPECT_EQ(h.get_or("Missing", "fb"), "fb");
}

TEST(QueryParams, ParseAndEncode) {
  const auto q = QueryParams::parse("db=lms&q=SELECT%20mean%28x%29&empty=");
  EXPECT_EQ(q.get("db"), "lms");
  EXPECT_EQ(q.get("q"), "SELECT mean(x)");
  EXPECT_EQ(q.get("empty"), "");
  EXPECT_FALSE(q.get("nope").has_value());
  const auto re = QueryParams::parse(q.encode());
  EXPECT_EQ(re.get("q"), "SELECT mean(x)");
}

// ---------------------------------------------------------------- codec

TEST(HttpCodec, RequestRoundTrip) {
  HttpRequest req = HttpRequest::post("/write?db=lms", "cpu u=1\n", "text/plain");
  req.headers.set("X-Custom", "v");
  const std::string wire = req.serialize();
  std::size_t consumed = 0;
  const auto parsed = parse_request(wire, &consumed);
  ASSERT_TRUE(parsed.ok()) << parsed.message();
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(parsed->method, "POST");
  EXPECT_EQ(parsed->path, "/write");
  EXPECT_EQ(parsed->query.get("db"), "lms");
  EXPECT_EQ(parsed->body, "cpu u=1\n");
  EXPECT_EQ(parsed->headers.get("x-custom"), "v");
}

TEST(HttpCodec, ResponseRoundTrip) {
  const HttpResponse resp = HttpResponse::json(200, R"({"ok":true})");
  std::size_t consumed = 0;
  const auto parsed = parse_response(resp.serialize(), &consumed);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status, 200);
  EXPECT_TRUE(parsed->ok());
  EXPECT_EQ(parsed->body, R"({"ok":true})");
  EXPECT_EQ(parsed->headers.get("Content-Type"), "application/json");
}

TEST(HttpCodec, IncompleteInputReported) {
  std::size_t consumed = 0;
  EXPECT_FALSE(parse_request("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort", &consumed)
                   .ok());
  EXPECT_FALSE(parse_request("POST /x HT", &consumed).ok());
}

TEST(HttpCodec, PipelinedRequestsConsumeExactly) {
  const std::string two = HttpRequest::get("/a").serialize() + HttpRequest::get("/b").serialize();
  std::size_t consumed = 0;
  const auto first = parse_request(two, &consumed);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->path, "/a");
  const auto second = parse_request(two.substr(consumed), &consumed);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->path, "/b");
}

TEST(HttpCodec, BadContentLengthRejected) {
  std::size_t consumed = 0;
  EXPECT_FALSE(
      parse_request("GET / HTTP/1.1\r\nContent-Length: huh\r\n\r\n", &consumed).ok());
}

// ---------------------------------------------------------------- url

TEST(Url, ParseVariants) {
  auto u = Url::parse("http://host:8086/write?db=x");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->host, "host");
  EXPECT_EQ(u->port, 8086);
  EXPECT_EQ(u->path, "/write");
  EXPECT_EQ(u->query, "db=x");
  EXPECT_EQ(u->target(), "/write?db=x");

  u = Url::parse("inproc://router");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->scheme, "inproc");
  EXPECT_EQ(u->host, "router");
  EXPECT_EQ(u->path, "/");

  u = Url::parse("host:99/p");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->scheme, "http");
  EXPECT_EQ(u->port, 99);

  EXPECT_FALSE(Url::parse("http://:80/x").ok());
  EXPECT_FALSE(Url::parse("http://h:70000/").ok());
}

// ---------------------------------------------------------------- dispatcher

TEST(Dispatcher, RoutesByMethodAndPath) {
  HttpDispatcher d;
  d.handle("GET", "/ping", [](const HttpRequest&) { return HttpResponse::no_content(); });
  d.handle("POST", "/write", [](const HttpRequest& r) {
    return HttpResponse::text(200, r.body);
  });
  d.handle("GET", "/api/*", [](const HttpRequest& r) {
    return HttpResponse::text(200, r.path);
  });

  EXPECT_EQ(d.dispatch(HttpRequest::get("/ping")).status, 204);
  EXPECT_EQ(d.dispatch(HttpRequest::post("/write", "x", "text/plain")).body, "x");
  EXPECT_EQ(d.dispatch(HttpRequest::get("/api/deep/path")).body, "/api/deep/path");
  EXPECT_EQ(d.dispatch(HttpRequest::get("/nope")).status, 404);
  // Path exists but wrong method -> 405.
  EXPECT_EQ(d.dispatch(HttpRequest::post("/ping", "", "text/plain")).status, 405);
}

// ---------------------------------------------------------------- inproc

TEST(Inproc, RequestReachesBoundHandler) {
  InprocNetwork net;
  net.bind("svc", [](const HttpRequest& r) {
    return HttpResponse::text(200, r.query.get_or("k", "?") + "|" + r.body);
  });
  InprocHttpClient client(net);
  auto resp = client.post("inproc://svc/path?k=v", "body", "text/plain");
  ASSERT_TRUE(resp.ok()) << resp.message();
  EXPECT_EQ(resp->body, "v|body");
}

TEST(Inproc, UnboundEndpointFails) {
  InprocNetwork net;
  InprocHttpClient client(net);
  EXPECT_FALSE(client.get("inproc://missing/").ok());
  net.bind("x", [](const HttpRequest&) { return HttpResponse::no_content(); });
  EXPECT_TRUE(net.has("x"));
  net.unbind("x");
  EXPECT_FALSE(net.has("x"));
}

TEST(Inproc, RejectsWrongScheme) {
  InprocNetwork net;
  InprocHttpClient client(net);
  EXPECT_FALSE(client.get("http://localhost:1/").ok());
}

// ---------------------------------------------------------------- pubsub

TEST(PubSub, TopicPrefixFiltering) {
  PubSubBroker broker;
  auto all = broker.subscribe("");
  auto jobs = broker.subscribe("jobs");
  EXPECT_EQ(broker.subscriber_count(), 2u);

  EXPECT_EQ(broker.publish("metrics", "m1"), 1u);  // only `all`
  EXPECT_EQ(broker.publish("jobs", "j1"), 2u);

  EXPECT_EQ(all->try_receive()->payload, "m1");
  EXPECT_EQ(all->try_receive()->payload, "j1");
  const auto m = jobs->try_receive();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->topic, "jobs");
  EXPECT_EQ(m->payload, "j1");
  EXPECT_FALSE(jobs->try_receive().has_value());
}

TEST(PubSub, SlowSubscriberDropsAtHwm) {
  PubSubBroker broker;
  auto sub = broker.subscribe("", /*hwm=*/3);
  for (int i = 0; i < 10; ++i) broker.publish("t", std::to_string(i));
  EXPECT_EQ(sub->dropped(), 7u);
  // The first 3 messages survived (drop-new semantics at the HWM).
  EXPECT_EQ(sub->try_receive()->payload, "0");
  EXPECT_EQ(sub->try_receive()->payload, "1");
  EXPECT_EQ(sub->try_receive()->payload, "2");
  EXPECT_EQ(broker.published(), 10u);
}

TEST(PubSub, UnsubscribeOnDestruction) {
  PubSubBroker broker;
  {
    auto sub = broker.subscribe("");
    EXPECT_EQ(broker.subscriber_count(), 1u);
  }
  EXPECT_EQ(broker.subscriber_count(), 0u);
  EXPECT_EQ(broker.publish("t", "x"), 0u);
}

TEST(PubSub, CrossThreadDelivery) {
  PubSubBroker broker;
  auto sub = broker.subscribe("");
  std::thread producer([&broker] {
    for (int i = 0; i < 100; ++i) broker.publish("t", std::to_string(i));
  });
  int received = 0;
  while (received < 100) {
    if (auto m = sub->receive_for(util::kNanosPerSecond)) {
      ++received;
    } else {
      break;
    }
  }
  producer.join();
  EXPECT_EQ(received, 100);
}

// ---------------------------------------------------------------- tcp

TEST(TcpHttp, EndToEndOverRealSockets) {
  TcpHttpServer server([](const HttpRequest& req) {
    if (req.path == "/echo") return HttpResponse::text(200, req.body);
    if (req.path == "/ping") return HttpResponse::no_content();
    return HttpResponse::not_found();
  });
  auto port = server.start();
  ASSERT_TRUE(port.ok()) << port.message();
  ASSERT_GT(*port, 0);

  TcpHttpClient client;
  auto resp = client.post(server.url() + "/echo", "hello over tcp", "text/plain");
  ASSERT_TRUE(resp.ok()) << resp.message();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "hello over tcp");

  resp = client.get(server.url() + "/ping");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 204);

  resp = client.get(server.url() + "/missing");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 404);
  server.stop();
}

TEST(TcpHttp, LargeBodyTransfer) {
  TcpHttpServer server([](const HttpRequest& req) {
    return HttpResponse::text(200, std::to_string(req.body.size()));
  });
  ASSERT_TRUE(server.start().ok());
  TcpHttpClient client;
  const std::string big(1 << 20, 'x');  // 1 MiB batch
  auto resp = client.post(server.url() + "/write", big, "text/plain");
  ASSERT_TRUE(resp.ok()) << resp.message();
  EXPECT_EQ(resp->body, std::to_string(big.size()));
  server.stop();
}

TEST(TcpHttp, ConcurrentClients) {
  std::atomic<int> handled{0};
  TcpHttpServer server([&handled](const HttpRequest&) {
    ++handled;
    return HttpResponse::text(200, "ok");
  });
  ASSERT_TRUE(server.start().ok());
  std::vector<std::thread> clients;
  std::atomic<int> successes{0};
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&] {
      TcpHttpClient client;
      for (int j = 0; j < 5; ++j) {
        auto resp = client.get(server.url() + "/x");
        if (resp.ok() && resp->ok()) ++successes;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(successes.load(), 40);
  EXPECT_EQ(handled.load(), 40);
  server.stop();
}

TEST(TcpHttp, HandlerExceptionBecomes500) {
  TcpHttpServer server(
      [](const HttpRequest&) -> HttpResponse { throw std::runtime_error("boom"); });
  ASSERT_TRUE(server.start().ok());
  TcpHttpClient client;
  auto resp = client.get(server.url() + "/x");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 500);
  EXPECT_NE(resp->body.find("boom"), std::string::npos);
  server.stop();
}

TEST(TcpHttp, ConnectToClosedPortFails) {
  TcpHttpClient client;
  // Port 1 is essentially never listening.
  EXPECT_FALSE(client.get("http://127.0.0.1:1/").ok());
}

}  // namespace
}  // namespace lms::net
