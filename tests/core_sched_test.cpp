// Tests for lms::core::TaskScheduler — the work-stealing runtime every
// background loop in the stack now runs on. Covers steal correctness under
// load, delayed-task ordering, periodic fixed-delay semantics (threaded and
// manual/deterministic), affinity serialization, shutdown drain, and the
// runtime-stats surface.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "lms/core/runnable.hpp"
#include "lms/core/runtime.hpp"
#include "lms/core/taskscheduler.hpp"
#include "lms/tsdb/storage.hpp"
#include "lms/util/clock.hpp"

namespace {

using lms::core::PeriodicTaskHandle;
using lms::core::TaskScheduler;
namespace runtime = lms::core::runtime;

constexpr lms::util::TimeNs kMs = lms::util::kNanosPerMilli;

void spin_until(const std::function<bool()>& cond,
                std::chrono::milliseconds timeout = std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!cond() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(TaskScheduler, ExecutesSubmittedTasks) {
  TaskScheduler::Options opts;
  opts.workers = 2;
  TaskScheduler sched(opts);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    sched.submit([&count] { count.fetch_add(1); });
  }
  spin_until([&] { return count.load() == 100; });
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(sched.worker_count(), 2u);
  EXPECT_GE(sched.stats().executed.load(), 100u);
}

TEST(TaskScheduler, StealsFromBlockedWorkerUnderLoad) {
  TaskScheduler::Options opts;
  opts.workers = 2;
  TaskScheduler sched(opts);

  // Park worker 0 (affinity key 0) so everything round-robined onto its
  // stealable lane can only complete if worker 1 steals it.
  std::atomic<bool> release{false};
  std::atomic<bool> parked{false};
  sched.submit(
      [&] {
        parked.store(true);
        while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      },
      /*affinity_key=*/0);
  spin_until([&] { return parked.load(); });

  std::atomic<int> count{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    sched.submit([&count] { count.fetch_add(1); });
  }
  spin_until([&] { return count.load() == kTasks; });
  EXPECT_EQ(count.load(), kTasks);
  EXPECT_GT(sched.stats().stolen.load(), 0u);
  release.store(true);
  sched.stop();
}

TEST(TaskScheduler, DelayedTasksFireInDueOrderManual) {
  TaskScheduler::Options opts;
  opts.workers = 1;
  opts.manual = true;
  TaskScheduler sched(opts);
  std::vector<std::string> order;
  sched.submit_after(30, [&order] { order.push_back("a"); });
  sched.submit_after(10, [&order] { order.push_back("b"); });
  sched.submit_after(20, [&order] { order.push_back("c"); });

  EXPECT_EQ(sched.advance_to(5), 0u);
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(sched.advance_to(15), 1u);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], "b");
  EXPECT_EQ(sched.advance_to(100), 2u);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[1], "c");
  EXPECT_EQ(order[2], "a");
}

TEST(TaskScheduler, DelayedTaskNotEarlyThreaded) {
  TaskScheduler::Options opts;
  opts.workers = 1;
  TaskScheduler sched(opts);
  const auto start = std::chrono::steady_clock::now();
  std::atomic<bool> ran{false};
  std::atomic<std::int64_t> elapsed_ms{0};
  sched.submit_after(50 * kMs, [&] {
    elapsed_ms.store(std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count());
    ran.store(true);
  });
  spin_until([&] { return ran.load(); });
  ASSERT_TRUE(ran.load());
  EXPECT_GE(elapsed_ms.load(), 50);
}

TEST(TaskScheduler, PeriodicFixedDelayKeepsMinimumGap) {
  TaskScheduler::Options opts;
  opts.workers = 1;
  TaskScheduler sched(opts);
  std::vector<std::int64_t> starts_ms;
  std::atomic<int> runs{0};
  const auto t0 = std::chrono::steady_clock::now();
  PeriodicTaskHandle handle = sched.submit_periodic("test.periodic.gap", 20 * kMs, [&] {
    starts_ms.push_back(std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    runs.fetch_add(1);
  });
  spin_until([&] { return runs.load() >= 4; }, std::chrono::seconds(30));
  handle.cancel();
  ASSERT_GE(starts_ms.size(), 4u);
  // Fixed delay: the next run becomes due interval after the previous run
  // completes, so start-to-start gaps are at least interval + work time
  // (allow 2ms of clock rounding slack).
  for (std::size_t i = 1; i < starts_ms.size(); ++i) {
    EXPECT_GE(starts_ms[i] - starts_ms[i - 1], 18) << "gap " << i;
  }
}

TEST(TaskScheduler, PeriodicManualFiresOncePerOverdueAdvance) {
  TaskScheduler::Options opts;
  opts.workers = 1;
  opts.manual = true;
  TaskScheduler sched(opts);
  int count = 0;
  PeriodicTaskHandle handle = sched.submit_periodic("test.periodic.manual", 10, [&] { ++count; });

  sched.advance_to(5);  // first due is armed for attach time
  EXPECT_EQ(count, 1);
  sched.advance_to(9);  // re-armed for 15: not due yet
  EXPECT_EQ(count, 1);
  sched.advance_to(100);  // overdue by many intervals: exactly one run
  EXPECT_EQ(count, 2);
  sched.advance_to(120);
  EXPECT_EQ(count, 3);

  handle.trigger();  // early run supersedes the pending timer
  sched.run_ready();
  EXPECT_EQ(count, 4);

  handle.cancel();
  sched.advance_to(1000);
  EXPECT_EQ(count, 4);
}

TEST(TaskScheduler, PeriodicAggregatesIntoOneLoopStatsRow) {
  TaskScheduler::Options opts;
  opts.workers = 2;
  TaskScheduler sched(opts);
  std::atomic<int> runs{0};
  PeriodicTaskHandle handle =
      sched.submit_periodic("test.periodic.row", 1 * kMs, [&] { runs.fetch_add(1); });
  spin_until([&] { return runs.load() >= 3; });
  bool found = false;
  for (const runtime::LoopSnapshot& row : runtime::loop_snapshot()) {
    if (row.name == "test.periodic.row") {
      found = true;
      EXPECT_GE(row.iterations, 3u);
    }
  }
  EXPECT_TRUE(found);
  handle.cancel();
  // Cancelling drops the handle's row once pending heap entries are gone;
  // at minimum no further iterations accumulate.
  const int after = runs.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(runs.load(), after);
}

TEST(TaskScheduler, AffinityTasksNeverRunConcurrentlyForSameKey) {
  TaskScheduler::Options opts;
  opts.workers = 4;
  TaskScheduler sched(opts);
  constexpr int kKeys = 4;
  constexpr int kPerKey = 100;
  std::atomic<int> in_flight[kKeys] = {};
  std::atomic<int> violations{0};
  std::atomic<int> done{0};
  for (int i = 0; i < kPerKey; ++i) {
    for (std::uint64_t key = 0; key < kKeys; ++key) {
      sched.submit(
          [&, key] {
            if (in_flight[key].fetch_add(1) != 0) violations.fetch_add(1);
            std::this_thread::yield();
            in_flight[key].fetch_sub(1);
            done.fetch_add(1);
          },
          key);
    }
  }
  spin_until([&] { return done.load() == kKeys * kPerKey; }, std::chrono::seconds(30));
  EXPECT_EQ(done.load(), kKeys * kPerKey);
  EXPECT_EQ(violations.load(), 0);
  EXPECT_GE(sched.stats().pinned.load(), static_cast<std::uint64_t>(kKeys * kPerKey));
}

TEST(TaskScheduler, StopDrainsReadyAndDropsUndueTimers) {
  TaskScheduler::Options opts;
  opts.workers = 1;
  TaskScheduler sched(opts);

  // Park the single worker so submissions pile up, then stop(): every ready
  // task must still run (drain), the far-future timer must not.
  std::atomic<bool> release{false};
  std::atomic<bool> parked{false};
  sched.submit([&] {
    parked.store(true);
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  spin_until([&] { return parked.load(); });

  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    sched.submit([&count] { count.fetch_add(1); });
    sched.submit([&count] { count.fetch_add(1); }, /*affinity_key=*/i % 3);
  }
  std::atomic<bool> timer_ran{false};
  sched.submit_after(10 * lms::util::kNanosPerSecond, [&timer_ran] { timer_ran.store(true); });

  release.store(true);
  sched.stop();
  EXPECT_TRUE(sched.stopped());
  EXPECT_EQ(count.load(), 100);
  EXPECT_FALSE(timer_ran.load());

  // Post-stop submissions run inline instead of being dropped.
  bool inline_ran = false;
  sched.submit([&inline_ran] { inline_ran = true; });
  EXPECT_TRUE(inline_ran);
}

TEST(TaskScheduler, CancelWaitsForInFlightRun) {
  TaskScheduler::Options opts;
  opts.workers = 2;
  TaskScheduler sched(opts);
  std::atomic<bool> started{false};
  std::atomic<bool> finished{false};
  PeriodicTaskHandle handle = sched.submit_periodic("test.periodic.cancel", 1 * kMs, [&] {
    started.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    finished.store(true);
  });
  spin_until([&] { return started.load(); });
  handle.cancel();
  EXPECT_TRUE(finished.load());  // cancel() returned only after the run ended
  EXPECT_FALSE(handle.active());
}

TEST(TaskScheduler, SchedStatsSnapshotExported) {
  TaskScheduler::Options opts;
  opts.workers = 2;
  opts.name = "test.sched.stats";
  TaskScheduler sched(opts);
  std::atomic<int> count{0};
  for (int i = 0; i < 32; ++i) sched.submit([&count] { count.fetch_add(1); });
  spin_until([&] { return count.load() == 32; });
  bool found = false;
  for (const runtime::SchedSnapshot& s : runtime::sched_snapshot()) {
    if (s.name == "test.sched.stats") {
      found = true;
      EXPECT_EQ(s.workers, 2u);
      EXPECT_GE(s.submitted, 32u);
      EXPECT_GE(s.executed, 32u);
      EXPECT_GE(s.high_watermark, 1u);
    }
  }
  EXPECT_TRUE(found);
  sched.stop();
  // Stats row unregisters with the scheduler object, not at stop().
  EXPECT_FALSE(runtime::sched_snapshot().empty());
}

// A minimal Runnable: lifecycle tri-state + task wiring through on_attach.
class PingComponent : public lms::core::Runnable {
 public:
  std::atomic<int> pings{0};

 protected:
  void on_attach(TaskScheduler& sched) override {
    task_ = sched.submit_periodic("test.runnable.ping", 1 * kMs, [this] { pings.fetch_add(1); });
  }
  void on_detach() override { task_.cancel(); }

 private:
  PeriodicTaskHandle task_;
};

TEST(Runnable, AttachDetachLifecycle) {
  PingComponent comp;
  EXPECT_FALSE(comp.attached());
  EXPECT_FALSE(comp.ever_attached());

  TaskScheduler::Options opts;
  opts.workers = 1;
  TaskScheduler sched(opts);
  comp.attach(sched);
  EXPECT_TRUE(comp.attached());
  EXPECT_TRUE(comp.ever_attached());
  spin_until([&] { return comp.pings.load() >= 2; });
  EXPECT_GE(comp.pings.load(), 2);

  comp.detach();
  EXPECT_FALSE(comp.attached());
  EXPECT_TRUE(comp.ever_attached());
  const int after = comp.pings.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(comp.pings.load(), after);

  // Re-attach is legal (tests swap schedulers).
  comp.attach(sched);
  EXPECT_TRUE(comp.attached());
  comp.detach();
}

TEST(TaskScheduler, StorageOffloadPreservesEveryWrite) {
  // Contended multi-writer ingest through the staged-write offload: every
  // point must land exactly once, same as the plain blocking path, and
  // writes issued from a scheduler worker (the flusher case) go inline.
  TaskScheduler::Options opts;
  opts.workers = 2;
  opts.name = "test.sched.offload";
  TaskScheduler sched(opts);
  lms::tsdb::Storage storage;
  storage.database("lms");
  storage.set_scheduler(&sched);

  constexpr int kWriters = 4;
  constexpr int kBatches = 50;
  constexpr int kBatch = 40;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&storage, w] {
      std::vector<lms::lineproto::Point> batch;
      for (int b = 0; b < kBatches; ++b) {
        batch.clear();
        for (int i = 0; i < kBatch; ++i) {
          lms::lineproto::Point p;
          p.measurement = "cpu";
          p.set_tag("hostname", "w" + std::to_string(w) + "h" + std::to_string(i % 16));
          p.add_field("v", static_cast<double>(b * kBatch + i));
          p.timestamp = 1 + b * kBatch + i;
          p.normalize();
          batch.push_back(std::move(p));
        }
        storage.write("lms", batch, 1);
      }
    });
  }
  for (auto& t : writers) t.join();

  // A write from a worker thread takes the inline path (no self-deadlock).
  std::atomic<bool> inner_done{false};
  sched.submit([&storage, &inner_done] {
    std::vector<lms::lineproto::Point> batch;
    lms::lineproto::Point p;
    p.measurement = "cpu";
    p.set_tag("hostname", "worker");
    p.add_field("v", 1.0);
    p.timestamp = 7;
    p.normalize();
    batch.push_back(std::move(p));
    storage.write("lms", batch, 1);
    inner_done.store(true);
  });
  spin_until([&] { return inner_done.load(); });
  ASSERT_TRUE(inner_done.load());

  {
    // Scoped: the snapshot holds every stripe shared, and set_scheduler
    // takes the storage map lock, which ranks below the stripes.
    const auto snap = storage.snapshot("lms");
    ASSERT_TRUE(static_cast<bool>(snap));
    EXPECT_EQ(snap->sample_count(),
              static_cast<std::size_t>(kWriters) * kBatches * kBatch + 1);
  }
  storage.set_scheduler(nullptr);
  sched.stop();
}

TEST(TaskScheduler, QueueDelayRecordedPerTaskName) {
  // Manual mode makes the submit→run latency exact: the task is enqueued at
  // manual-now 0 and runs when advance_to(5ms) drains the queues.
  TaskScheduler::Options opts;
  opts.workers = 1;
  opts.manual = true;
  TaskScheduler sched(opts);
  std::string seen_name;
  std::atomic<bool> ran{false};
  sched.submit([&] {
    const char* name = runtime::current_task_name();
    seen_name = name != nullptr ? name : "";
    ran = true;
  });
  sched.advance_to(5 * kMs);
  ASSERT_TRUE(ran.load());
  // The running task sees its own name; it clears again afterwards.
  EXPECT_EQ(seen_name, "sched.submit");
  EXPECT_EQ(runtime::current_task_name(), nullptr);

  bool found = false;
  for (const runtime::sched_delay::TaskDelaySnapshot& t : runtime::sched_delay::snapshot()) {
    if (std::string(t.name) != "sched.submit") continue;
    found = true;
    EXPECT_GT(t.count, 0u);
    EXPECT_GE(t.delay_ns_max, static_cast<std::uint64_t>(5 * kMs));
    EXPECT_GE(t.delay_ns_total, static_cast<std::uint64_t>(5 * kMs));
    EXPECT_GT(runtime::sched_delay::delay_quantile_ns(t, 0.99), 0u);
  }
  EXPECT_TRUE(found) << "no sched.submit row in the queue-delay table";
}

TEST(TaskScheduler, QueueDelayTracksPeriodicTasksByName) {
  TaskScheduler::Options opts;
  opts.workers = 1;
  opts.manual = true;
  TaskScheduler sched(opts);
  std::string seen_name;
  PeriodicTaskHandle handle = sched.submit_periodic("test.delayname", 2 * kMs, [&] {
    const char* name = runtime::current_task_name();
    seen_name = name != nullptr ? name : "";
  });
  sched.advance_to(2 * kMs);
  EXPECT_EQ(seen_name, "test.delayname");
  bool found = false;
  for (const runtime::sched_delay::TaskDelaySnapshot& t : runtime::sched_delay::snapshot()) {
    if (std::string(t.name) == "test.delayname") {
      found = true;
      EXPECT_GT(t.count, 0u);
    }
  }
  EXPECT_TRUE(found) << "no test.delayname row in the queue-delay table";
  handle.cancel();
}

TEST(Runnable, ManualModeDrivesAttachedComponent) {
  PingComponent comp;
  TaskScheduler::Options opts;
  opts.workers = 1;
  opts.manual = true;
  TaskScheduler sched(opts);
  comp.attach(sched);
  sched.advance_to(5 * kMs);
  EXPECT_EQ(comp.pings.load(), 1);
  sched.advance_to(10 * kMs);
  EXPECT_EQ(comp.pings.load(), 2);
  comp.detach();
  sched.advance_to(100 * kMs);
  EXPECT_EQ(comp.pings.load(), 2);
}

}  // namespace
