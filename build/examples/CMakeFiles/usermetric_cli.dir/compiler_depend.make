# Empty compiler generated dependencies file for usermetric_cli.
# This may be replaced when dependencies are built.
