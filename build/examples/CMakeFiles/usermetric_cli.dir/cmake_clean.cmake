file(REMOVE_RECURSE
  "CMakeFiles/usermetric_cli.dir/usermetric_cli.cpp.o"
  "CMakeFiles/usermetric_cli.dir/usermetric_cli.cpp.o.d"
  "usermetric_cli"
  "usermetric_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usermetric_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
