# Empty compiler generated dependencies file for app_monitoring.
# This may be replaced when dependencies are built.
