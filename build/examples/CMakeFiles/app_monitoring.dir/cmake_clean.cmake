file(REMOVE_RECURSE
  "CMakeFiles/app_monitoring.dir/app_monitoring.cpp.o"
  "CMakeFiles/app_monitoring.dir/app_monitoring.cpp.o.d"
  "app_monitoring"
  "app_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
