# Empty dependencies file for perfctr.
# This may be replaced when dependencies are built.
