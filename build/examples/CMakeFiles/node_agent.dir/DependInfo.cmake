
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/node_agent.cpp" "examples/CMakeFiles/node_agent.dir/node_agent.cpp.o" "gcc" "examples/CMakeFiles/node_agent.dir/node_agent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/lms_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dashboard/CMakeFiles/lms_dashboard.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lms_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/collector/CMakeFiles/lms_collector.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/lms_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdb/CMakeFiles/lms_tsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/usermetric/CMakeFiles/lms_usermetric.dir/DependInfo.cmake"
  "/root/repo/build/src/hpm/CMakeFiles/lms_hpm.dir/DependInfo.cmake"
  "/root/repo/build/src/sysmon/CMakeFiles/lms_sysmon.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lms_net.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lms_json.dir/DependInfo.cmake"
  "/root/repo/build/src/lineproto/CMakeFiles/lms_lineproto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
