# Empty compiler generated dependencies file for node_agent.
# This may be replaced when dependencies are built.
