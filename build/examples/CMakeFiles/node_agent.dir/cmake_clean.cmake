file(REMOVE_RECURSE
  "CMakeFiles/node_agent.dir/node_agent.cpp.o"
  "CMakeFiles/node_agent.dir/node_agent.cpp.o.d"
  "node_agent"
  "node_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
