file(REMOVE_RECURSE
  "CMakeFiles/lms_daemon.dir/lms_daemon.cpp.o"
  "CMakeFiles/lms_daemon.dir/lms_daemon.cpp.o.d"
  "lms_daemon"
  "lms_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lms_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
