# Empty compiler generated dependencies file for lms_daemon.
# This may be replaced when dependencies are built.
