file(REMOVE_RECURSE
  "CMakeFiles/bench_hpm.dir/bench_hpm.cpp.o"
  "CMakeFiles/bench_hpm.dir/bench_hpm.cpp.o.d"
  "bench_hpm"
  "bench_hpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
