# Empty dependencies file for bench_hpm.
# This may be replaced when dependencies are built.
