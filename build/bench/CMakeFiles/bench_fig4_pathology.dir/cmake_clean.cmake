file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_pathology.dir/bench_fig4_pathology.cpp.o"
  "CMakeFiles/bench_fig4_pathology.dir/bench_fig4_pathology.cpp.o.d"
  "bench_fig4_pathology"
  "bench_fig4_pathology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_pathology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
