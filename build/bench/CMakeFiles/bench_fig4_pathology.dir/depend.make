# Empty dependencies file for bench_fig4_pathology.
# This may be replaced when dependencies are built.
