# Empty compiler generated dependencies file for bench_fig2_online_eval.
# This may be replaced when dependencies are built.
