file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_online_eval.dir/bench_fig2_online_eval.cpp.o"
  "CMakeFiles/bench_fig2_online_eval.dir/bench_fig2_online_eval.cpp.o.d"
  "bench_fig2_online_eval"
  "bench_fig2_online_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_online_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
