# Empty compiler generated dependencies file for bench_dashboard.
# This may be replaced when dependencies are built.
