file(REMOVE_RECURSE
  "CMakeFiles/bench_dashboard.dir/bench_dashboard.cpp.o"
  "CMakeFiles/bench_dashboard.dir/bench_dashboard.cpp.o.d"
  "bench_dashboard"
  "bench_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
