file(REMOVE_RECURSE
  "CMakeFiles/bench_usermetric.dir/bench_usermetric.cpp.o"
  "CMakeFiles/bench_usermetric.dir/bench_usermetric.cpp.o.d"
  "bench_usermetric"
  "bench_usermetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_usermetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
