# Empty dependencies file for bench_usermetric.
# This may be replaced when dependencies are built.
