# Empty compiler generated dependencies file for bench_lineproto.
# This may be replaced when dependencies are built.
