file(REMOVE_RECURSE
  "CMakeFiles/bench_lineproto.dir/bench_lineproto.cpp.o"
  "CMakeFiles/bench_lineproto.dir/bench_lineproto.cpp.o.d"
  "bench_lineproto"
  "bench_lineproto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lineproto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
