# Empty dependencies file for bench_fig3_minimd.
# This may be replaced when dependencies are built.
