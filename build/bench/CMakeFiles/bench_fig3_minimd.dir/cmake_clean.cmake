file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_minimd.dir/bench_fig3_minimd.cpp.o"
  "CMakeFiles/bench_fig3_minimd.dir/bench_fig3_minimd.cpp.o.d"
  "bench_fig3_minimd"
  "bench_fig3_minimd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_minimd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
