# Empty compiler generated dependencies file for lms_tsdb.
# This may be replaced when dependencies are built.
