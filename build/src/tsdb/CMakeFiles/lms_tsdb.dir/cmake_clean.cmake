file(REMOVE_RECURSE
  "CMakeFiles/lms_tsdb.dir/continuous.cpp.o"
  "CMakeFiles/lms_tsdb.dir/continuous.cpp.o.d"
  "CMakeFiles/lms_tsdb.dir/http_api.cpp.o"
  "CMakeFiles/lms_tsdb.dir/http_api.cpp.o.d"
  "CMakeFiles/lms_tsdb.dir/persist.cpp.o"
  "CMakeFiles/lms_tsdb.dir/persist.cpp.o.d"
  "CMakeFiles/lms_tsdb.dir/query.cpp.o"
  "CMakeFiles/lms_tsdb.dir/query.cpp.o.d"
  "CMakeFiles/lms_tsdb.dir/storage.cpp.o"
  "CMakeFiles/lms_tsdb.dir/storage.cpp.o.d"
  "liblms_tsdb.a"
  "liblms_tsdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lms_tsdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
