
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsdb/continuous.cpp" "src/tsdb/CMakeFiles/lms_tsdb.dir/continuous.cpp.o" "gcc" "src/tsdb/CMakeFiles/lms_tsdb.dir/continuous.cpp.o.d"
  "/root/repo/src/tsdb/http_api.cpp" "src/tsdb/CMakeFiles/lms_tsdb.dir/http_api.cpp.o" "gcc" "src/tsdb/CMakeFiles/lms_tsdb.dir/http_api.cpp.o.d"
  "/root/repo/src/tsdb/persist.cpp" "src/tsdb/CMakeFiles/lms_tsdb.dir/persist.cpp.o" "gcc" "src/tsdb/CMakeFiles/lms_tsdb.dir/persist.cpp.o.d"
  "/root/repo/src/tsdb/query.cpp" "src/tsdb/CMakeFiles/lms_tsdb.dir/query.cpp.o" "gcc" "src/tsdb/CMakeFiles/lms_tsdb.dir/query.cpp.o.d"
  "/root/repo/src/tsdb/storage.cpp" "src/tsdb/CMakeFiles/lms_tsdb.dir/storage.cpp.o" "gcc" "src/tsdb/CMakeFiles/lms_tsdb.dir/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lineproto/CMakeFiles/lms_lineproto.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lms_json.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lms_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
