file(REMOVE_RECURSE
  "liblms_tsdb.a"
)
