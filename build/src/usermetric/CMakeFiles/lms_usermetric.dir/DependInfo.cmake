
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/usermetric/hooks.cpp" "src/usermetric/CMakeFiles/lms_usermetric.dir/hooks.cpp.o" "gcc" "src/usermetric/CMakeFiles/lms_usermetric.dir/hooks.cpp.o.d"
  "/root/repo/src/usermetric/mpi_profiler.cpp" "src/usermetric/CMakeFiles/lms_usermetric.dir/mpi_profiler.cpp.o" "gcc" "src/usermetric/CMakeFiles/lms_usermetric.dir/mpi_profiler.cpp.o.d"
  "/root/repo/src/usermetric/omp_profiler.cpp" "src/usermetric/CMakeFiles/lms_usermetric.dir/omp_profiler.cpp.o" "gcc" "src/usermetric/CMakeFiles/lms_usermetric.dir/omp_profiler.cpp.o.d"
  "/root/repo/src/usermetric/usermetric.cpp" "src/usermetric/CMakeFiles/lms_usermetric.dir/usermetric.cpp.o" "gcc" "src/usermetric/CMakeFiles/lms_usermetric.dir/usermetric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/lms_net.dir/DependInfo.cmake"
  "/root/repo/build/src/lineproto/CMakeFiles/lms_lineproto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
