# Empty compiler generated dependencies file for lms_usermetric.
# This may be replaced when dependencies are built.
