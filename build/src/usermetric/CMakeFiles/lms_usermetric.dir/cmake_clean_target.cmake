file(REMOVE_RECURSE
  "liblms_usermetric.a"
)
