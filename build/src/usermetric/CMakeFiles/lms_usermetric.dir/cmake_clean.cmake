file(REMOVE_RECURSE
  "CMakeFiles/lms_usermetric.dir/hooks.cpp.o"
  "CMakeFiles/lms_usermetric.dir/hooks.cpp.o.d"
  "CMakeFiles/lms_usermetric.dir/mpi_profiler.cpp.o"
  "CMakeFiles/lms_usermetric.dir/mpi_profiler.cpp.o.d"
  "CMakeFiles/lms_usermetric.dir/omp_profiler.cpp.o"
  "CMakeFiles/lms_usermetric.dir/omp_profiler.cpp.o.d"
  "CMakeFiles/lms_usermetric.dir/usermetric.cpp.o"
  "CMakeFiles/lms_usermetric.dir/usermetric.cpp.o.d"
  "liblms_usermetric.a"
  "liblms_usermetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lms_usermetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
