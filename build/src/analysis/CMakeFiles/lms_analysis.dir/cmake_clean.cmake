file(REMOVE_RECURSE
  "CMakeFiles/lms_analysis.dir/aggregator.cpp.o"
  "CMakeFiles/lms_analysis.dir/aggregator.cpp.o.d"
  "CMakeFiles/lms_analysis.dir/fetch.cpp.o"
  "CMakeFiles/lms_analysis.dir/fetch.cpp.o.d"
  "CMakeFiles/lms_analysis.dir/online.cpp.o"
  "CMakeFiles/lms_analysis.dir/online.cpp.o.d"
  "CMakeFiles/lms_analysis.dir/patterns.cpp.o"
  "CMakeFiles/lms_analysis.dir/patterns.cpp.o.d"
  "CMakeFiles/lms_analysis.dir/recorder.cpp.o"
  "CMakeFiles/lms_analysis.dir/recorder.cpp.o.d"
  "CMakeFiles/lms_analysis.dir/report.cpp.o"
  "CMakeFiles/lms_analysis.dir/report.cpp.o.d"
  "CMakeFiles/lms_analysis.dir/roofline.cpp.o"
  "CMakeFiles/lms_analysis.dir/roofline.cpp.o.d"
  "CMakeFiles/lms_analysis.dir/rules.cpp.o"
  "CMakeFiles/lms_analysis.dir/rules.cpp.o.d"
  "liblms_analysis.a"
  "liblms_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lms_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
