# Empty compiler generated dependencies file for lms_analysis.
# This may be replaced when dependencies are built.
