file(REMOVE_RECURSE
  "liblms_analysis.a"
)
