
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/aggregator.cpp" "src/analysis/CMakeFiles/lms_analysis.dir/aggregator.cpp.o" "gcc" "src/analysis/CMakeFiles/lms_analysis.dir/aggregator.cpp.o.d"
  "/root/repo/src/analysis/fetch.cpp" "src/analysis/CMakeFiles/lms_analysis.dir/fetch.cpp.o" "gcc" "src/analysis/CMakeFiles/lms_analysis.dir/fetch.cpp.o.d"
  "/root/repo/src/analysis/online.cpp" "src/analysis/CMakeFiles/lms_analysis.dir/online.cpp.o" "gcc" "src/analysis/CMakeFiles/lms_analysis.dir/online.cpp.o.d"
  "/root/repo/src/analysis/patterns.cpp" "src/analysis/CMakeFiles/lms_analysis.dir/patterns.cpp.o" "gcc" "src/analysis/CMakeFiles/lms_analysis.dir/patterns.cpp.o.d"
  "/root/repo/src/analysis/recorder.cpp" "src/analysis/CMakeFiles/lms_analysis.dir/recorder.cpp.o" "gcc" "src/analysis/CMakeFiles/lms_analysis.dir/recorder.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/lms_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/lms_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/roofline.cpp" "src/analysis/CMakeFiles/lms_analysis.dir/roofline.cpp.o" "gcc" "src/analysis/CMakeFiles/lms_analysis.dir/roofline.cpp.o.d"
  "/root/repo/src/analysis/rules.cpp" "src/analysis/CMakeFiles/lms_analysis.dir/rules.cpp.o" "gcc" "src/analysis/CMakeFiles/lms_analysis.dir/rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tsdb/CMakeFiles/lms_tsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hpm/CMakeFiles/lms_hpm.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lms_json.dir/DependInfo.cmake"
  "/root/repo/build/src/lineproto/CMakeFiles/lms_lineproto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lms_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lms_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
