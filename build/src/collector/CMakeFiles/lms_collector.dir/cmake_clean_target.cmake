file(REMOVE_RECURSE
  "liblms_collector.a"
)
