file(REMOVE_RECURSE
  "CMakeFiles/lms_collector.dir/agent.cpp.o"
  "CMakeFiles/lms_collector.dir/agent.cpp.o.d"
  "CMakeFiles/lms_collector.dir/plugins.cpp.o"
  "CMakeFiles/lms_collector.dir/plugins.cpp.o.d"
  "liblms_collector.a"
  "liblms_collector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lms_collector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
