# Empty compiler generated dependencies file for lms_collector.
# This may be replaced when dependencies are built.
