file(REMOVE_RECURSE
  "CMakeFiles/lms_core.dir/pullproxy.cpp.o"
  "CMakeFiles/lms_core.dir/pullproxy.cpp.o.d"
  "CMakeFiles/lms_core.dir/router.cpp.o"
  "CMakeFiles/lms_core.dir/router.cpp.o.d"
  "CMakeFiles/lms_core.dir/tagstore.cpp.o"
  "CMakeFiles/lms_core.dir/tagstore.cpp.o.d"
  "liblms_core.a"
  "liblms_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lms_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
