file(REMOVE_RECURSE
  "liblms_core.a"
)
