# Empty compiler generated dependencies file for lms_core.
# This may be replaced when dependencies are built.
