
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/pullproxy.cpp" "src/core/CMakeFiles/lms_core.dir/pullproxy.cpp.o" "gcc" "src/core/CMakeFiles/lms_core.dir/pullproxy.cpp.o.d"
  "/root/repo/src/core/router.cpp" "src/core/CMakeFiles/lms_core.dir/router.cpp.o" "gcc" "src/core/CMakeFiles/lms_core.dir/router.cpp.o.d"
  "/root/repo/src/core/tagstore.cpp" "src/core/CMakeFiles/lms_core.dir/tagstore.cpp.o" "gcc" "src/core/CMakeFiles/lms_core.dir/tagstore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/lms_net.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lms_json.dir/DependInfo.cmake"
  "/root/repo/build/src/lineproto/CMakeFiles/lms_lineproto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
