file(REMOVE_RECURSE
  "liblms_net.a"
)
