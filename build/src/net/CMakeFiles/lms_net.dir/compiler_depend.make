# Empty compiler generated dependencies file for lms_net.
# This may be replaced when dependencies are built.
