file(REMOVE_RECURSE
  "CMakeFiles/lms_net.dir/http.cpp.o"
  "CMakeFiles/lms_net.dir/http.cpp.o.d"
  "CMakeFiles/lms_net.dir/pubsub.cpp.o"
  "CMakeFiles/lms_net.dir/pubsub.cpp.o.d"
  "CMakeFiles/lms_net.dir/tcp_http.cpp.o"
  "CMakeFiles/lms_net.dir/tcp_http.cpp.o.d"
  "CMakeFiles/lms_net.dir/transport.cpp.o"
  "CMakeFiles/lms_net.dir/transport.cpp.o.d"
  "liblms_net.a"
  "liblms_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lms_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
