# Empty dependencies file for lms_json.
# This may be replaced when dependencies are built.
