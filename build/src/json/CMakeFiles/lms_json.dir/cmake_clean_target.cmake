file(REMOVE_RECURSE
  "liblms_json.a"
)
