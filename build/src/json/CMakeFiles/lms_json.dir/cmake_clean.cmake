file(REMOVE_RECURSE
  "CMakeFiles/lms_json.dir/json.cpp.o"
  "CMakeFiles/lms_json.dir/json.cpp.o.d"
  "liblms_json.a"
  "liblms_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lms_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
