file(REMOVE_RECURSE
  "CMakeFiles/lms_hpm.dir/arch.cpp.o"
  "CMakeFiles/lms_hpm.dir/arch.cpp.o.d"
  "CMakeFiles/lms_hpm.dir/formula.cpp.o"
  "CMakeFiles/lms_hpm.dir/formula.cpp.o.d"
  "CMakeFiles/lms_hpm.dir/groups_builtin.cpp.o"
  "CMakeFiles/lms_hpm.dir/groups_builtin.cpp.o.d"
  "CMakeFiles/lms_hpm.dir/monitor.cpp.o"
  "CMakeFiles/lms_hpm.dir/monitor.cpp.o.d"
  "CMakeFiles/lms_hpm.dir/perfgroup.cpp.o"
  "CMakeFiles/lms_hpm.dir/perfgroup.cpp.o.d"
  "CMakeFiles/lms_hpm.dir/simulator.cpp.o"
  "CMakeFiles/lms_hpm.dir/simulator.cpp.o.d"
  "liblms_hpm.a"
  "liblms_hpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lms_hpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
