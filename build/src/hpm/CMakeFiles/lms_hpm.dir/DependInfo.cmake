
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpm/arch.cpp" "src/hpm/CMakeFiles/lms_hpm.dir/arch.cpp.o" "gcc" "src/hpm/CMakeFiles/lms_hpm.dir/arch.cpp.o.d"
  "/root/repo/src/hpm/formula.cpp" "src/hpm/CMakeFiles/lms_hpm.dir/formula.cpp.o" "gcc" "src/hpm/CMakeFiles/lms_hpm.dir/formula.cpp.o.d"
  "/root/repo/src/hpm/groups_builtin.cpp" "src/hpm/CMakeFiles/lms_hpm.dir/groups_builtin.cpp.o" "gcc" "src/hpm/CMakeFiles/lms_hpm.dir/groups_builtin.cpp.o.d"
  "/root/repo/src/hpm/monitor.cpp" "src/hpm/CMakeFiles/lms_hpm.dir/monitor.cpp.o" "gcc" "src/hpm/CMakeFiles/lms_hpm.dir/monitor.cpp.o.d"
  "/root/repo/src/hpm/perfgroup.cpp" "src/hpm/CMakeFiles/lms_hpm.dir/perfgroup.cpp.o" "gcc" "src/hpm/CMakeFiles/lms_hpm.dir/perfgroup.cpp.o.d"
  "/root/repo/src/hpm/simulator.cpp" "src/hpm/CMakeFiles/lms_hpm.dir/simulator.cpp.o" "gcc" "src/hpm/CMakeFiles/lms_hpm.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lineproto/CMakeFiles/lms_lineproto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
