file(REMOVE_RECURSE
  "liblms_hpm.a"
)
