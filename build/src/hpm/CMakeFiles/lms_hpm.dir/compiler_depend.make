# Empty compiler generated dependencies file for lms_hpm.
# This may be replaced when dependencies are built.
