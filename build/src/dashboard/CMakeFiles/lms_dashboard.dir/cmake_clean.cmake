file(REMOVE_RECURSE
  "CMakeFiles/lms_dashboard.dir/agent.cpp.o"
  "CMakeFiles/lms_dashboard.dir/agent.cpp.o.d"
  "CMakeFiles/lms_dashboard.dir/templates.cpp.o"
  "CMakeFiles/lms_dashboard.dir/templates.cpp.o.d"
  "liblms_dashboard.a"
  "liblms_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lms_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
