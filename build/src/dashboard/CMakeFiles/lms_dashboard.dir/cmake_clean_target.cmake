file(REMOVE_RECURSE
  "liblms_dashboard.a"
)
