# Empty dependencies file for lms_dashboard.
# This may be replaced when dependencies are built.
