file(REMOVE_RECURSE
  "liblms_util.a"
)
