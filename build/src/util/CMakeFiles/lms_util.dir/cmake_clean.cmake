file(REMOVE_RECURSE
  "CMakeFiles/lms_util.dir/ascii_chart.cpp.o"
  "CMakeFiles/lms_util.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/lms_util.dir/clock.cpp.o"
  "CMakeFiles/lms_util.dir/clock.cpp.o.d"
  "CMakeFiles/lms_util.dir/config.cpp.o"
  "CMakeFiles/lms_util.dir/config.cpp.o.d"
  "CMakeFiles/lms_util.dir/logging.cpp.o"
  "CMakeFiles/lms_util.dir/logging.cpp.o.d"
  "CMakeFiles/lms_util.dir/rng.cpp.o"
  "CMakeFiles/lms_util.dir/rng.cpp.o.d"
  "CMakeFiles/lms_util.dir/strings.cpp.o"
  "CMakeFiles/lms_util.dir/strings.cpp.o.d"
  "CMakeFiles/lms_util.dir/xml.cpp.o"
  "CMakeFiles/lms_util.dir/xml.cpp.o.d"
  "liblms_util.a"
  "liblms_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lms_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
