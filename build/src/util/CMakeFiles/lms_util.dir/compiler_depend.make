# Empty compiler generated dependencies file for lms_util.
# This may be replaced when dependencies are built.
