file(REMOVE_RECURSE
  "CMakeFiles/lms_cluster.dir/harness.cpp.o"
  "CMakeFiles/lms_cluster.dir/harness.cpp.o.d"
  "CMakeFiles/lms_cluster.dir/minimd.cpp.o"
  "CMakeFiles/lms_cluster.dir/minimd.cpp.o.d"
  "CMakeFiles/lms_cluster.dir/workloads.cpp.o"
  "CMakeFiles/lms_cluster.dir/workloads.cpp.o.d"
  "liblms_cluster.a"
  "liblms_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lms_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
