file(REMOVE_RECURSE
  "liblms_cluster.a"
)
