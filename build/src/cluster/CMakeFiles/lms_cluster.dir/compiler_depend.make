# Empty compiler generated dependencies file for lms_cluster.
# This may be replaced when dependencies are built.
