file(REMOVE_RECURSE
  "liblms_sysmon.a"
)
