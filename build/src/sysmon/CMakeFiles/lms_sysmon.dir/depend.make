# Empty dependencies file for lms_sysmon.
# This may be replaced when dependencies are built.
