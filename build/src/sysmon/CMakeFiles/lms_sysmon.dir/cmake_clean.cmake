file(REMOVE_RECURSE
  "CMakeFiles/lms_sysmon.dir/kernel.cpp.o"
  "CMakeFiles/lms_sysmon.dir/kernel.cpp.o.d"
  "CMakeFiles/lms_sysmon.dir/proc.cpp.o"
  "CMakeFiles/lms_sysmon.dir/proc.cpp.o.d"
  "liblms_sysmon.a"
  "liblms_sysmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lms_sysmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
