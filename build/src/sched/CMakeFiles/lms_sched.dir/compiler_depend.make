# Empty compiler generated dependencies file for lms_sched.
# This may be replaced when dependencies are built.
