file(REMOVE_RECURSE
  "liblms_sched.a"
)
