file(REMOVE_RECURSE
  "CMakeFiles/lms_sched.dir/scheduler.cpp.o"
  "CMakeFiles/lms_sched.dir/scheduler.cpp.o.d"
  "liblms_sched.a"
  "liblms_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lms_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
