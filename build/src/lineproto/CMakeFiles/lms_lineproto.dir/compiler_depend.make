# Empty compiler generated dependencies file for lms_lineproto.
# This may be replaced when dependencies are built.
