file(REMOVE_RECURSE
  "CMakeFiles/lms_lineproto.dir/codec.cpp.o"
  "CMakeFiles/lms_lineproto.dir/codec.cpp.o.d"
  "CMakeFiles/lms_lineproto.dir/point.cpp.o"
  "CMakeFiles/lms_lineproto.dir/point.cpp.o.d"
  "liblms_lineproto.a"
  "liblms_lineproto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lms_lineproto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
