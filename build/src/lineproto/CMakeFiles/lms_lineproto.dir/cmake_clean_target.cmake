file(REMOVE_RECURSE
  "liblms_lineproto.a"
)
