# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("json")
subdirs("lineproto")
subdirs("net")
subdirs("tsdb")
subdirs("hpm")
subdirs("sysmon")
subdirs("usermetric")
subdirs("collector")
subdirs("core")
subdirs("sched")
subdirs("analysis")
subdirs("dashboard")
subdirs("cluster")
