# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/lineproto_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/tsdb_test[1]_include.cmake")
include("/root/repo/build/tests/hpm_test[1]_include.cmake")
include("/root/repo/build/tests/sysmon_collector_test[1]_include.cmake")
include("/root/repo/build/tests/router_test[1]_include.cmake")
include("/root/repo/build/tests/usermetric_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/dashboard_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/roofline_test[1]_include.cmake")
include("/root/repo/build/tests/proc_test[1]_include.cmake")
