file(REMOVE_RECURSE
  "CMakeFiles/hpm_test.dir/hpm_test.cpp.o"
  "CMakeFiles/hpm_test.dir/hpm_test.cpp.o.d"
  "hpm_test"
  "hpm_test.pdb"
  "hpm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
