# Empty dependencies file for hpm_test.
# This may be replaced when dependencies are built.
