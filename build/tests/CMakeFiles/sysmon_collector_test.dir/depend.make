# Empty dependencies file for sysmon_collector_test.
# This may be replaced when dependencies are built.
