file(REMOVE_RECURSE
  "CMakeFiles/sysmon_collector_test.dir/sysmon_collector_test.cpp.o"
  "CMakeFiles/sysmon_collector_test.dir/sysmon_collector_test.cpp.o.d"
  "sysmon_collector_test"
  "sysmon_collector_test.pdb"
  "sysmon_collector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysmon_collector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
