file(REMOVE_RECURSE
  "CMakeFiles/lineproto_test.dir/lineproto_test.cpp.o"
  "CMakeFiles/lineproto_test.dir/lineproto_test.cpp.o.d"
  "lineproto_test"
  "lineproto_test.pdb"
  "lineproto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lineproto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
