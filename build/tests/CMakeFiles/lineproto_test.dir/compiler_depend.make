# Empty compiler generated dependencies file for lineproto_test.
# This may be replaced when dependencies are built.
