file(REMOVE_RECURSE
  "CMakeFiles/tsdb_test.dir/tsdb_test.cpp.o"
  "CMakeFiles/tsdb_test.dir/tsdb_test.cpp.o.d"
  "tsdb_test"
  "tsdb_test.pdb"
  "tsdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
