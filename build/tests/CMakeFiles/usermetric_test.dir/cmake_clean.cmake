file(REMOVE_RECURSE
  "CMakeFiles/usermetric_test.dir/usermetric_test.cpp.o"
  "CMakeFiles/usermetric_test.dir/usermetric_test.cpp.o.d"
  "usermetric_test"
  "usermetric_test.pdb"
  "usermetric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usermetric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
