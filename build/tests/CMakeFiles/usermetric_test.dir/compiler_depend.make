# Empty compiler generated dependencies file for usermetric_test.
# This may be replaced when dependencies are built.
